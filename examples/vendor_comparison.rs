//! Vendor comparison: run the same fault campaign against the three
//! Table I drive models (MLC 2013, TLC+LDPC 2015, MLC).
//!
//! ```text
//! cargo run --release --example vendor_comparison
//! ```

use pfault_platform::experiments::{vendors, ExperimentScale};

fn main() {
    let mut scale = ExperimentScale::quick();
    scale.faults_per_point = 30;
    let report = vendors::run(scale, 7);
    println!("Table I drives under identical full-write campaigns:\n");
    println!("{}", report.table().render());
    println!(
        "All three consumer drives lose data under power faults — the paper\n\
         found thirteen of fifteen drives vulnerable in the prior study [12]\n\
         and all of its own Table I drives affected."
    );
}
