//! Cache study: quantify the volatile DRAM write-back cache's role in
//! power-fault data loss — enabled, disabled, and with supercap
//! power-loss protection (§IV-A and §I).
//!
//! ```text
//! cargo run --release --example cache_study
//! ```

use pfault_platform::experiments::{cache_ablation, ExperimentScale};

fn main() {
    let mut scale = ExperimentScale::quick();
    scale.faults_per_point = 30;
    let report = cache_ablation::run(scale, 99);
    println!("{}", report.table().render());
    println!(
        "Observations (matching §IV-A / §V):\n\
         * disabling the cache removes most FWA but NOT all data loss —\n\
           the mapping table is still volatile;\n\
         * a supercapacitor (power-loss protection) eliminates loss."
    );
}
