//! Sequence study: dependent access pairs (RAR / RAW / WAR / WAW) under
//! power faults — the paper's Fig 9.
//!
//! ```text
//! cargo run --release --example sequence_study
//! ```

use pfault_platform::experiments::{sequence, ExperimentScale};
use pfault_workload::SequenceMode;

fn main() {
    let mut scale = ExperimentScale::quick();
    scale.faults_per_point = 30;
    let report = sequence::run(scale, 5);
    println!("{}", report.table().render());

    let waw = report.at(SequenceMode::Waw).expect("WAW row present");
    let rar = report.at(SequenceMode::Rar).expect("RAR row present");
    println!(
        "WAW suffers {}x the data failures of RAR ({} vs {}): back-to-back\n\
         writes to one address put both the old and the new version at risk\n\
         (paired pages + mapping churn), while read-only pairs lose nothing\n\
         and see only IO errors.",
        if rar.data_failures == 0 {
            "∞".to_string()
        } else {
            format!("{:.1}", waw.data_failures as f64 / rar.data_failures as f64)
        },
        waw.data_failures,
        rar.data_failures,
    );
}
