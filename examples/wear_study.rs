//! Wear study: how device age changes power-fault damage.
//!
//! Runs the default fault campaign on drives pre-aged to increasing
//! program/erase cycle counts. Near end of life the raw bit-error floor
//! reaches the ECC's correction strength and the fault's added
//! disturbance — or even the recovery metadata reads themselves — tips
//! marginal pages over.
//!
//! ```text
//! cargo run --release --example wear_study
//! ```

use pfault_platform::experiments::{wear, ExperimentScale};

fn main() {
    let mut scale = ExperimentScale::quick();
    scale.faults_per_point = 30;
    let report = wear::run(scale, 3);
    println!("{}", report.table().render());
    println!(
        "Fresh and mid-life drives lose roughly the same (power-fault loss is\n\
         dominated by volatile state, not raw bit errors) — but near the wear\n\
         budget the recovery metadata itself becomes unreadable and a single\n\
         fault can cost essentially everything, consistent with the bricked\n\
         drives reported by Zheng et al. [12]."
    );
}
