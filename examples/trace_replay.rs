//! Trace replay: drive the simulated SSD from a recorded IO trace, inject
//! a fault mid-replay, and verify what survived.
//!
//! ```text
//! cargo run --release --example trace_replay
//! ```

use pfault_power::FaultInjector;
use pfault_sim::{DetRng, Lba, SimDuration};
use pfault_ssd::device::{HostCommand, Ssd, VerifiedContent};
use pfault_ssd::VendorPreset;
use pfault_workload::replay::{parse_trace, ReplayGenerator};

/// A small hand-written trace: a metadata-ish pattern of writes with one
/// re-read, then a burst of larger writes.
const TRACE: &str = "\
# time_us, op, lba, sectors
0,W,2048,8
300,W,2056,8
600,R,2048,8
900,W,409600,256
1600,W,409856,256
2300,W,2048,8
2600,W,1048576,128
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ops = parse_trace(TRACE)?;
    println!("replaying {} recorded operations…", ops.len());
    let mut replay = ReplayGenerator::new(ops, DetRng::new(2024));
    let mut ssd = Ssd::new(VendorPreset::SsdA.config(), DetRng::new(7));

    let mut writes = Vec::new();
    while let Some(packet) = replay.next_packet() {
        ssd.advance_to(packet.arrival.max(ssd.now()));
        let cmd = if packet.is_write {
            HostCommand::write(packet.id, 0, packet.lba, packet.sectors, packet.payload_tag)
        } else {
            HostCommand::read(packet.id, 0, packet.lba, packet.sectors)
        };
        ssd.submit(cmd);
        if packet.is_write {
            writes.push(cmd);
        }
    }
    // Let the tail of the trace reach the device, then pull the plug.
    ssd.advance_to(ssd.now() + SimDuration::from_millis(2));
    let timeline = FaultInjector::arduino_atx_loaded().timeline(ssd.now());
    ssd.power_fail(&timeline);
    ssd.power_on_recover(timeline.discharged + SimDuration::from_secs(1))
        .expect("recovery remounts");

    // Expected content per sector = the *last* write that touched it.
    let mut expected = std::collections::HashMap::new();
    for cmd in &writes {
        for i in 0..cmd.sectors.get() {
            expected.insert(cmd.lba.index() + i, (cmd.request_id, cmd.sector_content(i)));
        }
    }
    for cmd in &writes {
        let mut intact = 0;
        let mut lost = 0;
        let mut garbage = 0;
        let mut superseded = 0;
        for i in 0..cmd.sectors.get() {
            let sector = cmd.lba.index() + i;
            let (owner, want) = expected[&sector];
            if owner != cmd.request_id {
                superseded += 1;
                continue; // a later write owns this sector now
            }
            match ssd.verify_read(Lba::new(sector)) {
                VerifiedContent::Written(d) if d == want => intact += 1,
                VerifiedContent::Written(_) | VerifiedContent::Unwritten => lost += 1,
                VerifiedContent::Unreadable => garbage += 1,
            }
        }
        println!(
            "write #{:<2} lba {:>8} +{:<4} → {:>3} intact, {:>3} lost, {:>3} unreadable, {:>3} superseded",
            cmd.request_id,
            cmd.lba.index(),
            cmd.sectors.get(),
            intact,
            lost,
            garbage,
            superseded
        );
    }
    println!(
        "\nA fault right after the replay catches the youngest writes still\n\
         volatile (cache / uncommitted mapping); earlier ones survive."
    );
    Ok(())
}
