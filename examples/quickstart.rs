//! Quickstart: inject twenty power faults into a simulated consumer SSD
//! and classify every request's fate.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pfault_platform::campaign::{Campaign, CampaignConfig};

fn main() {
    // The paper's default setup: SSD A (256 GB MLC), random 4 KiB–1 MiB
    // writes, the Arduino→ATX discharge rig.
    let mut config = CampaignConfig::paper_default();
    config.trials = 20; // twenty fault injections
    config.requests_per_trial = 60;

    let report = Campaign::new(config, 42).run_parallel(4);

    println!("faults injected:        {}", report.faults);
    println!("requests issued:        {}", report.requests_issued);
    println!("requests completed:     {}", report.requests_completed);
    println!();
    println!("data failures:          {}", report.counts.data_failures);
    println!("false write-acks (FWA): {}", report.counts.fwa);
    println!("IO errors:              {}", report.counts.io_errors);
    println!("verified intact:        {}", report.counts.intact);
    println!();
    println!(
        "data loss per fault:    {:.2}  (paper observes ~2 data failures/fault, §IV-B)",
        report.data_loss_per_fault()
    );
    if report.failed_ack_interval_ms.count() > 0 {
        println!(
            "latest ACK→fault interval among failed requests: {:.0} ms (paper: up to ~700 ms, §IV-A)",
            report.max_failed_ack_interval_ms
        );
    }
}
