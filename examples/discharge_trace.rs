//! Discharge trace: plot the paper's Fig 4 PSU curves as ASCII art and
//! print the landmark instants the fault injector schedules around.
//!
//! ```text
//! cargo run --release --example discharge_trace
//! ```

use pfault_platform::experiments::psu;
use pfault_power::FaultInjector;
use pfault_sim::SimTime;

fn plot(points: &[psu::CurvePoint], title: &str) {
    println!("{title}");
    let width = 60usize;
    let t_max = points.last().map_or(1.0, |p| p.t_ms.max(1.0));
    for p in points {
        let bar = ((p.volts / 5.0) * width as f64).round() as usize;
        println!(
            "  {:>6.0} ms |{}{} {:.2} V",
            p.t_ms,
            "#".repeat(bar),
            " ".repeat(width - bar.min(width)),
            p.volts
        );
    }
    let _ = t_max;
    println!();
}

fn main() {
    let report = psu::run();
    plot(&report.unloaded.points, "Fig 4a — PSU output, no load:");
    plot(
        &report.loaded.points,
        "Fig 4b — PSU output, one SSD attached:",
    );
    println!("{}", report.table().render());

    let timeline = FaultInjector::arduino_atx_loaded().timeline(SimTime::ZERO);
    println!("Fault timeline for an Off command at t = 0:");
    println!("  rail starts falling:   {}", timeline.cut);
    println!("  host loses the SSD:    {}  (4.5 V)", timeline.host_lost);
    println!(
        "  controller resets:     {}  (firmware work stops)",
        timeline.flash_unreliable
    );
    println!("  flash core dead:       {}  (2.5 V)", timeline.core_dead);
    println!("  fully discharged:      {}  (<0.5 V)", timeline.discharged);
}
