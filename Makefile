# Developer workflow for the pfault workspace.
#
#   make build   — release build of every crate and binary
#   make test    — full test suite (unit + integration + property)
#   make lint    — clippy gate: warnings are errors, and bare unwrap()
#                  is banned in pfault-platform library code (tests are
#                  allow-listed via cfg_attr in crates/core/src/lib.rs)
#   make check   — everything CI runs

CARGO ?= cargo

.PHONY: all build test lint lint-core lint-workspace check clean

all: check

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

# The platform crate is the resilience boundary: trial failures must be
# values, never process aborts, so unwrap() is denied in its library and
# binaries outright.
lint-core:
	$(CARGO) clippy -p pfault-platform --all-targets -- -D warnings -D clippy::unwrap_used

lint-workspace:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

lint: lint-core lint-workspace

check: build lint test

clean:
	$(CARGO) clean
