# Developer workflow for the pfault workspace.
#
#   make build   — release build of every crate and binary
#   make test    — full test suite (unit + integration + property)
#   make lint    — clippy gate: warnings are errors, and bare unwrap()
#                  is banned in pfault-platform library code (tests are
#                  allow-listed via cfg_attr in crates/core/src/lib.rs)
#   make sweep-smoke — bounded fault-space boundary sweep (<10 s): the
#                  stock firmware must sweep clean, and the seeded
#                  apply-before-verify bug must be caught and minimized
#   make obs-smoke — observability determinism gate: two same-seed
#                  campaigns must write byte-identical metrics JSON and
#                  probe-trace JSONL
#   make recovery-smoke — mechanistic-recovery gate (<10 s): the storm
#                  sweep must interrupt recovery stages, resume them,
#                  and degrade at least one device to read-only, and
#                  two same-seed runs must emit byte-identical reports
#   make fleet-smoke — fleet gate: correlated rack-level cuts must
#                  degrade MTTDL below the independent baseline with
#                  byte-identical same-seed reports, and the forced-loss
#                  config must lose data iff more than k chunks are gone
#   make kv-smoke — application-consistency gate: the KV sweep must
#                  produce surfaced, masked, and silent-poison outcomes,
#                  half-apply must poison strictly more than
#                  discard-whole, and same-seed reports must be
#                  byte-identical
#   make serve-smoke — campaign-daemon gate (<30 s): the serve
#                  experiment kills a daemon mid-campaign, restarts it
#                  over the same spool, and exits non-zero unless the
#                  resumed report is byte-identical to an uninterrupted
#                  run, event delivery is exactly-once, the bounded
#                  queue answered Busy, and drain left a resumable
#                  checkpoint behind
#   make plan-smoke — adaptive-planner gate (<60 s): the plan
#                  experiment exits non-zero unless the adaptive run
#                  matches the fixed baseline's confidence bands at
#                  ≥10x fewer trials, all engines reduce byte-equally,
#                  and planned pause/resume is byte-identical; cmp
#                  enforces deterministic same-seed reports
#   make bench   — campaign engine benchmark; rewrites BENCH_campaign.json
#   make bench-smoke — CI-sized campaign bench: copy-on-write cloning
#                  must be ≥2x replay-from-cold (both paths sped up
#                  together — see campaignbench.rs) and all engines
#                  byte-identical
#   make check   — everything CI runs

CARGO ?= cargo

.PHONY: all build test lint lint-core lint-workspace sweep-smoke obs-smoke recovery-smoke fleet-smoke kv-smoke serve-smoke plan-smoke bench bench-smoke check clean

all: check

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

# Self-checking: the sweep's own oracle asserts the clean run has zero
# violations; the --inject-crc-bug run exits non-zero unless the bug is
# found and shrunk (see crates/bench/src/bin/repro.rs).
sweep-smoke: build
	./target/release/repro --exp sweep --seed 7
	./target/release/repro --exp sweep --seed 7 --inject-crc-bug --minimize

# The platform, fleet, and KV crates are the resilience boundary: trial
# failures must be values, never process aborts, so unwrap() is denied
# in their libraries and binaries outright. The flash arena and the
# device/image layer joined the gate with Snapshot v3: every campaign
# trial clones through them, so a panic there kills whole campaigns.
# The serve daemon joined with campaign-as-a-service: one panicking
# connection or job thread must never take down the other jobs.
lint-core:
	$(CARGO) clippy -p pfault-platform -p pfault-fleet -p pfault-kv -p pfault-flash -p pfault-ssd -p pfault-serve --all-targets -- -D warnings -D clippy::unwrap_used

lint-workspace:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

lint: lint-core lint-workspace

# The probe bus is only useful if it is deterministic: the repro binary
# self-checks the trace (dense seqs, parseable lines, non-empty
# per-class metrics), and cmp enforces bit-identical reruns.
obs-smoke: build
	./target/release/repro --exp campaign --trials 4 --seed 11 \
		--metrics target/obs-a.json --trace target/obs-a.jsonl
	./target/release/repro --exp campaign --trials 4 --seed 11 \
		--metrics target/obs-b.json --trace target/obs-b.jsonl
	cmp target/obs-a.json target/obs-b.json
	cmp target/obs-a.jsonl target/obs-b.jsonl
	./target/release/blkdump --obs target/obs-a.jsonl > /dev/null

# Self-checking: an explicit recovery-storm run exits non-zero unless
# cuts landed inside recovery stages, interrupted sessions resumed, and
# at least one device degraded to read-only instead of bricking (see
# crates/bench/src/bin/repro.rs); cmp enforces determinism.
recovery-smoke: build
	./target/release/repro --exp recovery-storm --json target/storm-a.json
	./target/release/repro --exp recovery-storm --json target/storm-b.json
	cmp target/storm-a.json target/storm-b.json

# Self-checking: an explicit fleet run exits non-zero unless correlated
# cuts lose strictly more stripes (and MTTDL) than the same victim count
# applied independently, degraded reads and rebuild interruptions
# happened, every loss is cause-attributed, and the serial/stealing
# reductions agree bit-for-bit (see crates/core/src/experiments/fleet.rs).
# cmp enforces byte-identical same-seed reports; the targeted proptest run
# asserts data loss occurs iff more than k chunks of a stripe are wiped.
fleet-smoke: build
	./target/release/repro --exp fleet --seed 13 --json target/fleet-a.json
	./target/release/repro --exp fleet --seed 13 --json target/fleet-b.json
	cmp target/fleet-a.json target/fleet-b.json
	$(CARGO) test -q -p pfault-fleet --lib forced_wipes_cause_loss_iff_beyond_parity

# Self-checking: an explicit kv run exits non-zero unless every
# divergence class occurred somewhere in the sweep, the half-applying
# firmware silently poisoned strictly more than the CRC-verifying
# firmware at equal seeds, journal batches actually tore, and the
# serial/stealing reductions agree bit-for-bit (see
# crates/core/src/experiments/kv.rs). cmp enforces byte-identical
# same-seed reports; the targeted test pins the seeded silent-poison
# reproduction in the store crate itself.
kv-smoke: build
	./target/release/repro --exp kv --seed 11 --json target/kv-a.json
	./target/release/repro --exp kv --seed 11 --json target/kv-b.json
	cmp target/kv-a.json target/kv-b.json
	$(CARGO) test -q -p pfault-kv --lib seeded_silent_poison_reproduces

# Campaign engine v2 benchmark: image-clone vs replay-from-cold
# trials/sec, engine byte-equality, scheduler utilization. `bench`
# regenerates the committed BENCH_campaign.json; `bench-smoke` is the
# CI-sized self-checking variant (exits non-zero unless the CoW-clone
# speedup reaches 2x and serial/striped/stealing reports are
# byte-identical — see crates/bench/src/bin/campaignbench.rs).
bench: build
	./target/release/campaignbench --out BENCH_campaign.json

bench-smoke: build
	./target/release/campaignbench --smoke --out target/bench-smoke.json

# Self-checking: the serve experiment spins up real daemons on loopback
# sockets and exits non-zero unless every durability and backpressure
# property held (see crates/serve/src/selfcheck.rs).
serve-smoke: build
	./target/release/repro --exp serve --seed 11

# Self-checking: the plan experiment exits non-zero unless the ≥10x
# trial-saving, engine byte-equality, splitting determinism, and
# planned resume properties all held (see
# crates/core/src/experiments/plan.rs); cmp enforces byte-identical
# same-seed reports.
plan-smoke: build
	./target/release/repro --exp plan --json target/plan-a.json
	./target/release/repro --exp plan --json target/plan-b.json
	cmp target/plan-a.json target/plan-b.json

check: build lint test sweep-smoke obs-smoke recovery-smoke fleet-smoke kv-smoke serve-smoke plan-smoke bench-smoke

clean:
	$(CARGO) clean
