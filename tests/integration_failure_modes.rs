//! Cross-crate integration: the paper's qualitative failure-mode claims
//! hold in the model.

use pfault_platform::platform::{TestPlatform, TrialConfig};
use pfault_power::FaultInjector;
use pfault_sim::storage::GIB;
use pfault_ssd::CacheConfig;
use pfault_workload::WorkloadSpec;

fn base() -> TrialConfig {
    let mut c = TrialConfig::paper_default();
    c.workload = WorkloadSpec::builder().wss_bytes(8 * GIB).build();
    c.requests = 40;
    c
}

fn total_loss(config: TrialConfig, seeds: std::ops::Range<u64>) -> u64 {
    let platform = TestPlatform::new(config);
    seeds
        .map(|s| {
            platform
                .run_trial(s)
                .expect("trial runs")
                .counts
                .total_data_loss()
        })
        .sum()
}

#[test]
fn read_only_workloads_lose_no_data() {
    let mut c = base();
    c.workload = WorkloadSpec::builder()
        .wss_bytes(8 * GIB)
        .write_fraction(0.0)
        .build();
    assert_eq!(
        total_loss(c, 0..10),
        0,
        "§IV-B: fully-read → no data failure"
    );
}

#[test]
fn supercap_power_loss_protection_eliminates_loss() {
    let mut c = base();
    c.ssd.supercap = true;
    assert_eq!(total_loss(c, 0..10), 0, "§I: PLP drives move pending data");
}

#[test]
fn disabling_the_cache_does_not_eliminate_loss() {
    // §IV-A: "we have also performed experiments by disabling the SSD
    // internal cache where the results reveal the similar failures".
    let mut c = base();
    c.ssd.cache = CacheConfig::disabled();
    let loss = total_loss(c, 0..20);
    assert!(loss > 0, "mapping volatility must still lose data");
}

#[test]
fn write_heavier_mixes_lose_more() {
    // §IV-B shape: the failure count grows with the write share.
    let loss_at = |wf: f64| {
        let mut c = base();
        c.workload = WorkloadSpec::builder()
            .wss_bytes(8 * GIB)
            .write_fraction(wf)
            .build();
        total_loss(c, 0..20)
    };
    let full = loss_at(1.0);
    let light = loss_at(0.2);
    assert!(
        full > light,
        "full-write loss ({full}) must exceed 20%-write loss ({light})"
    );
}

#[test]
fn transistor_cut_and_discharge_ramp_both_lose_data() {
    // §III-A2: the rigs differ, but neither is safe; the instant cut
    // interrupts at least as many in-flight programs.
    let atx = base();
    let mut cutter = base();
    cutter.injector = FaultInjector::transistor();
    let platform_atx = TestPlatform::new(atx);
    let platform_cut = TestPlatform::new(cutter);
    let mut atx_loss = 0;
    let mut cut_loss = 0;
    let mut atx_interrupted = 0;
    let mut cut_interrupted = 0;
    for seed in 0..15 {
        let a = platform_atx.run_trial(seed).expect("trial runs");
        let c = platform_cut.run_trial(seed).expect("trial runs");
        atx_loss += a.counts.total_data_loss();
        cut_loss += c.counts.total_data_loss();
        atx_interrupted += a.interrupted_programs;
        cut_interrupted += c.interrupted_programs;
    }
    assert!(atx_loss > 0);
    assert!(cut_loss > 0);
    assert!(
        atx_interrupted > 0,
        "ramp faults must catch in-flight programs"
    );
    assert!(
        cut_interrupted > 0,
        "instant cuts must catch in-flight programs"
    );
}

#[test]
fn paired_page_damage_reaches_previously_written_data() {
    // §IV-A: "power fault not only may disturb the currently writing
    // data, it may corrupt the previously written data".
    let platform = TestPlatform::new(base());
    let paired: u64 = (0..15)
        .map(|s| {
            platform
                .run_trial(s)
                .expect("trial runs")
                .paired_corruptions
        })
        .sum();
    assert!(paired > 0, "paired-page collateral damage must occur");
}
