//! Observability integration: the probe bus must be deterministic,
//! invisible to trial outcomes, and aggregate coherently at campaign
//! level.

use proptest::prelude::*;

use pfault_obs::{parse_jsonl_line, render_records, Metrics};
use pfault_platform::campaign::{Campaign, CampaignConfig};
use pfault_platform::platform::{TestPlatform, TrialConfig};
use pfault_sim::storage::GIB;
use pfault_workload::WorkloadSpec;

fn obs_trial(requests: usize) -> TrialConfig {
    TrialConfig::paper_default()
        .with_workload(WorkloadSpec::builder().wss_bytes(8 * GIB).build())
        .with_requests(requests)
        .with_obs(true)
}

#[test]
fn same_seed_trials_emit_byte_identical_jsonl() {
    let platform = TestPlatform::new(obs_trial(40));
    let a = platform.run_trial(91).expect("trial runs");
    let b = platform.run_trial(91).expect("trial runs");
    let jsonl_a = render_records(&a.probe_records);
    let jsonl_b = render_records(&b.probe_records);
    assert!(!jsonl_a.is_empty(), "obs trial produced no probe records");
    assert_eq!(jsonl_a, jsonl_b, "same seed must render identical JSONL");

    // Every line must parse back with a dense sequence.
    for (i, line) in jsonl_a.lines().enumerate() {
        let parsed = parse_jsonl_line(line).expect("own rendering parses");
        assert_eq!(parsed.seq, i as u64, "sequence hole at line {i}");
    }
}

#[test]
fn same_seed_trials_derive_identical_histograms() {
    let platform = TestPlatform::new(obs_trial(40));
    let a = platform.run_trial(92).expect("trial runs");
    let b = platform.run_trial(92).expect("trial runs");
    let ma = a.telemetry.expect("obs trial carries telemetry");
    let mb = b.telemetry.expect("obs trial carries telemetry");
    assert_eq!(ma.counters, mb.counters);
    assert_eq!(
        ma.histograms.keys().collect::<Vec<_>>(),
        mb.histograms.keys().collect::<Vec<_>>()
    );
    for (key, ha) in &ma.histograms {
        let hb = &mb.histograms[key];
        assert_eq!(ha.buckets(), hb.buckets(), "histogram {key} diverged");
        assert!(ha.count() > 0, "histogram {key} is empty");
    }
    // The derived metrics must agree with a fresh derivation from the
    // raw records: no hidden state outside the record stream.
    let rederived = Metrics::from_records(&a.probe_records);
    assert_eq!(ma.counters, rederived.counters);
}

#[test]
fn disabled_probes_cost_nothing_and_carry_nothing() {
    let platform = TestPlatform::new(obs_trial(40).with_obs(false));
    let o = platform.run_trial(93).expect("trial runs");
    assert!(o.probe_records.is_empty());
    assert!(o.telemetry.is_none());
}

#[test]
fn campaign_aggregates_per_failure_class_telemetry() {
    let config = CampaignConfig {
        trial: obs_trial(40),
        trials: 6,
        requests_per_trial: 40,
    };
    let report = Campaign::new(config, 11).run();
    assert_eq!(report.obs.trials_observed, 6);
    assert!(!report.obs.is_empty(), "campaign obs aggregate is empty");
    assert!(!report.obs.by_class.is_empty(), "no per-class telemetry");
    // Every trial lands in at least one class bucket (possibly more
    // when it exhibits several failure classes), so per-class sums
    // cover the totals and no single bucket exceeds them.
    for (key, total) in &report.obs.totals.counters {
        let classed: u64 = report
            .obs
            .by_class
            .values()
            .map(|m| m.counters.get(key).copied().unwrap_or(0))
            .sum();
        assert!(classed >= *total, "counter {key} lost between classes");
        for (class, m) in &report.obs.by_class {
            let in_class = m.counters.get(key).copied().unwrap_or(0);
            assert!(in_class <= *total, "class {class} overcounts {key}");
        }
    }
}

proptest! {
    // The probe bus is observation only: enabling it must never change
    // what a trial concludes.
    #[test]
    fn probes_never_change_trial_classification(seed in 0u64..1000, requests in 20usize..40) {
        let base = TrialConfig::paper_default()
            .with_workload(WorkloadSpec::builder().wss_bytes(8 * GIB).build())
            .with_requests(requests);
        let quiet = TestPlatform::new(base).run_trial(seed).expect("trial runs");
        let observed = TestPlatform::new(base.with_obs(true))
            .run_trial(seed)
            .expect("trial runs");
        prop_assert_eq!(quiet.counts, observed.counts);
        prop_assert_eq!(quiet.verdicts, observed.verdicts);
        prop_assert_eq!(quiet.fault_commanded_ms, observed.fault_commanded_ms);
        prop_assert!(quiet.probe_records.is_empty());
        prop_assert!(!observed.probe_records.is_empty());
    }
}
