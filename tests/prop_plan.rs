//! Property tests for the campaign planner: estimator coverage
//! guarantees, stratified-recombination correctness, and planned
//! pause/resume byte-identity.

use proptest::prelude::*;

use pfault_platform::campaign::{Campaign, CampaignConfig, ProgressSignal};
use pfault_platform::plan::{clopper_pearson, wilson, PlanSpec, PlanState};

/// Binomial pmf in log space — finite for every n this file sweeps.
fn binom_pmf(n: u64, k: u64, p: f64) -> f64 {
    let mut ln = 0.0f64;
    for i in 0..k {
        ln += ((n - i) as f64).ln() - ((i + 1) as f64).ln();
    }
    (ln + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln()).exp()
}

/// Exact coverage of a binomial interval at (n, p): the probability,
/// summed over every possible outcome k, that the interval built from
/// (k, n) contains the true p.
fn coverage(n: u64, p: f64, confidence: f64, exact: bool) -> f64 {
    (0..=n)
        .map(|k| {
            let iv = if exact {
                clopper_pearson(k, n, confidence)
            } else {
                wilson(k, n, confidence)
            };
            if iv.covers(p) {
                binom_pmf(n, k, p)
            } else {
                0.0
            }
        })
        .sum()
}

/// A campaign small enough that one planned run takes milliseconds.
fn tiny_config() -> CampaignConfig {
    let mut config = CampaignConfig::paper_default();
    config.trial.ssd.geometry = pfault_flash::FlashGeometry::new(1 << 14, 256);
    config.trial.ssd.ftl = pfault_ftl::FtlConfig::for_geometry(config.trial.ssd.geometry);
    config.trial.workload = pfault_workload::WorkloadSpec::builder()
        .wss_bytes(4 * pfault_sim::storage::GIB)
        .build();
    config.trials = 6;
    config.requests_per_trial = 5;
    config
}

/// A confidence spec loose enough to converge within a few rounds.
fn loose_ci() -> PlanSpec {
    PlanSpec::Confidence {
        half_width: 0.45,
        confidence: 0.9,
        exact: false,
        min_trials: 9,
        max_trials: 24,
        round: 3,
    }
}

proptest! {
    // ---------------- Interval estimators ----------------

    /// Clopper-Pearson is conservative by construction: its exact
    /// coverage is at least the nominal confidence for every (n, p),
    /// exhaustively over all k at each n.
    #[test]
    fn clopper_pearson_coverage_is_at_least_nominal(
        n in 1u64..26,
        p in 0.001f64..0.999,
        confidence in 0.80f64..0.99
    ) {
        let cov = coverage(n, p, confidence, true);
        prop_assert!(
            cov >= confidence - 1e-9,
            "CP coverage {cov} < nominal {confidence} at n={n} p={p}"
        );
    }

    /// Wilson trades conservatism for width: its coverage oscillates
    /// around nominal but stays near it away from the extremes.
    #[test]
    fn wilson_coverage_stays_near_nominal(n in 15u64..80, p in 0.1f64..0.9) {
        let cov = coverage(n, p, 0.95, false);
        prop_assert!(
            cov >= 0.90,
            "Wilson coverage {cov} fell below 0.90 at n={n} p={p}"
        );
    }

    /// Shape invariants of the Wilson interval: bounds bracket the
    /// point estimate inside [0,1], boundary tallies pin the boundary
    /// endpoints, higher confidence nests, and more data tightens.
    #[test]
    fn wilson_shape_invariants(n in 1u64..400, k_seed: u64, confidence in 0.5f64..0.99) {
        let k = k_seed % (n + 1);
        let iv = wilson(k, n, confidence);
        let p_hat = k as f64 / n as f64;
        prop_assert!(0.0 <= iv.lo && iv.lo <= p_hat && p_hat <= iv.hi && iv.hi <= 1.0);
        if k == 0 {
            prop_assert!(iv.lo == 0.0, "k=0 must pin lo to 0, got {}", iv.lo);
        }
        if k == n {
            prop_assert!(iv.hi == 1.0, "k=n must pin hi to 1, got {}", iv.hi);
        }
        let wider = wilson(k, n, (confidence + 1.0) / 2.0);
        prop_assert!(
            wider.lo <= iv.lo + 1e-12 && iv.hi <= wider.hi + 1e-12,
            "higher confidence must nest the lower one"
        );
        let tighter = wilson(4 * k, 4 * n, confidence);
        prop_assert!(
            tighter.half_width() <= iv.half_width() + 1e-12,
            "4x the data at the same rate must not widen the interval"
        );
    }

    // ---------------- Stratified recombination ----------------

    /// With uniform weights and identical per-stratum tallies, the
    /// stratified estimator collapses to the pooled one: same point
    /// estimate, same Wilson interval.
    #[test]
    fn uniform_strata_interval_matches_pooled_wilson(
        h in 2usize..6,
        n_per in 1u64..30,
        k_seed: u64
    ) {
        let k = k_seed % (n_per + 1);
        let strata: Vec<(String, f64)> = (0..h).map(|i| (format!("s{i}"), 1.0)).collect();
        let spec = PlanSpec::fixed(h as u64 * n_per);
        let mut state = PlanState::new(spec, strata).expect("planner state");
        for s in 0..h {
            for t in 0..n_per {
                state.absorb(s, t < k);
            }
        }
        let total_n = h as u64 * n_per;
        let total_k = h as u64 * k;
        prop_assert!(
            (state.p_hat() - total_k as f64 / total_n as f64).abs() < 1e-12,
            "stratified p_hat {} != pooled {}", state.p_hat(), total_k as f64 / total_n as f64
        );
        let pooled = wilson(total_k, total_n, spec.confidence());
        let iv = state.interval();
        prop_assert!(
            (iv.lo - pooled.lo).abs() < 1e-9 && (iv.hi - pooled.hi).abs() < 1e-9,
            "stratified interval [{}, {}] != pooled [{}, {}] at h={h} n={n_per} k={k}",
            iv.lo, iv.hi, pooled.lo, pooled.hi
        );
    }

    // ---------------- Planned pause/resume ----------------

    /// An adaptive campaign paused at an arbitrary trial (checkpointing
    /// mid-round included) and resumed from the checkpoint produces a
    /// report byte-identical to the uninterrupted run — for any seed
    /// and any pause point.
    #[test]
    fn planned_pause_resume_is_byte_identical(seed: u64, pause in 1u64..7) {
        let build = || {
            Campaign::builder(tiny_config())
                .seed(seed)
                .plan(loose_ci())
                .build()
        };
        let golden = build().run_planned().expect("uninterrupted planned run");
        let golden = serde_json::to_string(&golden).expect("report serializes");

        let dir = std::env::temp_dir().join("pfault-prop-plan");
        let _ = std::fs::create_dir_all(&dir);
        let ckpt = dir.join(format!(
            "ckpt-{}-{seed}-{pause}.json",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&ckpt);
        let campaign = build().with_checkpoint(&ckpt, 2);
        let run = campaign
            .run_planned_observed(&mut |p| {
                if p.completed == pause {
                    ProgressSignal::Pause
                } else {
                    ProgressSignal::Continue
                }
            })
            .expect("paused planned run");
        prop_assert!(run.paused, "pause at {pause} must interrupt a >=9-trial run");
        let resumed = campaign
            .resume_planned_observed(&ckpt, &mut |_| ProgressSignal::Continue)
            .expect("resumed planned run")
            .report;
        let resumed = serde_json::to_string(&resumed).expect("report serializes");
        let _ = std::fs::remove_file(&ckpt);
        prop_assert_eq!(golden, resumed);
    }
}
