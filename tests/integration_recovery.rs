//! Cross-crate integration: device-level power-loss and recovery
//! semantics (flash ↔ FTL ↔ device).

use pfault_power::FaultInjector;
use pfault_sim::{DetRng, Lba, SectorCount, SimDuration};
use pfault_ssd::device::{HostCommand, Ssd, VerifiedContent};
use pfault_ssd::VendorPreset;

fn small_ssd(seed: u64) -> Ssd {
    let mut config = VendorPreset::SsdA.config();
    config.geometry = pfault_flash::FlashGeometry::new(1024, 64);
    config.ftl = pfault_ftl::FtlConfig::for_geometry(config.geometry);
    Ssd::new(config, DetRng::new(seed))
}

fn write_and_wait(ssd: &mut Ssd, id: u64, lba: Lba, sectors: u64, tag: u64) -> HostCommand {
    let cmd = HostCommand::write(id, 0, lba, SectorCount::new(sectors), tag);
    ssd.submit(cmd);
    loop {
        if ssd.drain_completions().iter().any(|c| c.request_id == id) {
            break;
        }
        let next = ssd
            .next_event()
            .unwrap_or(ssd.now() + SimDuration::from_millis(1));
        ssd.advance_to(next.max(ssd.now() + SimDuration::from_micros(1)));
    }
    cmd
}

fn cycle_power(ssd: &mut Ssd) {
    let timeline = FaultInjector::arduino_atx_loaded().timeline(ssd.now());
    ssd.power_fail(&timeline);
    ssd.power_on_recover(timeline.discharged + SimDuration::from_secs(1))
        .expect("recovery remounts");
}

#[test]
fn quiesced_data_survives_any_number_of_cycles() {
    let mut ssd = small_ssd(1);
    let cmd = write_and_wait(&mut ssd, 1, Lba::new(100), 8, 0xFACE);
    ssd.quiesce();
    for _ in 0..3 {
        cycle_power(&mut ssd);
        for i in 0..8 {
            match ssd.verify_read(Lba::new(100 + i)) {
                VerifiedContent::Written(d) => assert_eq!(d, cmd.sector_content(i)),
                other => panic!("sector {i} lost after clean cycle: {other:?}"),
            }
        }
    }
}

#[test]
fn immediate_fault_after_ack_loses_the_write() {
    let mut ssd = small_ssd(2);
    write_and_wait(&mut ssd, 1, Lba::new(50), 4, 0xB00);
    // Instant cut right at the ACK: data is still in the cache.
    let timeline = FaultInjector::transistor().timeline(ssd.now());
    ssd.power_fail(&timeline);
    ssd.power_on_recover(timeline.discharged + SimDuration::from_secs(1))
        .expect("recovery remounts");
    let lost = (0..4).any(|i| {
        !matches!(
            ssd.verify_read(Lba::new(50 + i)),
            VerifiedContent::Written(_)
        )
    });
    assert!(
        lost,
        "an ACKed-but-cached write must not survive an instant cut"
    );
}

#[test]
fn overwrite_then_fault_reverts_to_committed_version() {
    let mut ssd = small_ssd(3);
    let old = write_and_wait(&mut ssd, 1, Lba::new(10), 2, 0x01D);
    ssd.quiesce(); // old version durable
    let _new = write_and_wait(&mut ssd, 2, Lba::new(10), 2, 0x2E3);
    // Fault before the new version's mapping commits (instant cut).
    let timeline = FaultInjector::transistor().timeline(ssd.now());
    ssd.power_fail(&timeline);
    ssd.power_on_recover(timeline.discharged + SimDuration::from_secs(1))
        .expect("recovery remounts");
    for i in 0..2 {
        match ssd.verify_read(Lba::new(10 + i)) {
            VerifiedContent::Written(d) => {
                assert_eq!(d, old.sector_content(i), "must revert to the old version");
            }
            other => panic!("expected the old version, got {other:?}"),
        }
    }
}

#[test]
fn device_is_usable_after_recovery() {
    let mut ssd = small_ssd(4);
    write_and_wait(&mut ssd, 1, Lba::new(0), 4, 1);
    cycle_power(&mut ssd);
    assert!(ssd.is_operational());
    let cmd = write_and_wait(&mut ssd, 2, Lba::new(200), 4, 2);
    ssd.quiesce();
    cycle_power(&mut ssd);
    for i in 0..4 {
        match ssd.verify_read(Lba::new(200 + i)) {
            VerifiedContent::Written(d) => assert_eq!(d, cmd.sector_content(i)),
            other => panic!("post-recovery write lost: {other:?}"),
        }
    }
}

#[test]
fn repeated_faults_accumulate_flash_damage_counters() {
    let mut ssd = small_ssd(5);
    for round in 0..5u64 {
        for i in 0..10 {
            ssd.submit(HostCommand::write(
                round * 100 + i,
                0,
                Lba::new((round * 10 + i) * 4),
                SectorCount::new(4),
                round * 1000 + i,
            ));
        }
        ssd.advance_to(ssd.now() + SimDuration::from_millis(3));
        let timeline = FaultInjector::transistor().timeline(ssd.now());
        ssd.power_fail(&timeline);
        ssd.power_on_recover(timeline.discharged + SimDuration::from_secs(1))
            .expect("recovery remounts");
    }
    assert!(
        ssd.flash_stats().interrupted_programs > 0,
        "faults mid-flush must interrupt programs"
    );
}
