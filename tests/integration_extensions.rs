//! Cross-crate integration: the extension features (checkpoints, TRIM,
//! brownouts, wear, Zipf, trace replay) compose with the fault platform.

use pfault_platform::experiments::{brownout, flush, recovery, repeated, wear, ExperimentScale};
use pfault_platform::platform::{TestPlatform, TrialConfig};
use pfault_power::{BrownoutEvent, BrownoutSeverity, FaultInjector, Millivolts};
use pfault_sim::storage::GIB;
use pfault_sim::{DetRng, Lba, SectorCount, SimDuration};
use pfault_ssd::device::{HostCommand, Ssd, VerifiedContent};
use pfault_ssd::VendorPreset;
use pfault_workload::replay::{parse_trace, ReplayGenerator};
use pfault_workload::{AccessPattern, WorkloadSpec};

fn tiny() -> ExperimentScale {
    ExperimentScale {
        faults_per_point: 24,
        requests_per_trial: 30,
        threads: 4,
    }
}

#[test]
fn brownout_severity_staircase() {
    let report = brownout::run(tiny(), 5);
    let harmless = report.at(4_600).expect("harmless row");
    let link = report.at(4_495).expect("link-drop row");
    let reset = report.at(3_500).expect("reset row");
    assert_eq!(harmless.severity, BrownoutSeverity::Harmless);
    assert_eq!(harmless.trials_with_data_loss, 0);
    assert_eq!(harmless.io_errors, 0);
    assert_eq!(link.severity, BrownoutSeverity::LinkDrop);
    assert_eq!(link.trials_with_data_loss, 0, "link drops lose no state");
    assert!(
        reset.trials_with_data_loss > 0,
        "controller resets lose volatile state"
    );
}

#[test]
fn wear_amplifies_fault_damage_at_end_of_life() {
    let report = wear::run(tiny(), 5);
    let fresh = report.at(0).expect("fresh row");
    let eol = report.at(2_800).expect("EOL row");
    assert!(
        eol.data_loss_per_fault > 2.0 * fresh.data_loss_per_fault,
        "EOL ({}) must lose far more than fresh ({})",
        eol.data_loss_per_fault,
        fresh.data_loss_per_fault
    );
}

#[test]
fn flush_barriers_reduce_loss_but_cost_throughput() {
    let report = flush::run(tiny(), 5);
    let never = report.at(None).expect("never row");
    let every = report.at(Some(1)).expect("every-write row");
    assert!(
        every.data_loss_per_fault < never.data_loss_per_fault,
        "fsync-per-write ({}) must lose less than never ({})",
        every.data_loss_per_fault,
        never.data_loss_per_fault
    );
    assert!(
        every.responded_iops < never.responded_iops,
        "durability costs throughput"
    );
}

#[test]
fn full_scan_recovery_reduces_loss() {
    let report = recovery::run(tiny(), 5);
    assert!(
        report.scan.data_loss_per_fault < report.journal.data_loss_per_fault,
        "scan ({}) must lose less than journal replay ({})",
        report.scan.data_loss_per_fault,
        report.journal.data_loss_per_fault
    );
    assert!(
        report.scan.fwa < report.journal.fwa,
        "the scan specifically recovers clean reverts (FWA)"
    );
}

#[test]
fn repeated_outages_do_not_compound_on_young_devices() {
    let mut scale = tiny();
    scale.faults_per_point = 16; // → 2 devices × 8 cycles
    let report = repeated::run(scale, 5);
    assert_eq!(report.rows.len(), 8);
    // Once a request survives an outage (its state is durable), later
    // outages must not claim it.
    assert_eq!(report.total_old_newly_lost(), 0);
    // Per-cycle loss does not trend upward: the last cycle loses no more
    // than double the first (flat within noise).
    let first = report.rows.first().expect("cycle 0").fresh_lost;
    let last = report.rows.last().expect("cycle 7").fresh_lost;
    assert!(
        last <= first.max(1) * 3,
        "per-cycle loss should stay flat: first {first}, last {last}"
    );
}

#[test]
fn checkpointed_device_still_reproduces_failures() {
    // Aggressive checkpointing must not hide the core result: faults on
    // write workloads still lose recent data.
    let mut c = TrialConfig::paper_default();
    c.ssd.ftl.checkpoint_every_batches = 8;
    c.workload = WorkloadSpec::builder().wss_bytes(8 * GIB).build();
    c.requests = 40;
    let platform = TestPlatform::new(c);
    let loss: u64 = (0..12)
        .map(|s| {
            platform
                .run_trial(s)
                .expect("trial runs")
                .counts
                .total_data_loss()
        })
        .sum();
    assert!(loss > 0);
}

#[test]
fn zipf_workload_runs_through_the_full_platform() {
    let mut c = TrialConfig::paper_default();
    c.workload = WorkloadSpec::builder()
        .wss_bytes(8 * GIB)
        .pattern(AccessPattern::Zipf { theta: 0.9 })
        .build();
    c.requests = 30;
    let platform = TestPlatform::new(c);
    let baseline = platform.run_fault_free(3);
    assert_eq!(baseline.counts.total_data_loss(), 0);
    let faulted = platform.run_trial(3).expect("trial runs");
    assert!(faulted.requests_issued > 0);
    // Hot overwrites mean many sectors are superseded; the tally still
    // covers every request exactly once.
    let tallied = faulted.counts.data_failures
        + faulted.counts.fwa
        + faulted.counts.io_errors
        + faulted.counts.intact;
    assert_eq!(tallied, faulted.requests_issued);
}

#[test]
fn trim_then_fault_interacts_correctly_with_recovery() {
    let mut ssd = Ssd::new(VendorPreset::SsdA.config(), DetRng::new(8));
    let cmd = HostCommand::write(1, 0, Lba::new(500), SectorCount::new(4), 0xFE);
    ssd.submit(cmd);
    ssd.advance_to(pfault_sim::SimTime::from_millis(5));
    ssd.drain_completions();
    ssd.quiesce();
    ssd.trim(Lba::new(500), SectorCount::new(4));
    ssd.quiesce();
    let timeline = FaultInjector::arduino_atx_loaded().timeline(ssd.now());
    ssd.power_fail(&timeline);
    ssd.power_on_recover(timeline.discharged + SimDuration::from_secs(1))
        .expect("recovery remounts");
    for i in 0..4 {
        assert_eq!(
            ssd.verify_read(Lba::new(500 + i)),
            VerifiedContent::Unwritten
        );
    }
}

#[test]
fn replayed_trace_survives_clean_power_cycle() {
    let ops = parse_trace("0,W,100,8\n500,W,200,16\n1000,W,100,8\n").expect("valid trace");
    let mut replay = ReplayGenerator::new(ops, DetRng::new(5));
    let mut ssd = Ssd::new(VendorPreset::SsdC.config(), DetRng::new(5));
    let mut last_writes = std::collections::HashMap::new();
    while let Some(p) = replay.next_packet() {
        ssd.advance_to(p.arrival.max(ssd.now()));
        let cmd = HostCommand::write(p.id, 0, p.lba, p.sectors, p.payload_tag);
        ssd.submit(cmd);
        for i in 0..p.sectors.get() {
            last_writes.insert(Lba::new(p.lba.index() + i), cmd.sector_content(i));
        }
    }
    ssd.advance_to(ssd.now() + SimDuration::from_millis(5));
    ssd.quiesce();
    let timeline = FaultInjector::arduino_atx_loaded().timeline(ssd.now());
    ssd.power_fail(&timeline);
    ssd.power_on_recover(timeline.discharged + SimDuration::from_secs(1))
        .expect("recovery remounts");
    for (lba, expected) in last_writes {
        match ssd.verify_read(lba) {
            VerifiedContent::Written(d) => assert_eq!(d, expected, "{lba}"),
            other => panic!("{lba} lost after quiesced cycle: {other:?}"),
        }
    }
}

#[test]
fn shallow_brownout_storm_is_survivable() {
    // A storm of shallow sags must neither error IO nor lose data.
    let mut ssd = Ssd::new(VendorPreset::SsdB.config(), DetRng::new(6));
    let cmd = HostCommand::write(1, 0, Lba::new(40), SectorCount::new(8), 0x5A);
    ssd.submit(cmd);
    ssd.advance_to(pfault_sim::SimTime::from_millis(2));
    ssd.drain_completions();
    for i in 0..10 {
        let mut event = BrownoutEvent::shallow(ssd.now() + SimDuration::from_millis(i));
        event.floor = Millivolts::new(4_550 + (i as u32 * 10) % 200);
        let severity = ssd.apply_brownout(&event);
        assert_eq!(severity, BrownoutSeverity::Harmless);
    }
    ssd.quiesce();
    for i in 0..8 {
        assert!(matches!(
            ssd.verify_read(Lba::new(40 + i)),
            VerifiedContent::Written(_)
        ));
    }
}
