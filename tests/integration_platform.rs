//! Cross-crate integration: the full platform pipeline (workload →
//! device → fault → tracer → analyzer) behaves coherently.

use pfault_platform::campaign::{Campaign, CampaignConfig};
use pfault_platform::platform::{TestPlatform, TrialConfig};
use pfault_platform::FailureKind;
use pfault_sim::storage::GIB;
use pfault_workload::WorkloadSpec;

fn small_trial() -> TrialConfig {
    let mut c = TrialConfig::paper_default();
    c.workload = WorkloadSpec::builder().wss_bytes(8 * GIB).build();
    c.requests = 40;
    c
}

#[test]
fn fault_free_baseline_verifies_everything_intact() {
    let platform = TestPlatform::new(small_trial());
    for seed in [1, 2, 3] {
        let o = platform.run_fault_free(seed);
        assert_eq!(o.counts.data_failures, 0, "seed {seed}: {:?}", o.counts);
        assert_eq!(o.counts.fwa, 0, "seed {seed}");
        assert_eq!(o.counts.io_errors, 0, "seed {seed}");
        assert_eq!(o.counts.intact, o.requests_issued, "seed {seed}");
    }
}

#[test]
fn trials_replay_bit_exactly() {
    let platform = TestPlatform::new(small_trial());
    let a = platform.run_trial(77).expect("trial runs");
    let b = platform.run_trial(77).expect("trial runs");
    assert_eq!(a.counts, b.counts);
    assert_eq!(a.verdicts, b.verdicts);
    assert_eq!(a.fault_commanded_ms, b.fault_commanded_ms);
    assert_eq!(a.failed_ack_intervals_ms, b.failed_ack_intervals_ms);
}

#[test]
fn every_issued_request_gets_exactly_one_verdict() {
    let platform = TestPlatform::new(small_trial());
    let o = platform.run_trial(13).expect("trial runs");
    assert_eq!(o.verdicts.len() as u64, o.requests_issued);
    let tallied = o.counts.data_failures + o.counts.fwa + o.counts.io_errors + o.counts.intact;
    assert_eq!(tallied, o.requests_issued);
}

#[test]
fn faults_on_write_workloads_lose_data() {
    let platform = TestPlatform::new(small_trial());
    let loss: u64 = (0..12)
        .map(|seed| {
            platform
                .run_trial(seed)
                .expect("trial runs")
                .counts
                .total_data_loss()
        })
        .sum();
    assert!(
        loss > 0,
        "12 faults on a full-write workload must lose data"
    );
}

#[test]
fn io_errors_happen_at_the_fault_boundary() {
    let platform = TestPlatform::new(small_trial());
    let mut io_errors = 0;
    for seed in 0..12 {
        io_errors += platform
            .run_trial(seed)
            .expect("trial runs")
            .counts
            .io_errors;
    }
    assert!(io_errors > 0, "in-flight requests at host-loss must error");
}

#[test]
fn campaign_serial_equals_parallel() {
    let config = CampaignConfig {
        trial: small_trial(),
        trials: 8,
        requests_per_trial: 30,
    };
    let serial = Campaign::new(config, 3).run();
    let parallel = Campaign::new(config, 3).run_parallel(4);
    assert_eq!(serial.counts, parallel.counts);
    assert_eq!(serial.requests_issued, parallel.requests_issued);
    assert_eq!(
        serial.max_failed_ack_interval_ms,
        parallel.max_failed_ack_interval_ms
    );
}

#[test]
fn failure_ledger_is_deterministic_between_serial_and_parallel() {
    use pfault_platform::Watchdog;

    // A config that actually produces trial failures: a tight event budget
    // expires some trials, and the spared ones face a coin-flip mount
    // failure with a single retry, so some devices brick. The parallel
    // runner strides trials across workers and merges; the resulting
    // failures ledger must be *exactly* equal to the serial one —
    // same indices, same causes, same (sorted) order.
    let mut config = CampaignConfig {
        trial: small_trial(),
        trials: 10,
        requests_per_trial: 25,
    };
    config.trial.ssd.geometry = pfault_flash::FlashGeometry::new(1 << 14, 256);
    config.trial.ssd.ftl = pfault_ftl::FtlConfig::for_geometry(config.trial.ssd.geometry);
    config.trial.workload = WorkloadSpec::builder().wss_bytes(4 * GIB).build();
    config.trial.watchdog = Watchdog {
        max_sim_time_us: None,
        max_events: Some(1400),
    };
    config.trial.ssd.mount_failure_rate = 0.5;
    config.trial.ssd.mount_retry_limit = 1;

    let serial = Campaign::new(config, 11).run();
    let parallel = Campaign::new(config, 11).run_parallel(4);

    assert!(
        serial.failures.total_failed() > 0,
        "config must produce ledger entries, got {:?}",
        serial.failures
    );
    assert_eq!(serial.failures, parallel.failures);
    for ledger in [&serial.failures, &parallel.failures] {
        assert!(ledger.watchdog_expired.windows(2).all(|w| w[0] < w[1]));
        assert!(ledger.bricked.windows(2).all(|w| w[0] < w[1]));
    }
}

#[test]
fn failed_requests_were_acked_before_the_fault() {
    // Every ACK→fault interval must be non-negative, and verdicts of kind
    // IoError must correspond to requests that never completed.
    let platform = TestPlatform::new(small_trial());
    for seed in 0..6 {
        let o = platform.run_trial(seed).expect("trial runs");
        for &interval in &o.failed_ack_intervals_ms {
            assert!(interval >= 0.0);
        }
        for v in &o.verdicts {
            if v.kind == FailureKind::IoError {
                assert_eq!(v.sectors_checked, 0, "IO errors are not verified");
            }
        }
    }
}
