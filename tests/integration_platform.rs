//! Cross-crate integration: the full platform pipeline (workload →
//! device → fault → tracer → analyzer) behaves coherently.

use pfault_platform::campaign::{Campaign, CampaignConfig};
use pfault_platform::platform::{TestPlatform, TrialConfig};
use pfault_platform::FailureKind;
use pfault_sim::storage::GIB;
use pfault_workload::WorkloadSpec;

fn small_trial() -> TrialConfig {
    let mut c = TrialConfig::paper_default();
    c.workload = WorkloadSpec::builder().wss_bytes(8 * GIB).build();
    c.requests = 40;
    c
}

#[test]
fn fault_free_baseline_verifies_everything_intact() {
    let platform = TestPlatform::new(small_trial());
    for seed in [1, 2, 3] {
        let o = platform.run_fault_free(seed);
        assert_eq!(o.counts.data_failures, 0, "seed {seed}: {:?}", o.counts);
        assert_eq!(o.counts.fwa, 0, "seed {seed}");
        assert_eq!(o.counts.io_errors, 0, "seed {seed}");
        assert_eq!(o.counts.intact, o.requests_issued, "seed {seed}");
    }
}

#[test]
fn trials_replay_bit_exactly() {
    let platform = TestPlatform::new(small_trial());
    let a = platform.run_trial(77);
    let b = platform.run_trial(77);
    assert_eq!(a.counts, b.counts);
    assert_eq!(a.verdicts, b.verdicts);
    assert_eq!(a.fault_commanded_ms, b.fault_commanded_ms);
    assert_eq!(a.failed_ack_intervals_ms, b.failed_ack_intervals_ms);
}

#[test]
fn every_issued_request_gets_exactly_one_verdict() {
    let platform = TestPlatform::new(small_trial());
    let o = platform.run_trial(13);
    assert_eq!(o.verdicts.len() as u64, o.requests_issued);
    let tallied = o.counts.data_failures + o.counts.fwa + o.counts.io_errors + o.counts.intact;
    assert_eq!(tallied, o.requests_issued);
}

#[test]
fn faults_on_write_workloads_lose_data() {
    let platform = TestPlatform::new(small_trial());
    let loss: u64 = (0..12)
        .map(|seed| platform.run_trial(seed).counts.total_data_loss())
        .sum();
    assert!(
        loss > 0,
        "12 faults on a full-write workload must lose data"
    );
}

#[test]
fn io_errors_happen_at_the_fault_boundary() {
    let platform = TestPlatform::new(small_trial());
    let mut io_errors = 0;
    for seed in 0..12 {
        io_errors += platform.run_trial(seed).counts.io_errors;
    }
    assert!(io_errors > 0, "in-flight requests at host-loss must error");
}

#[test]
fn campaign_serial_equals_parallel() {
    let config = CampaignConfig {
        trial: small_trial(),
        trials: 8,
        requests_per_trial: 30,
    };
    let serial = Campaign::new(config, 3).run();
    let parallel = Campaign::new(config, 3).run_parallel(4);
    assert_eq!(serial.counts, parallel.counts);
    assert_eq!(serial.requests_issued, parallel.requests_issued);
    assert_eq!(
        serial.max_failed_ack_interval_ms,
        parallel.max_failed_ack_interval_ms
    );
}

#[test]
fn failed_requests_were_acked_before_the_fault() {
    // Every ACK→fault interval must be non-negative, and verdicts of kind
    // IoError must correspond to requests that never completed.
    let platform = TestPlatform::new(small_trial());
    for seed in 0..6 {
        let o = platform.run_trial(seed);
        for &interval in &o.failed_ack_intervals_ms {
            assert!(interval >= 0.0);
        }
        for v in &o.verdicts {
            if v.kind == FailureKind::IoError {
                assert_eq!(v.sectors_checked, 0, "IO errors are not verified");
            }
        }
    }
}
