//! Property-based tests over core data structures and invariants,
//! spanning the substrate crates.

use proptest::prelude::*;

use pfault_flash::block::PageData;
use pfault_flash::cell::{CellKind, CellPage};
use pfault_flash::geometry::Ppa;
use pfault_ftl::journal::{DurableLog, JournalBatch, JournalBuffer, JournalEntry};
use pfault_ftl::mapping::MappingTable;
use pfault_power::psu::PsuModel;
use pfault_power::{FaultInjector, Millivolts};
use pfault_sim::checksum::{crc32, fnv64};
use pfault_sim::{DetRng, EventQueue, Lba, SectorCount, SimDuration, SimTime};
use pfault_ssd::device::{HostCommand, Ssd, VerifiedContent};
use pfault_ssd::VendorPreset;

proptest! {
    // ---------------- pfault-sim ----------------

    #[test]
    fn rng_same_seed_same_stream(seed: u64) {
        let mut a = DetRng::new(seed);
        let mut b = DetRng::new(seed);
        for _ in 0..32 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn rng_between_stays_in_bounds(seed: u64, lo in 0u64..1000, span in 0u64..1000) {
        let hi = lo + span;
        let mut r = DetRng::new(seed);
        for _ in 0..64 {
            let v = r.between(lo, hi);
            prop_assert!((lo..=hi).contains(&v));
        }
    }

    #[test]
    fn event_queue_pops_sorted(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_micros(t), i);
        }
        let mut prev = SimTime::ZERO;
        let mut popped = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= prev);
            prev = t;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    #[test]
    fn event_queue_equal_times_are_fifo(n in 1usize..100) {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..n {
            q.push(t, i);
        }
        for i in 0..n {
            prop_assert_eq!(q.pop().map(|(_, v)| v), Some(i));
        }
    }

    #[test]
    fn checksums_detect_any_single_byte_change(
        data in proptest::collection::vec(any::<u8>(), 1..256),
        idx in any::<prop::sample::Index>(),
        delta in 1u8..=255,
    ) {
        let mut mutated = data.clone();
        let i = idx.index(data.len());
        mutated[i] = mutated[i].wrapping_add(delta);
        prop_assert_ne!(crc32(&data), crc32(&mutated));
        prop_assert_ne!(fnv64(&data), fnv64(&mutated));
    }

    #[test]
    fn sector_count_round_trips_whole_sectors(sectors in 1u64..10_000) {
        let c = SectorCount::from_bytes(sectors * 4096);
        prop_assert_eq!(c.get(), sectors);
        prop_assert_eq!(c.bytes(), sectors * 4096);
    }

    #[test]
    fn lba_span_is_dense(start in 0u64..1_000_000, len in 1u64..300) {
        let lbas: Vec<u64> = Lba::new(start).span(SectorCount::new(len)).map(Lba::index).collect();
        prop_assert_eq!(lbas.len() as u64, len);
        for (i, l) in lbas.iter().enumerate() {
            prop_assert_eq!(*l, start + i as u64);
        }
    }

    // ---------------- pfault-flash ----------------

    #[test]
    fn cell_page_round_trips_any_data(
        kind in prop::sample::select(vec![CellKind::Slc, CellKind::Mlc, CellKind::Tlc]),
        data in proptest::collection::vec(any::<u8>(), 1..48),
    ) {
        let cells_needed = data.len() * 8 / kind.bits_per_cell() as usize + 8;
        let mut page = CellPage::erased(kind, cells_needed);
        page.program_complete(&data);
        let read = page.read();
        prop_assert_eq!(&read[..data.len()], &data[..]);
    }

    #[test]
    fn interrupted_cell_program_never_gains_correct_data(
        progress in 0.0f64..0.6,
        seed: u64,
    ) {
        // An early-interrupted TLC program must leave wrong cells behind.
        let mut rng = DetRng::new(seed);
        let mut page = CellPage::erased(CellKind::Tlc, 1024);
        let data = vec![0xFFu8; page.capacity_bytes()];
        let wrong = page.program_interrupted(&data, progress, &mut rng);
        prop_assert!(wrong > 0);
    }

    #[test]
    fn page_data_garble_always_breaks_integrity(tag: u64, noise: u64) {
        let d = PageData::from_tag(tag);
        prop_assert!(d.is_intact());
        prop_assert!(!d.garbled(noise).is_intact());
    }

    // ---------------- pfault-ftl ----------------

    #[test]
    fn mapping_table_valid_counts_match_contents(
        ops in proptest::collection::vec((0u64..64, 0u64..16, 0u64..128), 1..300),
    ) {
        let mut table = MappingTable::new();
        for (lba, block, page) in ops {
            table.update(Lba::new(lba), Ppa::new(block, page));
        }
        // Per-block valid counts must equal a recount from the map itself.
        let mut recount = std::collections::HashMap::new();
        for (_, ppa) in table.iter() {
            *recount.entry(ppa.block).or_insert(0u64) += 1;
        }
        for (block, count) in table.blocks_with_valid_pages() {
            prop_assert_eq!(recount.get(&block).copied().unwrap_or(0), count);
        }
        prop_assert_eq!(
            recount.values().sum::<u64>() as usize,
            table.len()
        );
    }

    #[test]
    fn journal_buffer_conserves_coverage(
        writes in proptest::collection::vec((0u64..2_000, 0u64..2_000), 1..300),
    ) {
        // Every recorded sector is covered exactly once across volatile
        // state + drained batches, regardless of extent merging.
        let mut buffer = JournalBuffer::new();
        let mut drained = 0u64;
        for (i, (lba, flat_page)) in writes.iter().enumerate() {
            buffer.record(
                Lba::new(*lba),
                Ppa::new(flat_page / 64, flat_page % 64),
                true,
                320,
                64,
            );
            if i % 17 == 0 {
                drained += buffer
                    .drain_committable()
                    .iter()
                    .map(JournalEntry::coverage)
                    .sum::<u64>();
            }
        }
        prop_assert_eq!(
            drained + buffer.volatile_coverage(),
            writes.len() as u64
        );
    }

    #[test]
    fn torn_prefix_never_exceeds_budget_and_preserves_order(
        lens in proptest::collection::vec(1u64..50, 1..20),
        budget in 0u64..500,
    ) {
        let entries: Vec<JournalEntry> = lens
            .iter()
            .enumerate()
            .map(|(i, &len)| JournalEntry::Extent {
                lba_start: Lba::new(i as u64 * 1000),
                ppa_start: Ppa::new(i as u64, 0),
                len,
            })
            .collect();
        let batch = JournalBatch { id: 1, entries };
        let torn = batch.torn_prefix(budget);
        prop_assert!(torn.coverage() <= budget.min(batch.coverage()));
        // The prefix matches the original batch sector-for-sector.
        let full: Vec<_> = batch
            .entries
            .iter()
            .flat_map(|e| e.pairs(64))
            .collect();
        let kept: Vec<_> = torn
            .entries
            .iter()
            .flat_map(|e| e.pairs(64))
            .collect();
        prop_assert_eq!(&full[..kept.len()], &kept[..]);
    }

    #[test]
    fn journal_replay_is_idempotent(
        raw in proptest::collection::vec(
            proptest::collection::vec((0u64..400, 0u64..2048, 1u64..16, 0u8..3), 1..8),
            1..10,
        ),
    ) {
        // Replaying a durable journal twice must yield the same mapping
        // table as replaying it once: Point, Extent and Trim entries are
        // all last-writer-wins, so a second full pass re-applies each
        // update to the value it already has. Crash recovery relies on
        // this — a recovery interrupted and restarted may replay batches
        // it already applied.
        let mut log = DurableLog::new();
        for (i, raw_entries) in raw.iter().enumerate() {
            let entries: Vec<JournalEntry> = raw_entries
                .iter()
                .map(|&(lba, flat_page, len, kind)| match kind {
                    0 => JournalEntry::Point {
                        lba: Lba::new(lba),
                        ppa: Ppa::new(flat_page / 64, flat_page % 64),
                    },
                    1 => JournalEntry::Extent {
                        lba_start: Lba::new(lba),
                        ppa_start: Ppa::new(flat_page / 64, flat_page % 64),
                        len,
                    },
                    _ => JournalEntry::Trim { lba: Lba::new(lba) },
                })
                .collect();
            log.append(
                Ppa::new(4000 + i as u64, 0),
                JournalBatch { id: i as u64 + 1, entries },
            );
        }
        let replay = |passes: usize| {
            let mut map = MappingTable::new();
            for _ in 0..passes {
                for record in log.iter_records() {
                    record.batch.apply_to(&mut map, 64);
                }
            }
            let mut pairs: Vec<_> = map.iter().collect();
            pairs.sort_by_key(|&(lba, _)| lba);
            pairs
        };
        prop_assert_eq!(replay(1), replay(2));
    }

    // ---------------- pfault-power ----------------

    #[test]
    fn psu_voltage_decays_monotonically(tau_ms in 10u64..2_000, t1 in 0u64..2_000, dt in 1u64..2_000) {
        let psu = PsuModel::with_tau(Millivolts::new(5000), SimDuration::from_millis(tau_ms));
        let early = psu.voltage_after(SimDuration::from_millis(t1));
        let late = psu.voltage_after(SimDuration::from_millis(t1 + dt));
        prop_assert!(late <= early);
    }

    #[test]
    fn psu_crossing_time_inverts(tau_ms in 50u64..2_000, mv in 100u32..4_999) {
        let psu = PsuModel::with_tau(Millivolts::new(5000), SimDuration::from_millis(tau_ms));
        let t = psu.time_to_voltage(Millivolts::new(mv));
        let v = psu.voltage_after(t);
        let err = i64::from(v.get()) - i64::from(mv);
        prop_assert!(err.abs() <= 10, "error {} mV", err);
    }

    // ---------------- device-level stress ----------------

    #[test]
    fn device_survives_random_command_storms_with_faults(
        seed: u64,
        ops in proptest::collection::vec((0u64..4096, 1u64..64, any::<bool>()), 1..40),
        fault_at_ms in 1u64..30,
    ) {
        // Arbitrary interleavings of writes/reads, an arbitrary fault, a
        // recovery, and a scrub: nothing may panic, and the device must
        // stay operational afterwards.
        let mut config = VendorPreset::SsdA.config();
        config.geometry = pfault_flash::FlashGeometry::new(4096, 64);
        config.ftl = pfault_ftl::FtlConfig::for_geometry(config.geometry);
        let mut ssd = Ssd::new(config, DetRng::new(seed));
        for (i, (lba, sectors, is_write)) in ops.iter().enumerate() {
            let cmd = if *is_write {
                HostCommand::write(
                    i as u64,
                    0,
                    Lba::new(*lba),
                    SectorCount::new(*sectors),
                    seed ^ i as u64,
                )
            } else {
                HostCommand::read(i as u64, 0, Lba::new(*lba), SectorCount::new(*sectors))
            };
            ssd.submit(cmd);
            if i % 3 == 0 {
                if let Some(t) = ssd.next_event() {
                    ssd.advance_to(t.max(ssd.now() + SimDuration::from_micros(1)));
                }
            }
        }
        let timeline =
            FaultInjector::arduino_atx_loaded().timeline(SimTime::from_millis(fault_at_ms).max(ssd.now()));
        ssd.power_fail(&timeline);
        ssd.power_on_recover(timeline.discharged + SimDuration::from_secs(1))
            .expect("recovery remounts");
        prop_assert!(ssd.is_operational());
        let report = ssd.scrub().expect("operational device scrubs");
        prop_assert!(report.scanned >= report.unreadable + report.garbled);
        // Still usable for new IO.
        ssd.submit(HostCommand::write(9_999, 0, Lba::new(0), SectorCount::new(1), 1));
        ssd.advance_to(ssd.now() + SimDuration::from_millis(50));
        prop_assert!(ssd.drain_completions().iter().any(|c| c.acked()));
    }

    #[test]
    fn recovery_survives_arbitrary_cut_storms(
        seed: u64,
        ops in proptest::collection::vec((0u64..4096, 1u64..64, any::<bool>()), 1..30),
        cut_offsets in proptest::collection::vec(1u64..2_000, 0..6),
        fail_tier in 0u32..3,
        worn: bool,
    ) {
        // Tentpole invariant: an arbitrary workload, a power cut, and then
        // an arbitrary storm of further cuts landing *inside* the recovery
        // pipeline never panic, and the device always terminates in one of
        // exactly three states — operational, read-only, or bricked.
        let mut config = VendorPreset::SsdA.config();
        config.geometry = pfault_flash::FlashGeometry::new(4096, 64);
        config.ftl = pfault_ftl::FtlConfig::for_geometry(config.geometry);
        config.ftl.retire_bad_blocks = true;
        config.ftl.spare_blocks = 1;
        config.recovery_verify = true;
        config.read_retry_limit = fail_tier; // 0 = no ladder
        config.mount_failure_rate = f64::from(fail_tier) * 0.3;
        config.mount_retry_limit = 3;
        if worn {
            config.baseline_wear = 2_900;
        }
        let mut ssd = Ssd::new(config, DetRng::new(seed));
        for (i, (lba, sectors, is_write)) in ops.iter().enumerate() {
            let cmd = if *is_write {
                HostCommand::write(
                    i as u64,
                    0,
                    Lba::new(*lba),
                    SectorCount::new(*sectors),
                    seed ^ i as u64,
                )
            } else {
                HostCommand::read(i as u64, 0, Lba::new(*lba), SectorCount::new(*sectors))
            };
            ssd.submit(cmd);
            if i % 3 == 0 {
                if let Some(t) = ssd.next_event() {
                    ssd.advance_to(t.max(ssd.now() + SimDuration::from_micros(1)));
                }
            }
        }
        let timeline = FaultInjector::arduino_atx_loaded()
            .timeline((ssd.now() + SimDuration::from_millis(1)).max(SimTime::from_millis(2)));
        ssd.power_fail(&timeline);
        let mut mount_at = timeline.discharged + SimDuration::from_secs(1);
        let mut cuts = cut_offsets.iter();
        let mut guard = 0;
        let verdict = loop {
            guard += 1;
            prop_assert!(guard < 10_000, "recovery storm did not terminate");
            let result = match cuts.next() {
                Some(&offset_us) => {
                    let cut = pfault_power::FaultTimeline::at_instant(
                        mount_at + SimDuration::from_micros(offset_us),
                    );
                    ssd.power_on_recover_interruptible(mount_at, &cut)
                }
                None => ssd.power_on_recover(mount_at),
            };
            match result {
                Ok(report) => break Ok(report),
                Err(
                    pfault_ssd::DeviceError::MountFailed { .. }
                    | pfault_ssd::DeviceError::RecoveryInterrupted { .. },
                ) => {
                    mount_at = ssd.now() + SimDuration::from_secs(1);
                }
                Err(e) => break Err(e),
            }
        };
        match verdict {
            Ok(report) => {
                if report.read_only {
                    prop_assert!(ssd.is_read_only());
                    // Reads still answer; writes are rejected, not lost.
                    ssd.submit(HostCommand::read(90_000, 0, Lba::new(0), SectorCount::new(1)));
                    ssd.submit(HostCommand::write(
                        90_001,
                        0,
                        Lba::new(0),
                        SectorCount::new(1),
                        1,
                    ));
                    ssd.advance_to(ssd.now() + SimDuration::from_millis(50));
                    let completions = ssd.drain_completions();
                    prop_assert!(completions.iter().any(|c| c.request_id == 90_000 && c.acked()));
                    prop_assert!(completions.iter().any(|c| c.request_id == 90_001 && !c.acked()));
                } else {
                    prop_assert!(ssd.is_operational());
                    let scrub = ssd.scrub().expect("mounted device scrubs");
                    prop_assert!(scrub.scanned >= scrub.unreadable + scrub.garbled);
                }
            }
            Err(
                pfault_ssd::DeviceError::Bricked { .. }
                | pfault_ssd::DeviceError::RecoveryFailed { .. },
            ) => {
                prop_assert!(ssd.is_bricked());
            }
            Err(other) => prop_assert!(false, "unexpected terminal error: {other}"),
        }
    }

    #[test]
    fn flushed_data_always_survives_any_fault(seed: u64, sectors in 1u64..64) {
        let mut config = VendorPreset::SsdA.config();
        config.geometry = pfault_flash::FlashGeometry::new(2048, 64);
        config.ftl = pfault_ftl::FtlConfig::for_geometry(config.geometry);
        let mut ssd = Ssd::new(config, DetRng::new(seed));
        let cmd = HostCommand::write(1, 0, Lba::new(7), SectorCount::new(sectors), seed | 1);
        ssd.submit(cmd);
        ssd.submit_flush(2, 0);
        let mut guard = 0;
        loop {
            if ssd
                .drain_completions()
                .iter()
                .any(|c| c.request_id == 2 && c.acked())
            {
                break;
            }
            let next = ssd
                .next_event()
                .unwrap_or(ssd.now() + SimDuration::from_millis(1));
            ssd.advance_to(next.max(ssd.now() + SimDuration::from_micros(1)));
            guard += 1;
            prop_assert!(guard < 1_000_000, "flush did not complete");
        }
        // Both rigs, immediately after the FLUSH ACK.
        let timeline = FaultInjector::transistor().timeline(ssd.now());
        ssd.power_fail(&timeline);
        ssd.power_on_recover(timeline.discharged + SimDuration::from_secs(1))
            .expect("recovery remounts");
        for i in 0..sectors {
            match ssd.verify_read(Lba::new(7 + i)) {
                VerifiedContent::Written(d) => prop_assert_eq!(d, cmd.sector_content(i)),
                other => prop_assert!(false, "flushed sector {} lost: {:?}", i, other),
            }
        }
    }

    #[test]
    fn trial_outcomes_are_deterministic_per_seed(seed: u64) {
        use pfault_platform::platform::{TestPlatform, TrialConfig};
        let mut c = TrialConfig::paper_default();
        c.requests = 15;
        let platform = TestPlatform::new(c);
        let a = platform.run_trial(seed).expect("trial runs");
        let b = platform.run_trial(seed).expect("trial runs");
        prop_assert_eq!(a.counts, b.counts);
        prop_assert_eq!(a.fault_commanded_ms, b.fault_commanded_ms);
        prop_assert_eq!(a.requests_issued, b.requests_issued);
    }

    // ---------------- pfault-ssd cache ----------------

    #[test]
    fn write_cache_accounting_invariants(
        ops in proptest::collection::vec((0u64..32, 0u8..4), 1..200),
        capacity in 8u64..64,
    ) {
        // Arbitrary interleavings of insert / flush-pick / flush-complete /
        // invalidate keep the cache's accounting consistent.
        use pfault_ssd::cache::WriteCache;
        let mut cache = WriteCache::new(capacity);
        let mut in_flight: Vec<(Lba, PageData)> = Vec::new();
        for (i, (lba, op)) in ops.iter().enumerate() {
            let lba = Lba::new(*lba);
            match op {
                0 | 1 => {
                    // Insert dominates so the cache stays busy.
                    if cache.has_room_for(1) || cache.lookup(lba).is_some() {
                        cache.insert(lba, PageData::from_tag(i as u64), SimTime::from_micros(i as u64));
                    }
                }
                2 => {
                    if let Some((l, d)) =
                        cache.next_flushable(SimTime::from_secs(10), SimDuration::ZERO, 1.0)
                    {
                        in_flight.push((l, d));
                    }
                }
                _ => {
                    if let Some((l, d)) = in_flight.pop() {
                        cache.flush_complete(l, d);
                    } else {
                        cache.invalidate(lba);
                    }
                }
            }
            prop_assert!(cache.resident_sectors() <= capacity.max(cache.resident_sectors()));
            prop_assert!(cache.dirty_sectors() <= cache.resident_sectors());
            prop_assert_eq!(
                cache.dirty_entries().len() as u64,
                cache.dirty_sectors()
            );
        }
    }

    #[test]
    fn front_end_acks_writes_in_submission_order(
        seed: u64,
        lens in proptest::collection::vec(1u64..32, 2..12),
    ) {
        // The serialized front end must acknowledge same-priority writes
        // in the order they were submitted.
        let mut config = VendorPreset::SsdA.config();
        config.geometry = pfault_flash::FlashGeometry::new(1024, 64);
        config.ftl = pfault_ftl::FtlConfig::for_geometry(config.geometry);
        let mut ssd = Ssd::new(config, DetRng::new(seed));
        for (i, len) in lens.iter().enumerate() {
            ssd.submit(HostCommand::write(
                i as u64,
                0,
                Lba::new(i as u64 * 64),
                SectorCount::new(*len),
                seed ^ i as u64,
            ));
        }
        let mut acked = Vec::new();
        let mut guard = 0;
        while acked.len() < lens.len() {
            for c in ssd.drain_completions() {
                prop_assert!(c.acked());
                acked.push(c.request_id);
            }
            let next = ssd
                .next_event()
                .unwrap_or(ssd.now() + SimDuration::from_millis(1));
            ssd.advance_to(next.max(ssd.now() + SimDuration::from_micros(1)));
            guard += 1;
            prop_assert!(guard < 1_000_000);
        }
        let expected: Vec<u64> = (0..lens.len() as u64).collect();
        prop_assert_eq!(acked, expected);
    }
}
