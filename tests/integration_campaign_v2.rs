//! Campaign engine v2 integration: warm-snapshot cloning and every
//! execution engine must be invisible in the results.
//!
//! The contract under test (DESIGN.md §11): for one `(TrialConfig,
//! vendor)` configuration, a trial that clone-restores the shared warm
//! snapshot classifies **identically** to a trial that replays the
//! warm-up prefix from a cold device — for *arbitrary* seeds and
//! vendors, not just the presets the unit tests happen to pick. And the
//! serial, striped-parallel, and work-stealing engines must emit
//! byte-identical `CampaignReport`s (including the order-sensitive
//! Welford `obs` aggregates), with the snapshot cache on or off.

use proptest::prelude::*;

use pfault_platform::campaign::{Campaign, CampaignConfig, CampaignReport};
use pfault_platform::platform::{TestPlatform, TrialConfig};
use pfault_ssd::VendorPreset;

/// A small-geometry trial template on the given vendor with a warm-up
/// prefix — cheap enough to run many property cases.
fn warm_trial(vendor: VendorPreset, warmup: usize) -> TrialConfig {
    let mut trial = TrialConfig::paper_default();
    trial.ssd = vendor.config();
    trial.ssd.geometry = pfault_flash::FlashGeometry::new(1 << 14, 256);
    trial.ssd.ftl = pfault_ftl::FtlConfig::for_geometry(trial.ssd.geometry);
    trial.requests = 20;
    trial.warmup_requests = warmup;
    trial
}

fn campaign_config(vendor: VendorPreset, warmup: usize, obs: bool) -> CampaignConfig {
    let mut config = CampaignConfig::paper_default();
    config.trial = warm_trial(vendor, warmup);
    config.trial.obs = obs;
    config.trials = 6;
    config.requests_per_trial = 20;
    config
}

fn bytes(report: &CampaignReport) -> String {
    serde_json::to_string(report).expect("reports serialize")
}

proptest! {
    /// Snapshot-restore is replay-from-cold, for any seed, any vendor,
    /// any warm-up length: same outcome, field for field.
    #[test]
    fn snapshot_restore_classifies_like_cold_replay(
        seed in 0u64..u64::MAX / 2,
        vendor_idx in 0usize..3,
        warmup in 1usize..12,
    ) {
        let vendor = VendorPreset::all()[vendor_idx];
        let platform = TestPlatform::new(warm_trial(vendor, warmup));
        let cold = platform.run_trial(seed);
        let snapshot = platform.warm_snapshot();
        let restored = platform.run_trial_from_snapshot(&snapshot, seed);
        prop_assert_eq!(format!("{cold:?}"), format!("{restored:?}"));
    }

    /// The snapshot itself is a pure function of the configuration:
    /// capturing twice yields the same fingerprint, and a different
    /// vendor yields a different one.
    #[test]
    fn warm_snapshots_are_config_pure(warmup in 1usize..8) {
        let a = TestPlatform::new(warm_trial(VendorPreset::SsdA, warmup));
        let b = TestPlatform::new(warm_trial(VendorPreset::SsdB, warmup));
        let first = a.warm_snapshot().fingerprint();
        prop_assert_eq!(first, a.warm_snapshot().fingerprint());
        prop_assert!(first != b.warm_snapshot().fingerprint());
    }
}

/// Serial, striped, and work-stealing engines, with the snapshot cache
/// on or off, all produce byte-identical reports — per vendor, with the
/// probe bus on so the order-sensitive `obs` aggregates are covered too.
#[test]
fn engines_and_snapshotting_agree_byte_for_byte() {
    for (i, vendor) in VendorPreset::all().into_iter().enumerate() {
        let config = campaign_config(vendor, 16, true);
        let seed = 0xC0FFEE ^ (i as u64) << 17;
        let baseline = bytes(
            &Campaign::builder(config)
                .seed(seed)
                .snapshot_cache(false)
                .build()
                .run(),
        );
        let cached = Campaign::builder(config).seed(seed).build();
        assert_eq!(
            bytes(&cached.run()),
            baseline,
            "{vendor:?}: snapshot cloning changed the serial report"
        );
        assert_eq!(
            bytes(&cached.run_parallel(3)),
            baseline,
            "{vendor:?}: striped engine changed the report"
        );
        assert_eq!(
            bytes(&cached.run_stealing(3)),
            baseline,
            "{vendor:?}: work-stealing engine changed the report"
        );
        let auto = Campaign::builder(config)
            .seed(seed)
            .threads(3)
            .build()
            .run_auto()
            .expect("auto run");
        assert_eq!(
            bytes(&auto),
            baseline,
            "{vendor:?}: run_auto changed the report"
        );
    }
}

/// `run_parallel` and the work-stealing scheduler both cap their thread
/// pool at the trial count — oversubscription must not change results.
#[test]
fn oversubscribed_threads_are_harmless() {
    let config = campaign_config(VendorPreset::SsdC, 8, false);
    let campaign = Campaign::builder(config).seed(99).build();
    let baseline = bytes(&campaign.run());
    assert_eq!(bytes(&campaign.run_parallel(64)), baseline);
    let (report, stats) = campaign.run_stealing_with_stats(64);
    assert_eq!(bytes(&report), baseline);
    assert_eq!(stats.threads, config.trials, "threads clamp to trial count");
    assert_eq!(
        stats.workers.iter().map(|w| w.trials_run).sum::<u64>(),
        config.trials as u64
    );
}
