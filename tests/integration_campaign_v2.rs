//! Campaign engine v2 integration: warm-image cloning and every
//! execution engine must be invisible in the results.
//!
//! The contract under test (DESIGN.md §11, §14): for one `(TrialConfig,
//! vendor)` configuration, a trial that copy-on-write-clones the shared
//! warm [`pfault_ssd::DeviceImage`] classifies **identically** to a
//! trial that replays the warm-up prefix from a cold device — for
//! *arbitrary* seeds and vendors, not just the presets the unit tests
//! happen to pick, and regardless of how many blocks the trial dirties
//! in its private overlay (zero-dirty through all-dirty). And the
//! serial, striped-parallel, and work-stealing engines must emit
//! byte-identical `CampaignReport`s (including the order-sensitive
//! Welford `obs` aggregates), with the snapshot cache on or off.

use proptest::prelude::*;

use pfault_platform::campaign::{Campaign, CampaignConfig, CampaignReport};
use pfault_platform::platform::{TestPlatform, TrialConfig};
use pfault_sim::{DetRng, Lba, SectorCount, SimDuration};
use pfault_ssd::device::{HostCommand, Ssd};
use pfault_ssd::VendorPreset;

/// A small-geometry trial template on the given vendor with a warm-up
/// prefix — cheap enough to run many property cases.
fn warm_trial(vendor: VendorPreset, warmup: usize) -> TrialConfig {
    let mut trial = TrialConfig::paper_default();
    trial.ssd = vendor.config();
    trial.ssd.geometry = pfault_flash::FlashGeometry::new(1 << 14, 256);
    trial.ssd.ftl = pfault_ftl::FtlConfig::for_geometry(trial.ssd.geometry);
    trial.requests = 20;
    trial.warmup_requests = warmup;
    trial
}

fn campaign_config(vendor: VendorPreset, warmup: usize, obs: bool) -> CampaignConfig {
    let mut config = CampaignConfig::paper_default();
    config.trial = warm_trial(vendor, warmup);
    config.trial.obs = obs;
    config.trials = 6;
    config.requests_per_trial = 20;
    config
}

fn bytes(report: &CampaignReport) -> String {
    serde_json::to_string(report).expect("reports serialize")
}

/// Drives `ssd` through a reproducible IO pattern of `writes` random
/// 8-sector writes: `0` leaves the copy-on-write overlay empty (no
/// block is ever touched), larger counts overwrite warm blocks and
/// materialise brand-new ones until the whole warm working set is
/// dirty.
fn drive_pattern(ssd: &mut Ssd, seed: u64, writes: u64) {
    let mut rng = DetRng::new(seed).fork("pattern");
    for i in 0..writes {
        // Spread over a wide LBA range so high fractions overwrite warm
        // blocks *and* materialise brand-new ones.
        let lba = Lba::new(rng.below(1 << 16) * 8);
        ssd.submit(HostCommand::write(
            1000 + i,
            0,
            lba,
            SectorCount::new(8),
            0xD1A7 ^ i,
        ));
        ssd.advance_to(ssd.now() + SimDuration::from_millis(1));
        ssd.drain_completions();
    }
    ssd.quiesce();
    ssd.drain_completions();
}

proptest! {
    /// Image-clone is replay-from-cold, for any seed, any vendor, any
    /// warm-up length: same outcome, field for field (classification,
    /// obs counters — everything `TrialOutcome` carries).
    #[test]
    fn cow_clone_classifies_like_cold_replay(
        seed in 0u64..u64::MAX / 2,
        vendor_idx in 0usize..3,
        warmup in 1usize..12,
    ) {
        let vendor = VendorPreset::all()[vendor_idx];
        let platform = TestPlatform::new(warm_trial(vendor, warmup));
        let cold = platform.run_trial(seed);
        let image = platform.warm_image();
        let cloned = platform.run_trial_from_image(&image, seed);
        prop_assert_eq!(format!("{cold:?}"), format!("{cloned:?}"));
    }

    /// The image itself is a pure function of the configuration:
    /// capturing twice yields the same fingerprint, and a different
    /// vendor yields a different one.
    #[test]
    fn warm_images_are_config_pure(warmup in 1usize..8) {
        let a = TestPlatform::new(warm_trial(VendorPreset::SsdA, warmup));
        let b = TestPlatform::new(warm_trial(VendorPreset::SsdB, warmup));
        let first = a.warm_image().fingerprint();
        prop_assert_eq!(first, a.warm_image().fingerprint());
        prop_assert!(first != b.warm_image().fingerprint());
    }

    /// Two CoW clones of one image evolve byte-identically across the
    /// dirty-page spectrum: `writes = 0` never materialises an overlay
    /// block, larger counts overwrite warm blocks and allocate fresh
    /// ones. State digests (which fold in the RNG stream position) must
    /// agree throughout, and the shared image must come out untouched.
    #[test]
    fn cow_overlay_is_transparent_across_dirty_patterns(
        seed in 0u64..u64::MAX / 2,
        vendor_idx in 0usize..3,
        writes in 0u64..25,
    ) {
        let vendor = VendorPreset::all()[vendor_idx];
        let platform = TestPlatform::new(warm_trial(vendor, 8));
        let warm = platform.warm_image();
        let mut a = warm.clone_cow();
        a.reseed_for_trial(seed);
        let mut b = warm.clone_cow();
        b.reseed_for_trial(seed);
        drive_pattern(&mut a, seed, writes);
        drive_pattern(&mut b, seed, writes);
        prop_assert_eq!(a.state_digest(), b.state_digest());
        prop_assert_eq!(a.flash_overlay_blocks(), b.flash_overlay_blocks());
        if writes == 0 {
            prop_assert_eq!(a.flash_overlay_blocks(), 0, "zero-dirty trials copy nothing up");
        }
        // The image is immune to everything its clones did.
        prop_assert_eq!(warm.clone_cow().state_digest(), warm.fingerprint());
    }

    /// Delta images are transparent: a trial cloned from
    /// `full.delta_from(base)` classifies identically to one cloned
    /// from the full image (and to cold replay, by transitivity).
    #[test]
    fn delta_images_classify_like_their_full_image(
        seed in 0u64..u64::MAX / 2,
        vendor_idx in 0usize..3,
    ) {
        let vendor = VendorPreset::all()[vendor_idx];
        let platform = TestPlatform::new(warm_trial(vendor, 9));
        let base = platform.warm_image();
        let mut evolved = base.clone_cow();
        drive_pattern(&mut evolved, seed ^ 0xA11CE, 12);
        let digest = evolved.state_digest();
        let full = evolved.capture(base.config_digest());
        prop_assert_eq!(full.fingerprint(), digest);
        let delta = full.delta_from(&base).expect("evolved from base");
        prop_assert!(delta.shares_base_with(&base));
        let mut a = full.clone_cow();
        let mut b = delta.clone_cow();
        a.reseed_for_trial(seed);
        b.reseed_for_trial(seed);
        drive_pattern(&mut a, seed, 16);
        drive_pattern(&mut b, seed, 16);
        prop_assert_eq!(a.state_digest(), b.state_digest());
    }
}

/// Serial, striped, and work-stealing engines, with the snapshot cache
/// on or off, all produce byte-identical reports — per vendor, with the
/// probe bus on so the order-sensitive `obs` aggregates are covered too.
#[test]
fn engines_and_snapshotting_agree_byte_for_byte() {
    for (i, vendor) in VendorPreset::all().into_iter().enumerate() {
        let config = campaign_config(vendor, 16, true);
        let seed = 0xC0FFEE ^ (i as u64) << 17;
        let baseline = bytes(
            &Campaign::builder(config)
                .seed(seed)
                .snapshot_cache(false)
                .build()
                .run(),
        );
        let cached = Campaign::builder(config).seed(seed).build();
        assert_eq!(
            bytes(&cached.run()),
            baseline,
            "{vendor:?}: snapshot cloning changed the serial report"
        );
        assert_eq!(
            bytes(&cached.run_parallel(3)),
            baseline,
            "{vendor:?}: striped engine changed the report"
        );
        assert_eq!(
            bytes(&cached.run_stealing(3)),
            baseline,
            "{vendor:?}: work-stealing engine changed the report"
        );
        let auto = Campaign::builder(config)
            .seed(seed)
            .threads(3)
            .build()
            .run_auto()
            .expect("auto run");
        assert_eq!(
            bytes(&auto),
            baseline,
            "{vendor:?}: run_auto changed the report"
        );
    }
}

/// `run_parallel` and the work-stealing scheduler both cap their thread
/// pool at the trial count — oversubscription must not change results.
#[test]
fn oversubscribed_threads_are_harmless() {
    let config = campaign_config(VendorPreset::SsdC, 8, false);
    let campaign = Campaign::builder(config).seed(99).build();
    let baseline = bytes(&campaign.run());
    assert_eq!(bytes(&campaign.run_parallel(64)), baseline);
    let (report, stats) = campaign.run_stealing_with_stats(64);
    assert_eq!(bytes(&report), baseline);
    assert_eq!(stats.threads, config.trials, "threads clamp to trial count");
    assert_eq!(
        stats.workers.iter().map(|w| w.trials_run).sum::<u64>(),
        config.trials as u64
    );
}
