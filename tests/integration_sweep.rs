//! Cross-crate integration: the fault-space sweeper end to end — census,
//! boundary expansion, recovery oracle, and the shrinking minimizer.
//!
//! These tests exercise the headline guarantees of the sweep subsystem:
//!
//! * correct firmware survives every boundary cut with no invariant
//!   violations (torn journal/checkpoint batches are discarded whole);
//! * a seeded apply-before-verify bug (`verify_batch_crc = false`) is
//!   found by the sweeper and shrunk to a tiny repro;
//! * the whole pipeline is deterministic: same seed, same report, same
//!   minimized repro.

use pfault_platform::{SweepConfig, Sweeper, ViolationKind};
use pfault_ssd::FaultSite;

/// The smoke config with the seeded journal bug: batches are applied to
/// the mapping table before their CRC is checked, so a torn commit page
/// replays half a batch.
fn buggy_config(seed: u64) -> SweepConfig {
    let mut config = SweepConfig::smoke(seed);
    config.ssd.ftl.verify_batch_crc = false;
    config
}

#[test]
fn correct_firmware_survives_every_boundary_cut() {
    // The oracle is exercised at every (site, occurrence, phase) cut —
    // including mid-program cuts of journal commit and checkpoint pages —
    // and must find nothing: torn batches are never half-applied.
    let report = Sweeper::new(SweepConfig::smoke(21))
        .run()
        .expect("sweep must complete");
    assert!(report.trials > 0, "sweep must run boundary trials");
    assert_eq!(report.failures.total_failed(), 0, "{:?}", report.failures);
    assert!(
        report.violations.is_empty(),
        "correct firmware must sweep clean: {:?}",
        report.violations
    );
}

#[test]
fn sweep_report_is_identical_across_same_seed_runs() {
    let a = Sweeper::new(buggy_config(7))
        .run()
        .expect("sweep must complete");
    let b = Sweeper::new(buggy_config(7))
        .run()
        .expect("sweep must complete");
    assert_eq!(a, b, "same seed must give an identical violation list");
    assert!(!a.violations.is_empty(), "the seeded bug must be visible");
}

#[test]
fn seeded_crc_bug_is_found_at_the_journal_commit_site() {
    let report = Sweeper::new(buggy_config(7))
        .run()
        .expect("sweep must complete");
    let torn: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.kind == ViolationKind::TornBatchHalfApplied)
        .collect();
    assert!(
        !torn.is_empty(),
        "sweeper must catch the apply-before-verify bug: {:?}",
        report.violations
    );
    for v in &torn {
        assert_eq!(
            v.site,
            FaultSite::JournalCommitProgram,
            "a half-applied batch can only come from a torn commit page: {v:?}"
        );
    }
}

#[test]
fn minimizer_shrinks_the_seeded_bug_to_a_tiny_repro() {
    let sweeper = Sweeper::new(buggy_config(7));
    let repro = sweeper
        .minimize(ViolationKind::TornBatchHalfApplied)
        .expect("minimize must complete")
        .expect("the seeded bug must reproduce on the full workload");

    // The acceptance bar: at most 3 IOs plus exactly one fault site.
    assert!(
        repro.ops.len() <= 3,
        "repro must shrink to <= 3 IOs, got {:?}",
        repro.ops
    );
    assert_eq!(repro.violation.kind, ViolationKind::TornBatchHalfApplied);
    assert_eq!(repro.violation.site, FaultSite::JournalCommitProgram);

    // Byte-stable: a rerun with the same seed shrinks to the same repro.
    let again = Sweeper::new(buggy_config(7))
        .minimize(ViolationKind::TornBatchHalfApplied)
        .expect("minimize must complete")
        .expect("rerun must reproduce too");
    assert_eq!(
        format!("{repro:?}"),
        format!("{again:?}"),
        "minimization must be deterministic"
    );
}
