//! Cross-crate integration: each experiment reproduces its figure's
//! qualitative shape at a reduced scale.

use pfault_platform::experiments::cache_ablation::CacheVariant;
use pfault_platform::experiments::{
    access_pattern, cache_ablation, injector_ablation, iops, psu, request_size, request_type,
    sequence, vendors, wss, ExperimentScale,
};
use pfault_workload::SequenceMode;

fn tiny() -> ExperimentScale {
    ExperimentScale {
        faults_per_point: 25,
        requests_per_trial: 35,
        threads: 4,
    }
}

#[test]
fn fig4_psu_landmarks() {
    let report = psu::run();
    assert!((35.0..45.0).contains(&report.loaded.host_loss_ms));
    assert!((850.0..950.0).contains(&report.loaded.discharged_ms));
    assert!((1350.0..1450.0).contains(&report.unloaded.discharged_ms));
    // Monotone decay in both series.
    for curve in [&report.loaded, &report.unloaded] {
        for pair in curve.points.windows(2) {
            assert!(pair[1].volts <= pair[0].volts);
        }
    }
}

#[test]
fn fig5_read_share_shape() {
    let report = request_type::run(tiny(), 11);
    let full_read = report.at(100).expect("100% read row");
    assert_eq!(
        full_read.data_failures, 0,
        "§IV-B: no data failure at 100% read"
    );
    assert_eq!(full_read.fwa, 0);
    assert!(
        full_read.io_errors > 0,
        "§IV-B: IO errors persist at 100% read"
    );
    let full_write = report.at(0).expect("0% read row");
    let loss0 = full_write.data_failures + full_write.fwa;
    let loss80 = report
        .at(80)
        .map(|r| r.data_failures + r.fwa)
        .expect("80% row");
    assert!(
        loss0 > loss80,
        "loss at full write ({loss0}) must exceed 80% read ({loss80})"
    );
}

#[test]
fn fig6_wss_has_no_effect() {
    let report = wss::run(tiny(), 11, Some(&[1, 90]));
    assert!(
        report.spread_ratio() < 2.5,
        "per-fault rates across WSS must stay close: {:?}",
        report.rows
    );
}

#[test]
fn sec4d_sequential_exceeds_random() {
    let mut scale = tiny();
    scale.faults_per_point = 60;
    let report = access_pattern::run(scale, 11);
    let excess = report.sequential_excess_pct();
    assert!(
        excess > 0.0,
        "sequential must lose more than random (measured {excess:+.1}%)"
    );
}

#[test]
fn fig7_small_requests_fail_more_and_fwa_dominates_at_4k() {
    let report = request_size::run(tiny(), 11);
    let small = report.at(4).expect("4 KiB row");
    let large = report.at(1024).expect("1 MiB row");
    assert!(
        small.data_loss_per_fault > 3.0 * large.data_loss_per_fault,
        "4 KiB ({}) must far exceed 1 MiB ({})",
        small.data_loss_per_fault,
        large.data_loss_per_fault
    );
    assert!(
        small.fwa > small.data_failures,
        "§IV-E: FWA dominates at 4 KiB ({} FWA vs {} DF)",
        small.fwa,
        small.data_failures
    );
}

#[test]
fn fig8_responded_iops_saturates() {
    let report = iops::run(tiny(), 11);
    let low = report.rows.first().expect("first row");
    let rel_err =
        (low.responded_iops - low.requested_iops as f64).abs() / low.requested_iops as f64;
    assert!(
        rel_err < 0.1,
        "below the knee responded ≈ requested: {low:?}"
    );
    let sat = report.saturation_iops();
    assert!(
        (6_000.0..7_500.0).contains(&sat),
        "saturation {sat} should be near the paper's ~6 900"
    );
    // Past the knee, responded stops tracking requested.
    let top = report.rows.last().expect("last row");
    assert!(top.responded_iops < top.requested_iops as f64 * 0.5);
}

#[test]
fn fig9_sequence_ordering() {
    let report = sequence::run(tiny(), 11);
    let waw = report.at(SequenceMode::Waw).expect("WAW");
    let rar = report.at(SequenceMode::Rar).expect("RAR");
    let raw = report.at(SequenceMode::Raw).expect("RAW");
    let war = report.at(SequenceMode::War).expect("WAR");
    assert_eq!(rar.data_failures + rar.fwa, 0, "RAR loses nothing");
    assert!(rar.io_errors > 0, "RAR still sees IO errors");
    let waw_loss = waw.data_failures + waw.fwa;
    assert!(waw_loss > raw.data_failures + raw.fwa);
    assert!(waw_loss > war.data_failures + war.fwa);
    assert!(
        waw.data_failures > raw.data_failures.max(war.data_failures),
        "WAW has the most data failures (Fig 9)"
    );
}

#[test]
fn table1_all_drives_vulnerable() {
    let report = vendors::run(tiny(), 11);
    assert_eq!(report.rows.len(), 3);
    for row in &report.rows {
        assert!(
            row.data_failures + row.fwa > 0,
            "{}: every Table I drive loses data",
            row.label
        );
    }
}

#[test]
fn cache_ablation_ordering() {
    let report = cache_ablation::run(tiny(), 11);
    let on = report.at(CacheVariant::Enabled).expect("enabled");
    let off = report.at(CacheVariant::Disabled).expect("disabled");
    let plp = report.at(CacheVariant::Supercap).expect("supercap");
    assert_eq!(plp.data_failures + plp.fwa, 0, "supercap saves everything");
    assert!(
        off.data_failures + off.fwa > 0,
        "cache-off still loses data"
    );
    assert!(
        on.fwa > off.fwa,
        "the write-back cache is the dominant FWA source"
    );
}

#[test]
fn injector_ablation_both_rigs_dangerous() {
    let report = injector_ablation::run(tiny(), 11);
    assert!(report.atx.data_loss > 0);
    assert!(report.transistor.data_loss > 0);
    assert!(report.atx.interrupted_programs > 0);
    assert!(report.transistor.interrupted_programs > 0);
}
