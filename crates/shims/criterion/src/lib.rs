//! Offline shim of the `criterion` benchmarking crate.
//!
//! Supports the subset used by this workspace's benches: `Criterion`,
//! `benchmark_group` / `sample_size` / `bench_function` / `finish`,
//! `Bencher::iter`, and the `criterion_group!` / `criterion_main!`
//! macros. Instead of criterion's statistical analysis it runs each
//! benchmark `sample_size` times and reports mean wall-clock time per
//! iteration — enough to keep `cargo bench` compiling and producing
//! comparable numbers offline.

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (most benches import the
/// `std::hint` version directly).
pub use std::hint::black_box;

/// Benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.into(), self.default_sample_size, &mut routine);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name.into());
        run_one(&label, self.sample_size, &mut routine);
        self
    }

    /// Ends the group (output is already flushed per benchmark).
    pub fn finish(self) {}
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times `routine`, running it once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.elapsed += start.elapsed();
            self.iterations += 1;
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, routine: &mut F) {
    let mut bencher = Bencher {
        samples,
        elapsed: Duration::ZERO,
        iterations: 0,
    };
    routine(&mut bencher);
    let mean = if bencher.iterations > 0 {
        bencher.elapsed / bencher.iterations as u32
    } else {
        Duration::ZERO
    };
    println!(
        "bench {label}: {:.3} ms/iter over {} iters",
        mean.as_secs_f64() * 1e3,
        bencher.iterations
    );
}

/// Declares a benchmark group runner, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_each_sample() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(4);
        let mut runs = 0;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 4);
    }
}
