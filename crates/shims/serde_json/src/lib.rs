//! Offline shim of the `serde_json` crate.
//!
//! Renders and parses the [`Value`] tree defined by the in-repo `serde`
//! shim. The API mirrors the `serde_json` functions the workspace uses:
//! [`to_value`], [`from_value`], [`to_string`], [`to_string_pretty`],
//! [`from_str`], [`to_writer`], plus the [`json!`] macro for flat object
//! literals.
//!
//! One deliberate divergence from real serde_json: non-finite floats are
//! emitted as the bare tokens `Infinity`, `-Infinity`, and `NaN` (and
//! accepted back by the parser), so statistics accumulators whose min/max
//! rest at ±∞ round-trip losslessly through campaign checkpoints.

pub use serde::{DeError, Map, Number, Value};

// Re-exported so the `json!` macro can reach the trait through `$crate`
// without requiring callers to depend on `serde` themselves.
#[doc(hidden)]
pub use serde::Serialize as __Serialize;

use std::fmt;
use std::io::Write;

/// Error type covering parsing and value-conversion failures.
#[derive(Debug)]
pub enum Error {
    /// Malformed JSON text at (1-based) line/column.
    Syntax {
        /// Human-readable description.
        message: String,
        /// Byte offset in the input.
        offset: usize,
    },
    /// The value tree did not match the target type.
    Data(DeError),
    /// An IO error from [`to_writer`].
    Io(std::io::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Syntax { message, offset } => {
                write!(f, "JSON syntax error at byte {offset}: {message}")
            }
            Error::Data(e) => write!(f, "JSON data error: {e}"),
            Error::Io(e) => write!(f, "JSON io error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Data(e) => Some(e),
            Error::Io(e) => Some(e),
            Error::Syntax { .. } => None,
        }
    }
}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::Data(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

/// `serde_json::Result` lookalike.
pub type Result<T> = std::result::Result<T, Error>;

/// Converts any [`serde::Serialize`] value into a [`Value`] tree.
///
/// Infallible in this shim (the signature keeps `Result` for source
/// compatibility with real serde_json).
#[allow(clippy::unnecessary_wraps)]
pub fn to_value<T: serde::Serialize>(value: &T) -> Result<Value> {
    Ok(value.to_json_value())
}

/// Rebuilds a typed value from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T> {
    T::from_json_value(value).map_err(Error::Data)
}

/// Renders compact JSON.
#[allow(clippy::unnecessary_wraps)]
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), None, 0);
    Ok(out)
}

/// Renders human-readable JSON (two-space indent).
#[allow(clippy::unnecessary_wraps)]
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), Some(2), 0);
    Ok(out)
}

/// Writes compact JSON to an `io::Write`.
pub fn to_writer<W: Write, T: serde::Serialize>(mut writer: W, value: &T) -> Result<()> {
    let s = to_string(value)?;
    writer.write_all(s.as_bytes())?;
    Ok(())
}

/// Parses JSON text into a typed value.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T> {
    let value = parse_value_str(text)?;
    T::from_json_value(&value).map_err(Error::Data)
}

/// Parses JSON text into a raw [`Value`] tree.
pub fn parse_value_str(text: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON document"));
    }
    Ok(v)
}

/// Builds a [`Value::Object`] literal from `"key": expr` pairs; every
/// expression goes through [`serde::Serialize`] (a `Value` passes through
/// unchanged).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:tt : $val:expr),* $(,)? }) => {{
        let mut m = $crate::Map::new();
        $( m.insert(::std::string::String::from($key),
                    $crate::__Serialize::to_json_value(&$val)); )*
        $crate::Value::Object(m)
    }};
    ([ $($val:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![
            $( $crate::__Serialize::to_json_value(&$val) ),*
        ])
    };
    ($other:expr) => { $crate::__Serialize::to_json_value(&$other) };
}

// ------------------------------------------------------------------ emit

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::U64(v) => out.push_str(&v.to_string()),
        Number::I64(v) => out.push_str(&v.to_string()),
        Number::F64(v) => {
            if v.is_nan() {
                out.push_str("NaN");
            } else if v == f64::INFINITY {
                out.push_str("Infinity");
            } else if v == f64::NEG_INFINITY {
                out.push_str("-Infinity");
            } else if v == v.trunc() && v.abs() < 1e15 {
                // Keep integral floats readable and round-trippable: `1.0`
                // rather than `1`, so they parse back as floats.
                out.push_str(&format!("{v:.1}"));
            } else {
                // Rust's Display prints the shortest representation that
                // round-trips exactly.
                out.push_str(&v.to_string());
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------------- parse

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> Error {
        Error::Syntax {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, expected: u8) -> Result<()> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", expected as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b'N') if self.eat_keyword("NaN") => Ok(Value::Number(Number::F64(f64::NAN))),
            Some(b'I') if self.eat_keyword("Infinity") => {
                Ok(Value::Number(Number::F64(f64::INFINITY)))
            }
            Some(b'-') if self.bytes[self.pos..].starts_with(b"-Infinity") => {
                self.pos += "-Infinity".len();
                Ok(Value::Number(Number::F64(f64::NEG_INFINITY)))
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.eat(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our own
                            // emitter; reject them rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("invalid \\u code point"))?;
                            s.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                c if c < 0x80 => s.push(c as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the byte slice.
                    let start = self.pos - 1;
                    let len = utf8_len(c);
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| self.err("truncated UTF-8 sequence"))?;
                    let decoded = std::str::from_utf8(chunk)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    s.push_str(decoded);
                    self.pos = start + len;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-UTF-8 number"))?;
        if is_float {
            text.parse::<f64>()
                .map(|v| Value::Number(Number::F64(v)))
                .map_err(|_| self.err("malformed float"))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .ok()
                .and_then(|_| text.parse::<i64>().ok())
                .map(|v| Value::Number(Number::I64(v)))
                .ok_or_else(|| self.err("malformed integer"))
        } else {
            text.parse::<u64>()
                .map(|v| Value::Number(Number::U64(v)))
                .map_err(|_| self.err("malformed integer"))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for text in ["null", "true", "false", "42", "-7", "2.5", "\"hi\""] {
            let v: Value = parse_value_str(text).unwrap();
            assert_eq!(to_string(&v).unwrap(), text);
        }
    }

    #[test]
    fn round_trips_nonfinite_floats() {
        let v = Value::Array(vec![
            Value::Number(Number::F64(f64::INFINITY)),
            Value::Number(Number::F64(f64::NEG_INFINITY)),
        ]);
        let text = to_string(&v).unwrap();
        assert_eq!(text, "[Infinity,-Infinity]");
        let back: Value = parse_value_str(&text).unwrap();
        assert_eq!(back, v);
        let nan: Value = parse_value_str("NaN").unwrap();
        assert!(nan.as_f64().unwrap().is_nan());
    }

    #[test]
    fn integral_floats_keep_a_fraction_digit() {
        let text = to_string(&Value::Number(Number::F64(3.0))).unwrap();
        assert_eq!(text, "3.0");
        let back: Value = parse_value_str(&text).unwrap();
        assert_eq!(back, Value::Number(Number::F64(3.0)));
    }

    #[test]
    fn object_round_trip_preserves_order() {
        let text = "{\"b\":1,\"a\":{\"x\":[1,2,3]},\"c\":\"s\"}";
        let v: Value = parse_value_str(text).unwrap();
        assert_eq!(to_string(&v).unwrap(), text);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v: Value = parse_value_str("{\"a\":[1,2],\"b\":{\"c\":null}}").unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\""));
        let back: Value = parse_value_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Value::String("line\n\"quote\"\t\\slash \u{1}".to_string());
        let text = to_string(&v).unwrap();
        let back: Value = parse_value_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn unicode_strings_round_trip() {
        let v = Value::String("héllo → 世界".to_string());
        let back: Value = parse_value_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn json_macro_builds_objects() {
        let v = json!({ "a": 1u64, "b": "text", "c": Value::Null });
        let obj = v.as_object().unwrap();
        assert_eq!(obj.get("a").and_then(Value::as_u64), Some(1));
        assert_eq!(obj.get("b").and_then(Value::as_str), Some("text"));
        assert_eq!(obj.get("c"), Some(&Value::Null));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_value_str("1 2").is_err());
        assert!(parse_value_str("{\"a\":}").is_err());
        assert!(parse_value_str("[1,").is_err());
    }
}
