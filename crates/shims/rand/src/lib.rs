//! Offline shim of the `rand` 0.8 API surface used by this workspace.
//!
//! Provides [`RngCore`] (implemented by `pfault_sim::DetRng`), the
//! [`Error`] type referenced by `try_fill_bytes`, and the [`Rng`]
//! extension trait with `gen_range` over primitive ranges. Distribution
//! machinery, thread-local generators, and seeding helpers are omitted —
//! nothing in the workspace uses them.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type for fallible RNG operations (never produced by the
/// deterministic generators in this workspace).
#[derive(Debug)]
pub struct Error {
    message: &'static str,
}

impl Error {
    /// Creates an error with a static message.
    pub fn new(message: &'static str) -> Self {
        Error { message }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// Core random number generation trait, mirroring `rand::RngCore`.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

fn unit_f64(rng: &mut dyn RngCore) -> f64 {
    // 53-bit uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn below_u64(rng: &mut dyn RngCore, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample empty range");
    // Lemire's nearly-divisionless rejection method.
    let mut x = rng.next_u64();
    let mut m = (x as u128).wrapping_mul(bound as u128);
    let mut l = m as u64;
    if l < bound {
        let t = bound.wrapping_neg() % bound;
        while l < t {
            x = rng.next_u64();
            m = (x as u128).wrapping_mul(bound as u128);
            l = m as u64;
        }
    }
    (m >> 64) as u64
}

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample(self, rng: &mut dyn RngCore) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (unit_f64(rng) as f32) * (self.end - self.start)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + below_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                if lo == hi {
                    return lo;
                }
                let span = (hi - lo) as u64;
                if span == u64::MAX as u64 {
                    return rng.next_u64() as $t;
                }
                lo + below_u64(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

/// Convenience extension trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        unit_f64(self) < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 so the stream looks uniform enough for range tests.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let v = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&v[..chunk.len()]);
            }
        }
    }

    #[test]
    fn float_range_stays_in_bounds() {
        let mut rng = Counter(1);
        for _ in 0..1000 {
            let v: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&v));
        }
    }

    #[test]
    fn int_ranges_cover_and_stay_in_bounds() {
        let mut rng = Counter(2);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v: usize = rng.gen_range(3..8);
            assert!((3..8).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v: u64 = rng.gen_range(10..=12);
            assert!((10..=12).contains(&v));
        }
    }

    #[test]
    fn try_fill_bytes_default_succeeds() {
        let mut rng = Counter(3);
        let mut buf = [0u8; 9];
        rng.try_fill_bytes(&mut buf).unwrap();
        assert!(buf.iter().any(|&b| b != 0));
    }
}
