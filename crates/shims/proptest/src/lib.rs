//! Offline shim of the `proptest` crate.
//!
//! Implements the subset of the proptest API exercised by this
//! workspace's property tests: the [`proptest!`] macro with `ident in
//! strategy` and `ident: Type` binders, [`Strategy`] implementations for
//! primitive ranges and tuples, [`collection::vec`], [`sample::select`],
//! [`sample::Index`], [`any`], and the `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//! - no shrinking: a failing case reports its inputs via the panic
//!   message of the underlying `assert!`, but is not minimized;
//! - fully deterministic: each test's case stream derives from an FNV
//!   hash of the test name, so failures reproduce without a seed file;
//! - the case count defaults to 32 and is overridable through the
//!   `PROPTEST_CASES` environment variable.

use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving each test case (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derives the generator for `case` of the test named `name`.
    pub fn for_case(name: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample an empty range");
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Number of cases each `proptest!` test runs (`PROPTEST_CASES` env
/// override, default 32).
pub fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(32)
}

/// A source of random values of one type, mirroring `proptest::Strategy`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Types with a canonical default strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: u64,
        hi: u64,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start as u64,
                hi: r.end as u64 - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start() as u64,
                hi: *r.end() as u64,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n as u64,
                hi: n as u64,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with lengths drawn from `size`, mirroring
    /// `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                self.size.lo + rng.below(self.size.hi - self.size.lo + 1)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`proptest::sample`).
pub mod sample {
    use super::{Arbitrary, Strategy, TestRng};

    /// Strategy choosing uniformly among a fixed set of values.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Uniform choice among `options`, mirroring `proptest::sample::select`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }

    /// An index into a collection whose length is only known inside the
    /// test body, mirroring `proptest::sample::Index`.
    #[derive(Debug, Clone, Copy)]
    pub struct Index {
        raw: u64,
    }

    impl Index {
        /// Projects onto `[0, len)`; `len` must be positive.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index requires a non-empty collection");
            (self.raw % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index {
                raw: rng.next_u64(),
            }
        }
    }
}

/// The common-case imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Arbitrary, Strategy};

    /// Namespaced access to strategy modules (`prop::sample`, ...).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { ::std::assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { ::std::assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { ::std::assert_ne!($($args)*) };
}

/// Declares property tests. Each function's parameters are either
/// `name in strategy` bindings or `name: Type` shorthand for
/// `name in any::<Type>()`; the function body runs once per generated
/// case.
#[macro_export]
macro_rules! proptest {
    // Public entry: a sequence of attributed test functions.
    ($($(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::case_count();
                for case in 0..cases {
                    let mut __pt_rng = $crate::TestRng::for_case(stringify!($name), case);
                    $crate::proptest!(@bind __pt_rng, $body, $($params)*);
                }
            }
        )*
    };

    // Binder munching: strategy form, then type shorthand, then done.
    (@bind $rng:ident, $body:block,) => { $body };
    (@bind $rng:ident, $body:block, $var:ident in $strat:expr) => {
        let $var = $crate::Strategy::generate(&($strat), &mut $rng);
        $body
    };
    (@bind $rng:ident, $body:block, $var:ident in $strat:expr, $($rest:tt)*) => {
        let $var = $crate::Strategy::generate(&($strat), &mut $rng);
        $crate::proptest!(@bind $rng, $body, $($rest)*);
    };
    (@bind $rng:ident, $body:block, $var:ident : $ty:ty) => {
        let $var = $crate::Strategy::generate(&$crate::any::<$ty>(), &mut $rng);
        $body
    };
    (@bind $rng:ident, $body:block, $var:ident : $ty:ty, $($rest:tt)*) => {
        let $var = $crate::Strategy::generate(&$crate::any::<$ty>(), &mut $rng);
        $crate::proptest!(@bind $rng, $body, $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn cases_stream_is_deterministic() {
        let mut a = crate::TestRng::for_case("t", 3);
        let mut b = crate::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #[test]
        fn range_binders_stay_in_bounds(x in 3u64..10, y in 0.25f64..0.75, z in 1u8..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.25..0.75).contains(&y));
            prop_assert!((1..=4).contains(&z));
        }

        #[test]
        fn type_shorthand_and_mixed_binders(seed: u64, small in 0u32..8, flag: bool) {
            let _ = (seed, flag);
            prop_assert!(small < 8);
        }

        #[test]
        fn vec_and_tuple_strategies(
            items in prop::collection::vec((0u64..5, any::<bool>()), 2..6),
            pick in prop::sample::select(vec![10u64, 20, 30]),
            idx in any::<prop::sample::Index>(),
        ) {
            prop_assert!((2..6).contains(&items.len()));
            for (n, _) in &items {
                prop_assert!(*n < 5);
            }
            prop_assert!([10, 20, 30].contains(&pick));
            prop_assert!(idx.index(items.len()) < items.len());
        }
    }
}
