//! Offline shim of the `serde` crate.
//!
//! The build environment has no access to a crates registry, so this
//! in-repo crate supplies the subset of the serde API the workspace
//! actually uses. Instead of serde's visitor-based data model, the shim
//! serializes directly into a JSON-like [`Value`] tree; `serde_json` (also
//! shimmed) renders and parses that tree. The `#[derive(Serialize,
//! Deserialize)]` macros are re-exported from the in-repo `serde_derive`
//! proc-macro crate and generate impls of the traits below following
//! serde's standard representations (named structs → objects, newtype
//! structs → inner value, unit enum variants → strings, data-carrying
//! variants → single-key objects).
//!
//! Divergence from real serde, on purpose: non-finite floats serialize as
//! the bare tokens `Infinity` / `-Infinity` / `NaN` (as Python's `json`
//! module does) instead of `null`, so statistics accumulators whose
//! min/max start at ±∞ survive a checkpoint round-trip losslessly.

// The derive macros are imported as `serde::Serialize` / `serde::Deserialize`
// alongside the traits of the same name; the macro and type namespaces are
// distinct, so both resolve (exactly as in real serde).
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A JSON number: unsigned, signed, or floating.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point (possibly non-finite).
    F64(f64),
}

impl Number {
    /// The value as an `f64`.
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U64(v) => v as f64,
            Number::I64(v) => v as f64,
            Number::F64(v) => v,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U64(v) => Some(v),
            Number::I64(v) => u64::try_from(v).ok(),
            Number::F64(_) => None,
        }
    }

    /// The value as an `i64`, if it fits.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U64(v) => i64::try_from(v).ok(),
            Number::I64(v) => Some(v),
            Number::F64(_) => None,
        }
    }
}

/// An insertion-ordered string-keyed map, mirroring `serde_json::Map`.
///
/// Iteration order is the insertion order, which keeps serialized output
/// deterministic for a deterministic producer (field declaration order
/// for derived structs).
/// The generic parameters exist for signature compatibility with real
/// `serde_json::Map<String, Value>`; only the default instantiation is
/// implemented, exactly as in the real crate.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map<K = String, V = Value> {
    entries: Vec<(K, V)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Map {
            entries: Vec::new(),
        }
    }

    /// Inserts a key/value pair, replacing (in place) any existing entry
    /// with the same key. Returns the previous value, if any.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether the map holds `key`.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

/// A JSON value tree — the shim's serialization data model.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// The value as `f64` if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object if it is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Short label for error messages.
    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error: what was expected and what was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }

    /// Standard "expected X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> Self {
        DeError::new(format!("expected {what}, found {}", found.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    /// Renders `self` as a JSON value tree.
    fn to_json_value(&self) -> Value;
}

/// Deserialization from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a JSON value tree.
    fn from_json_value(value: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------- numbers

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_json_value(value: &Value) -> Result<Self, DeError> {
                let raw = value
                    .as_u64()
                    .ok_or_else(|| DeError::expected("unsigned integer", value))?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::U64(v as u64))
                } else {
                    Value::Number(Number::I64(v))
                }
            }
        }
        impl Deserialize for $t {
            fn from_json_value(value: &Value) -> Result<Self, DeError> {
                let raw = match value {
                    Value::Number(n) => n
                        .as_i64()
                        .ok_or_else(|| DeError::expected("integer", value))?,
                    _ => return Err(DeError::expected("integer", value)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl Deserialize for f64 {
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_f64()
            .ok_or_else(|| DeError::expected("number", value))
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::Number(Number::F64(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        f64::from_json_value(value).map(|v| v as f32)
    }
}

// ------------------------------------------------------- other primitives

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_bool()
            .ok_or_else(|| DeError::expected("bool", value))
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::expected("string", value))
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        let s = value
            .as_str()
            .ok_or_else(|| DeError::expected("single-char string", value))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::expected("single-char string", value)),
        }
    }
}

// ------------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_json_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_array()
            .ok_or_else(|| DeError::expected("array", value))?
            .iter()
            .map(T::from_json_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_json_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_json_value(value: &Value) -> Result<Self, DeError> {
                let arr = value
                    .as_array()
                    .ok_or_else(|| DeError::expected("array (tuple)", value))?;
                let expected = [$( stringify!($n) ),+].len();
                if arr.len() != expected {
                    return Err(DeError::new(format!(
                        "expected {expected}-element array, found {}",
                        arr.len()
                    )));
                }
                Ok(($($t::from_json_value(&arr[$n])?,)+))
            }
        }
    )+};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_json_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.to_json_value());
        }
        Value::Object(m)
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        let obj = value
            .as_object()
            .ok_or_else(|| DeError::expected("object", value))?;
        obj.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_json_value(v)?)))
            .collect()
    }
}

// Integer-keyed maps serialize as objects with stringified keys, matching
// real serde_json behaviour.
macro_rules! impl_int_key_btreemap {
    ($($k:ty),*) => {$(
        impl<V: Serialize> Serialize for BTreeMap<$k, V> {
            fn to_json_value(&self) -> Value {
                let mut m = Map::new();
                for (k, v) in self {
                    m.insert(k.to_string(), v.to_json_value());
                }
                Value::Object(m)
            }
        }

        impl<V: Deserialize> Deserialize for BTreeMap<$k, V> {
            fn from_json_value(value: &Value) -> Result<Self, DeError> {
                let obj = value
                    .as_object()
                    .ok_or_else(|| DeError::expected("object", value))?;
                obj.iter()
                    .map(|(k, v)| {
                        let key: $k = k.parse().map_err(|_| {
                            DeError::new(format!("invalid integer map key `{k}`"))
                        })?;
                        Ok((key, V::from_json_value(v)?))
                    })
                    .collect()
            }
        }
    )*};
}
impl_int_key_btreemap!(u32, u64, usize, i64);

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_json_value(&self) -> Value {
        // Sort keys so output is deterministic regardless of hash state.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        let mut m = Map::new();
        for k in keys {
            m.insert(k.clone(), self[k].to_json_value());
        }
        Value::Object(m)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        let obj = value
            .as_object()
            .ok_or_else(|| DeError::expected("object", value))?;
        obj.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_json_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

impl Serialize for Map {
    fn to_json_value(&self) -> Value {
        Value::Object(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_insert_replaces_in_place() {
        let mut m = Map::new();
        m.insert("a".into(), Value::Bool(true));
        m.insert("b".into(), Value::Null);
        let old = m.insert("a".into(), Value::Bool(false));
        assert_eq!(old, Some(Value::Bool(true)));
        assert_eq!(m.len(), 2);
        let keys: Vec<&String> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["a", "b"]);
    }

    #[test]
    fn option_round_trip() {
        let some = Some(42u64).to_json_value();
        assert_eq!(Option::<u64>::from_json_value(&some), Ok(Some(42)));
        assert_eq!(Option::<u64>::from_json_value(&Value::Null), Ok(None));
    }

    #[test]
    fn signed_round_trip() {
        let v = (-7i64).to_json_value();
        assert_eq!(i64::from_json_value(&v), Ok(-7));
        let u = 7i64.to_json_value();
        assert_eq!(u, Value::Number(Number::U64(7)));
    }

    #[test]
    fn tuple_round_trip() {
        let v = (1u64, 2.5f64, true).to_json_value();
        let back = <(u64, f64, bool)>::from_json_value(&v).unwrap();
        assert_eq!(back, (1, 2.5, true));
    }
}
