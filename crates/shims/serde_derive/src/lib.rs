//! Offline shim of `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! in-repo `serde` shim, generating impls of its `Serialize` /
//! `Deserialize` traits (a direct JSON-value data model rather than
//! serde's visitor machinery). Supported shapes — the ones this workspace
//! uses — follow serde's standard JSON representations:
//!
//! * named-field structs → objects (fields in declaration order);
//! * newtype structs → the inner value;
//! * tuple structs → arrays; unit structs → `null`;
//! * enums: unit variants → `"Name"`, newtype variants → `{"Name": v}`,
//!   tuple variants → `{"Name": [..]}`, struct variants → `{"Name": {..}}`.
//!
//! Generics, `where` clauses, and `#[serde(...)]` attributes are not
//! supported; deriving on such an item is a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving item.
enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// One enum variant.
struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derives the shim `Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives the shim `Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Shape) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(shape) => gen(&shape)
            .parse()
            .unwrap_or_else(|e| error(&format!("serde_derive shim generated bad code: {e}"))),
        Err(msg) => error(&msg),
    }
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("literal compile_error invocation parses")
}

// ------------------------------------------------------------------ parse

fn parse_item(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive shim: generic item `{name}` is not supported"
        ));
    }
    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                Ok(Shape::NamedStruct { name, fields })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                Ok(Shape::TupleStruct { name, arity })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Shape::UnitStruct { name }),
            other => Err(format!("unsupported struct body for `{name}`: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = parse_variants(g.stream())?;
                Ok(Shape::Enum { name, variants })
            }
            other => Err(format!("unsupported enum body for `{name}`: {other:?}")),
        },
        other => Err(format!(
            "serde_derive shim supports structs and enums, found `{other}`"
        )),
    }
}

/// Advances past `#[...]` attributes (including doc comments) and
/// `pub`/`pub(...)` visibility markers.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // the attribute's bracket group
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Parses `name: Type, ...` field lists, returning the field names.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(tree) = tokens.get(i) else { break };
        let name = match tree {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        skip_type(&tokens, &mut i);
        fields.push(name);
    }
    Ok(fields)
}

/// Advances past a type expression, stopping after the `,` that ends it
/// (or at the end of the list). Tracks `<`/`>` nesting so commas inside
/// generic arguments do not terminate the field.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tree) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tree {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' if angle_depth > 0 => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Counts the elements of a tuple-struct / tuple-variant field list.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut trailing_comma = false;
    for tree in &tokens {
        trailing_comma = false;
        if let TokenTree::Punct(p) = tree {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' if angle_depth > 0 => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    count += 1;
                    trailing_comma = true;
                }
                _ => {}
            }
        }
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(tree) = tokens.get(i) else { break };
        let name = match tree {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                i += 1;
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                i += 1;
                VariantKind::Named(fields)
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the separating comma.
        while let Some(tree) = tokens.get(i) {
            if matches!(tree, TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// ---------------------------------------------------------------- codegen

const VALUE: &str = "::serde::Value";
const SER: &str = "::serde::Serialize";
const DE: &str = "::serde::Deserialize";
const ERR: &str = "::serde::DeError";

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let inserts: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "m.insert(::std::string::String::from({f:?}), \
                         {SER}::to_json_value(&self.{f}));\n"
                    )
                })
                .collect();
            format!(
                "impl {SER} for {name} {{\n\
                   fn to_json_value(&self) -> {VALUE} {{\n\
                     let mut m = ::serde::Map::new();\n\
                     {inserts}\
                     {VALUE}::Object(m)\n\
                   }}\n\
                 }}"
            )
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "impl {SER} for {name} {{\n\
               fn to_json_value(&self) -> {VALUE} {{ {SER}::to_json_value(&self.0) }}\n\
             }}"
        ),
        Shape::TupleStruct { name, arity } => {
            let elems: Vec<String> = (0..*arity)
                .map(|i| format!("{SER}::to_json_value(&self.{i})"))
                .collect();
            format!(
                "impl {SER} for {name} {{\n\
                   fn to_json_value(&self) -> {VALUE} {{\n\
                     {VALUE}::Array(::std::vec![{}])\n\
                   }}\n\
                 }}",
                elems.join(", ")
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl {SER} for {name} {{\n\
               fn to_json_value(&self) -> {VALUE} {{ {VALUE}::Null }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| gen_serialize_variant(name, v))
                .collect();
            format!(
                "impl {SER} for {name} {{\n\
                   fn to_json_value(&self) -> {VALUE} {{\n\
                     match self {{\n{arms}}}\n\
                   }}\n\
                 }}"
            )
        }
    }
}

fn gen_serialize_variant(enum_name: &str, v: &Variant) -> String {
    let vname = &v.name;
    let tag = format!("::std::string::String::from({vname:?})");
    match &v.kind {
        VariantKind::Unit => {
            format!("{enum_name}::{vname} => {VALUE}::String({tag}),\n")
        }
        VariantKind::Tuple(1) => format!(
            "{enum_name}::{vname}(f0) => {{\n\
               let mut m = ::serde::Map::new();\n\
               m.insert({tag}, {SER}::to_json_value(f0));\n\
               {VALUE}::Object(m)\n\
             }}\n"
        ),
        VariantKind::Tuple(arity) => {
            let binders: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
            let elems: Vec<String> = binders
                .iter()
                .map(|b| format!("{SER}::to_json_value({b})"))
                .collect();
            format!(
                "{enum_name}::{vname}({binders}) => {{\n\
                   let mut m = ::serde::Map::new();\n\
                   m.insert({tag}, {VALUE}::Array(::std::vec![{elems}]));\n\
                   {VALUE}::Object(m)\n\
                 }}\n",
                binders = binders.join(", "),
                elems = elems.join(", ")
            )
        }
        VariantKind::Named(fields) => {
            let inserts: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "inner.insert(::std::string::String::from({f:?}), \
                         {SER}::to_json_value({f}));\n"
                    )
                })
                .collect();
            format!(
                "{enum_name}::{vname} {{ {binders} }} => {{\n\
                   let mut inner = ::serde::Map::new();\n\
                   {inserts}\
                   let mut m = ::serde::Map::new();\n\
                   m.insert({tag}, {VALUE}::Object(inner));\n\
                   {VALUE}::Object(m)\n\
                 }}\n",
                binders = fields.join(", ")
            )
        }
    }
}

fn gen_deserialize(shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct { name, fields } => {
            let extracts: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: {DE}::from_json_value(obj.get({f:?}).ok_or_else(|| \
                         {ERR}::new(::std::format!(\"missing field `{f}` in {name}\")))?)?,\n"
                    )
                })
                .collect();
            format!(
                "let obj = value.as_object().ok_or_else(|| \
                 {ERR}::expected(\"object ({name})\", value))?;\n\
                 ::std::result::Result::Ok({name} {{\n{extracts}}})"
            )
        }
        Shape::TupleStruct { name, arity: 1 } => {
            format!("::std::result::Result::Ok({name}({DE}::from_json_value(value)?))")
        }
        Shape::TupleStruct { name, arity } => {
            let elems: Vec<String> = (0..*arity)
                .map(|i| format!("{DE}::from_json_value(&arr[{i}])?"))
                .collect();
            format!(
                "let arr = value.as_array().ok_or_else(|| \
                 {ERR}::expected(\"array ({name})\", value))?;\n\
                 if arr.len() != {arity} {{\n\
                   return ::std::result::Result::Err({ERR}::new(::std::format!(\n\
                     \"expected {arity} elements for {name}, found {{}}\", arr.len())));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({elems}))",
                elems = elems.join(", ")
            )
        }
        Shape::UnitStruct { name } => format!(
            "match value {{\n\
               {VALUE}::Null => ::std::result::Result::Ok({name}),\n\
               other => ::std::result::Result::Err({ERR}::expected(\"null ({name})\", other)),\n\
             }}"
        ),
        Shape::Enum { name, variants } => gen_deserialize_enum(name, variants),
    };
    let name = shape_name(shape);
    format!(
        "impl {DE} for {name} {{\n\
           fn from_json_value(value: &{VALUE}) -> ::std::result::Result<Self, {ERR}> {{\n\
             {body}\n\
           }}\n\
         }}"
    )
}

fn shape_name(shape: &Shape) -> &str {
    match shape {
        Shape::NamedStruct { name, .. }
        | Shape::TupleStruct { name, .. }
        | Shape::UnitStruct { name }
        | Shape::Enum { name, .. } => name,
    }
}

fn gen_deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|v| matches!(v.kind, VariantKind::Unit))
        .map(|v| {
            format!(
                "{vname:?} => ::std::result::Result::Ok({name}::{vname}),\n",
                vname = v.name
            )
        })
        .collect();
    let data_arms: String = variants
        .iter()
        .filter(|v| !matches!(v.kind, VariantKind::Unit))
        .map(|v| gen_deserialize_variant(name, v))
        .collect();
    format!(
        "match value {{\n\
           {VALUE}::String(s) => match s.as_str() {{\n\
             {unit_arms}\
             other => ::std::result::Result::Err({ERR}::new(::std::format!(\n\
               \"unknown {name} variant `{{other}}`\"))),\n\
           }},\n\
           {VALUE}::Object(m) => {{\n\
             let mut it = m.iter();\n\
             let (tag, inner) = match (it.next(), it.next()) {{\n\
               (::std::option::Option::Some(entry), ::std::option::Option::None) => entry,\n\
               _ => return ::std::result::Result::Err({ERR}::new(\n\
                 \"expected single-key object for {name} variant\")),\n\
             }};\n\
             match tag.as_str() {{\n\
               {data_arms}\
               other => ::std::result::Result::Err({ERR}::new(::std::format!(\n\
                 \"unknown {name} variant `{{other}}`\"))),\n\
             }}\n\
           }}\n\
           other => ::std::result::Result::Err({ERR}::expected(\"{name} variant\", other)),\n\
         }}"
    )
}

fn gen_deserialize_variant(name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.kind {
        VariantKind::Unit => unreachable!("unit variants handled in the string arm"),
        VariantKind::Tuple(1) => format!(
            "{vname:?} => ::std::result::Result::Ok(\
             {name}::{vname}({DE}::from_json_value(inner)?)),\n"
        ),
        VariantKind::Tuple(arity) => {
            let elems: Vec<String> = (0..*arity)
                .map(|i| format!("{DE}::from_json_value(&arr[{i}])?"))
                .collect();
            format!(
                "{vname:?} => {{\n\
                   let arr = inner.as_array().ok_or_else(|| \
                   {ERR}::expected(\"array ({name}::{vname})\", inner))?;\n\
                   if arr.len() != {arity} {{\n\
                     return ::std::result::Result::Err({ERR}::new(::std::format!(\n\
                       \"expected {arity} elements for {name}::{vname}, found {{}}\", arr.len())));\n\
                   }}\n\
                   ::std::result::Result::Ok({name}::{vname}({elems}))\n\
                 }}\n",
                elems = elems.join(", ")
            )
        }
        VariantKind::Named(fields) => {
            let extracts: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: {DE}::from_json_value(obj.get({f:?}).ok_or_else(|| \
                         {ERR}::new(::std::format!(\
                         \"missing field `{f}` in {name}::{vname}\")))?)?,\n"
                    )
                })
                .collect();
            format!(
                "{vname:?} => {{\n\
                   let obj = inner.as_object().ok_or_else(|| \
                   {ERR}::expected(\"object ({name}::{vname})\", inner))?;\n\
                   ::std::result::Result::Ok({name}::{vname} {{\n{extracts}}})\n\
                 }}\n"
            )
        }
    }
}
