//! Deterministic counters and log2-bucket histograms.
//!
//! Everything here is integer arithmetic over simulated time, so two
//! same-seed trials produce byte-identical serialisations. Keys are
//! `BTreeMap<String, _>` so iteration (and therefore JSON key order) is
//! sorted and stable regardless of insertion or merge order.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::event::{ProbeEvent, RecoveryStepKind};
use crate::probe::ProbeRecord;

/// Number of log2 buckets: bucket 0 holds the value 0, bucket `i` (for
/// `i >= 1`) holds values whose bit length is `i`, i.e. the range
/// `[2^(i-1), 2^i - 1]`. Bucket 64 holds values with the top bit set.
pub const LOG2_BUCKETS: usize = 65;

/// Fixed-bucket power-of-two histogram over `u64` samples.
///
/// The bucket vector always has [`LOG2_BUCKETS`] entries (a `Vec` only
/// because the serde shim cannot round-trip fixed-size arrays).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Log2Histogram {
    buckets: Vec<u64>,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram::new()
    }
}

impl Log2Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Log2Histogram {
            buckets: vec![0; LOG2_BUCKETS],
        }
    }

    /// Bucket index for `value`: 0 for 0, otherwise the bit length.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Inclusive lower bound of bucket `index` (0 for buckets 0 and 1).
    pub fn bucket_lower_bound(index: usize) -> u64 {
        match index {
            0 => 0,
            1 => 1,
            i => 1u64 << (i - 1),
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Log2Histogram::bucket_index(value)] += 1;
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// The per-bucket sample counts (always [`LOG2_BUCKETS`] entries;
    /// a deserialised histogram is re-padded on merge/record access).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Adds every sample of `other` into `self`.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (i, n) in other.buckets.iter().enumerate() {
            if i < self.buckets.len() {
                self.buckets[i] += n;
            }
        }
    }

    /// Lower bound of the smallest bucket whose cumulative count
    /// reaches `p` percent of all samples (deterministic percentile
    /// floor; `None` when empty).
    pub fn percentile_lower_bound(&self, p: u64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = (total * p).div_ceil(100).max(1);
        let mut seen = 0;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Some(Log2Histogram::bucket_lower_bound(i));
            }
        }
        None
    }
}

/// A named set of counters and histograms — the per-trial (and, after
/// merging, per-campaign) metrics registry.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Metrics {
    /// Monotonic counters, keyed by dotted name.
    pub counters: BTreeMap<String, u64>,
    /// Latency/size histograms, keyed by dotted name.
    pub histograms: BTreeMap<String, Log2Histogram>,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Adds `by` to the counter `name` (creating it at 0).
    pub fn incr(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Records `value` into the histogram `name` (creating it empty).
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Current value of a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A histogram by name, when present.
    pub fn histogram(&self, name: &str) -> Option<&Log2Histogram> {
        self.histograms.get(name)
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Adds every counter and histogram of `other` into `self`.
    pub fn merge(&mut self, other: &Metrics) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Derives the standard per-trial registry from raw probe records:
    /// one counter per event kind, magnitude counters for the fields
    /// that matter to failure attribution (sectors lost, ECC bits,
    /// recovery step values), and latency histograms for programs,
    /// erases, journal commits, and checkpoints.
    pub fn from_records(records: &[ProbeRecord]) -> Metrics {
        let mut m = Metrics::new();
        for r in records {
            m.incr(r.event.kind(), 1);
            match r.event {
                ProbeEvent::ProgramEnd { us, .. } => m.observe("program.us", us),
                ProbeEvent::EraseEnd { us, .. } => m.observe("erase.us", us),
                ProbeEvent::JournalCommit { entries, us, .. } => {
                    m.incr("journal.entries", entries);
                    m.observe("journal.commit.us", us);
                }
                ProbeEvent::JournalTorn { kept, full } => {
                    m.incr("journal.torn.kept-sectors", kept);
                    m.incr("journal.torn.lost-sectors", full.saturating_sub(kept));
                }
                ProbeEvent::CheckpointEnd { us, .. } => m.observe("checkpoint.us", us),
                ProbeEvent::CacheEvict { dirty, .. } => m.observe("cache.dirty-at-evict", dirty),
                ProbeEvent::VolatileLost { dirty, map } => {
                    m.incr("power.dirty-sectors-lost", dirty);
                    m.incr("power.map-sectors-lost", map);
                }
                ProbeEvent::EccCorrected { bits, .. } => m.incr("ecc.corrected-bits", bits),
                ProbeEvent::FleetOutage { devices, .. } => {
                    m.incr("fleet.devices-cut", devices);
                }
                ProbeEvent::FleetDegradedRead { missing, .. } => {
                    m.incr("fleet.chunks-reconstructed", missing);
                }
                ProbeEvent::FleetStripeLost { unrecoverable, .. } => {
                    m.incr("fleet.chunks-unrecoverable", unrecoverable);
                }
                ProbeEvent::RecoveryStep { step, value } => match step {
                    RecoveryStepKind::MountAttempt | RecoveryStepKind::MountFailed => {}
                    // Steps whose payload is an identifier (stage index,
                    // block id), not a magnitude: count occurrences.
                    RecoveryStepKind::StageStarted
                    | RecoveryStepKind::StageInterrupted
                    | RecoveryStepKind::StageFailed
                    | RecoveryStepKind::Resumed
                    | RecoveryStepKind::BlockRetired
                    | RecoveryStepKind::ReadOnlyFallback => {
                        m.incr(&format!("recovery.{}", step.name()), 1);
                    }
                    _ => m.incr(&format!("recovery.{}", step.name()), value),
                },
                _ => {}
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Layer;
    use crate::probe::ProbeLog;
    use pfault_sim::SimTime;

    #[test]
    fn bucket_indexing_is_log2() {
        assert_eq!(Log2Histogram::bucket_index(0), 0);
        assert_eq!(Log2Histogram::bucket_index(1), 1);
        assert_eq!(Log2Histogram::bucket_index(2), 2);
        assert_eq!(Log2Histogram::bucket_index(3), 2);
        assert_eq!(Log2Histogram::bucket_index(4), 3);
        assert_eq!(Log2Histogram::bucket_index(1023), 10);
        assert_eq!(Log2Histogram::bucket_index(1024), 11);
        assert_eq!(Log2Histogram::bucket_index(u64::MAX), 64);
        for i in 0..LOG2_BUCKETS {
            let lo = Log2Histogram::bucket_lower_bound(i);
            if i >= 1 {
                assert_eq!(Log2Histogram::bucket_index(lo.max(1)), i.max(1));
            }
        }
    }

    #[test]
    fn histogram_merge_is_addition() {
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        a.record(5);
        b.record(5);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.buckets()[Log2Histogram::bucket_index(5)], 2);
        assert_eq!(a.buckets()[Log2Histogram::bucket_index(100)], 1);
    }

    #[test]
    fn percentile_lower_bound_floor() {
        let mut h = Log2Histogram::new();
        for v in [1u64, 2, 4, 8, 1000] {
            h.record(v);
        }
        assert_eq!(h.percentile_lower_bound(50), Some(4));
        assert_eq!(h.percentile_lower_bound(100), Some(512));
        assert_eq!(Log2Histogram::new().percentile_lower_bound(50), None);
    }

    #[test]
    fn metrics_merge_sums_counters() {
        let mut a = Metrics::new();
        let mut b = Metrics::new();
        a.incr("x", 2);
        b.incr("x", 3);
        b.incr("y", 1);
        b.observe("h", 7);
        a.merge(&b);
        assert_eq!(a.counter("x"), 5);
        assert_eq!(a.counter("y"), 1);
        assert_eq!(a.histogram("h").map(|h| h.count()), Some(1));
    }

    #[test]
    fn from_records_counts_kinds_and_magnitudes() {
        let mut log = ProbeLog::enabled();
        let t = SimTime::from_micros(10);
        log.emit(
            t,
            Layer::Ftl,
            ProbeEvent::JournalCommit {
                entries: 4,
                coverage: 32,
                us: 200,
            },
        );
        log.emit(
            t,
            Layer::Power,
            ProbeEvent::VolatileLost { dirty: 9, map: 3 },
        );
        log.emit(
            t,
            Layer::Flash,
            ProbeEvent::EccCorrected {
                block: 1,
                page: 2,
                bits: 5,
            },
        );
        let m = Metrics::from_records(log.records());
        assert_eq!(m.counter("journal.commit"), 1);
        assert_eq!(m.counter("journal.entries"), 4);
        assert_eq!(m.counter("power.dirty-sectors-lost"), 9);
        assert_eq!(m.counter("power.map-sectors-lost"), 3);
        assert_eq!(m.counter("ecc.corrected-bits"), 5);
        assert_eq!(m.histogram("journal.commit.us").map(|h| h.count()), Some(1));
    }

    #[test]
    fn serialisation_is_sorted_and_stable() {
        let mut m = Metrics::new();
        m.incr("zebra", 1);
        m.incr("alpha", 2);
        m.observe("lat", 33);
        let a = serde_json::to_string(&m).expect("serialises");
        let b = serde_json::to_string(&m.clone()).expect("serialises");
        assert_eq!(a, b);
        assert!(a.find("alpha").expect("alpha") < a.find("zebra").expect("zebra"));
        let back: Metrics = serde_json::from_str(&a).expect("round-trips");
        assert_eq!(back, m);
    }
}
