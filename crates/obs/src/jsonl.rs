//! Blkparse-style JSON-lines export of probe records.
//!
//! One record per line, keys in a fixed order (`seq`, `t_us`, `layer`,
//! `req`, `span`, `event`, then the event's payload fields in
//! declaration order). The renderer is hand-rolled rather than routed
//! through serde so the byte layout is guaranteed stable — the
//! determinism acceptance test compares whole files with `cmp`.

use std::fmt::Write as _;

use crate::event::ProbeEvent;
use crate::metrics::Metrics;
use crate::probe::ProbeRecord;

/// Renders one record as a single JSON line (no trailing newline).
pub fn render_record(r: &ProbeRecord) -> String {
    let mut s = String::with_capacity(128);
    let _ = write!(
        s,
        "{{\"seq\":{},\"t_us\":{},\"layer\":\"{}\"",
        r.seq,
        r.time_us,
        r.layer.name()
    );
    match r.request {
        Some(id) => {
            let _ = write!(s, ",\"req\":{id}");
        }
        None => s.push_str(",\"req\":null"),
    }
    match r.span {
        Some(id) => {
            let _ = write!(s, ",\"span\":{id}");
        }
        None => s.push_str(",\"span\":null"),
    }
    let _ = write!(s, ",\"event\":\"{}\"", r.event.kind());
    render_payload(&mut s, &r.event);
    s.push('}');
    s
}

fn render_payload(s: &mut String, event: &ProbeEvent) {
    match *event {
        ProbeEvent::CacheInsert { lba, dirty } | ProbeEvent::CacheEvict { lba, dirty } => {
            let _ = write!(s, ",\"lba\":{lba},\"dirty\":{dirty}");
        }
        ProbeEvent::ProgramStart { kind, block, page } => {
            let _ = write!(
                s,
                ",\"kind\":\"{}\",\"block\":{block},\"page\":{page}",
                kind.name()
            );
        }
        ProbeEvent::ProgramEnd {
            kind,
            block,
            page,
            us,
        } => {
            let _ = write!(
                s,
                ",\"kind\":\"{}\",\"block\":{block},\"page\":{page},\"us\":{us}",
                kind.name()
            );
        }
        ProbeEvent::ProgramInterrupted {
            kind,
            block,
            page,
            progress_permille,
        } => {
            let _ = write!(
                s,
                ",\"kind\":\"{}\",\"block\":{block},\"page\":{page},\"progress_permille\":{progress_permille}",
                kind.name()
            );
        }
        ProbeEvent::EraseStart { block } | ProbeEvent::EraseInterrupted { block } => {
            let _ = write!(s, ",\"block\":{block}");
        }
        ProbeEvent::EraseEnd { block, us } => {
            let _ = write!(s, ",\"block\":{block},\"us\":{us}");
        }
        ProbeEvent::JournalCommit {
            entries,
            coverage,
            us,
        } => {
            let _ = write!(
                s,
                ",\"entries\":{entries},\"coverage\":{coverage},\"us\":{us}"
            );
        }
        ProbeEvent::JournalTorn { kept, full } => {
            let _ = write!(s, ",\"kept\":{kept},\"full\":{full}");
        }
        ProbeEvent::CheckpointBegin { id, entries } => {
            let _ = write!(s, ",\"id\":{id},\"entries\":{entries}");
        }
        ProbeEvent::CheckpointEnd { id, us } => {
            let _ = write!(s, ",\"id\":{id},\"us\":{us}");
        }
        ProbeEvent::CheckpointInterrupted { id } => {
            let _ = write!(s, ",\"id\":{id}");
        }
        ProbeEvent::GcMove {
            lba,
            from_block,
            to_block,
        } => {
            let _ = write!(
                s,
                ",\"lba\":{lba},\"from_block\":{from_block},\"to_block\":{to_block}"
            );
        }
        ProbeEvent::PowerCut {
            commanded_us,
            host_lost_us,
            flash_unreliable_us,
            core_dead_us,
        } => {
            let _ = write!(
                s,
                ",\"commanded_us\":{commanded_us},\"host_lost_us\":{host_lost_us},\"flash_unreliable_us\":{flash_unreliable_us},\"core_dead_us\":{core_dead_us}"
            );
        }
        ProbeEvent::VolatileLost { dirty, map } => {
            let _ = write!(s, ",\"dirty\":{dirty},\"map\":{map}");
        }
        ProbeEvent::RecoveryStep { step, value } => {
            let _ = write!(s, ",\"step\":\"{}\",\"value\":{value}", step.name());
        }
        ProbeEvent::EccCorrected { block, page, bits } => {
            let _ = write!(s, ",\"block\":{block},\"page\":{page},\"bits\":{bits}");
        }
        ProbeEvent::EccUncorrectable { block, page } => {
            let _ = write!(s, ",\"block\":{block},\"page\":{page}");
        }
        ProbeEvent::ReadRetry {
            block,
            page,
            rungs,
            recovered,
        } => {
            let _ = write!(
                s,
                ",\"block\":{block},\"page\":{page},\"rungs\":{rungs},\"recovered\":{recovered}"
            );
        }
        ProbeEvent::HostLinkLost { inflight } => {
            let _ = write!(s, ",\"inflight\":{inflight}");
        }
        ProbeEvent::FleetOutage {
            devices,
            correlated,
        } => {
            let _ = write!(s, ",\"devices\":{devices},\"correlated\":{correlated}");
        }
        ProbeEvent::FleetDegradedRead { stripe, missing } => {
            let _ = write!(s, ",\"stripe\":{stripe},\"missing\":{missing}");
        }
        ProbeEvent::FleetStripeLost {
            stripe,
            unrecoverable,
        } => {
            let _ = write!(s, ",\"stripe\":{stripe},\"unrecoverable\":{unrecoverable}");
        }
        ProbeEvent::FleetRebuildInterrupted { pending_stripes } => {
            let _ = write!(s, ",\"pending_stripes\":{pending_stripes}");
        }
        ProbeEvent::AppWalAppend { slot, seq } => {
            let _ = write!(s, ",\"slot\":{slot},\"seq\":{seq}");
        }
        ProbeEvent::AppCommit { ops, us } => {
            let _ = write!(s, ",\"ops\":{ops},\"us\":{us}");
        }
        ProbeEvent::AppCheckpoint {
            generation,
            entries,
        } => {
            let _ = write!(s, ",\"generation\":{generation},\"entries\":{entries}");
        }
        ProbeEvent::AppWalReplay {
            replayed,
            discarded,
            stale,
        } => {
            let _ = write!(
                s,
                ",\"replayed\":{replayed},\"discarded\":{discarded},\"stale\":{stale}"
            );
        }
        ProbeEvent::AppReadOnly { retries } => {
            let _ = write!(s, ",\"retries\":{retries}");
        }
        ProbeEvent::AppOutcome {
            surfaced,
            masked,
            silent_poison,
        } => {
            let _ = write!(
                s,
                ",\"surfaced\":{surfaced},\"masked\":{masked},\"silent_poison\":{silent_poison}"
            );
        }
    }
}

/// Renders all records, one per line, with a trailing newline (empty
/// string for an empty slice).
pub fn render_records(records: &[ProbeRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&render_record(r));
        out.push('\n');
    }
    out
}

/// Renders a metrics registry as JSONL for mid-run snapshots: one line
/// per counter (`{"type":"counter","scope":…,"name":…,"value":…}`) and
/// one per histogram (`…,"count":…,"buckets":[…]}`, trailing zero
/// buckets trimmed). `scope` labels whose slice of a larger aggregate
/// this is (`totals`, a failure class, …). Like [`render_record`], the
/// layout is hand-rolled and byte-stable: a live `metrics` endpoint
/// polled twice at the same progress point must serve identical bytes.
pub fn render_metrics_jsonl(scope: &str, metrics: &Metrics) -> String {
    let mut out = String::new();
    for (name, value) in &metrics.counters {
        let _ = write!(
            out,
            "{{\"type\":\"counter\",\"scope\":\"{}\",\"name\":\"{}\",\"value\":{value}}}",
            escape_json(scope),
            escape_json(name)
        );
        out.push('\n');
    }
    for (name, hist) in &metrics.histograms {
        let _ = write!(
            out,
            "{{\"type\":\"histogram\",\"scope\":\"{}\",\"name\":\"{}\",\"count\":{},\"buckets\":[",
            escape_json(scope),
            escape_json(name),
            hist.count()
        );
        let buckets = hist.buckets();
        let trimmed = buckets
            .iter()
            .rposition(|&n| n > 0)
            .map_or(0, |last| last + 1);
        for (i, n) in buckets[..trimmed].iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{n}");
        }
        out.push_str("]}");
        out.push('\n');
    }
    out
}

/// Minimal JSON string escaping for metric/scope names (dotted ASCII in
/// practice, but the renderer must never emit malformed JSON).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The well-formedness view of one parsed JSONL line: the four header
/// fields every record must carry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedProbeLine {
    /// Emission sequence number.
    pub seq: u64,
    /// Simulated microsecond timestamp.
    pub time_us: u64,
    /// Emitting layer name.
    pub layer: String,
    /// Dotted event kind.
    pub event: String,
}

/// Parses one JSONL line, verifying it is a JSON object carrying the
/// mandatory header fields with the right types.
pub fn parse_jsonl_line(line: &str) -> Result<ParsedProbeLine, String> {
    let value = serde_json::parse_value_str(line).map_err(|e| e.to_string())?;
    let object = value
        .as_object()
        .ok_or_else(|| "line is not a JSON object".to_string())?;
    let get_u64 = |key: &str| -> Result<u64, String> {
        object
            .get(key)
            .and_then(|v| v.as_u64())
            .ok_or_else(|| format!("missing or non-integer field {key:?}"))
    };
    let get_str = |key: &str| -> Result<String, String> {
        object
            .get(key)
            .and_then(|v| v.as_str())
            .map(str::to_string)
            .ok_or_else(|| format!("missing or non-string field {key:?}"))
    };
    Ok(ParsedProbeLine {
        seq: get_u64("seq")?,
        time_us: get_u64("t_us")?,
        layer: get_str("layer")?,
        event: get_str("event")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Layer, ProgramKind};
    use crate::probe::ProbeLog;
    use pfault_sim::SimTime;

    fn sample_log() -> ProbeLog {
        let mut log = ProbeLog::enabled();
        log.emit_tagged(
            SimTime::from_micros(100),
            Layer::Flash,
            Some(3),
            Some(0),
            ProbeEvent::ProgramEnd {
                kind: ProgramKind::CacheFlush,
                block: 7,
                page: 12,
                us: 900,
            },
        );
        log.emit(
            SimTime::from_micros(150),
            Layer::Power,
            ProbeEvent::VolatileLost { dirty: 5, map: 2 },
        );
        log
    }

    #[test]
    fn rendering_is_stable_and_parseable() {
        let log = sample_log();
        let text = render_records(log.records());
        let again = render_records(log.records());
        assert_eq!(text, again, "rendering must be byte-stable");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"seq\":0,\"t_us\":100,\"layer\":\"flash\",\"req\":3,\"span\":0,\
             \"event\":\"program.end\",\"kind\":\"cache-flush\",\"block\":7,\"page\":12,\"us\":900}"
        );
        for (i, line) in lines.iter().enumerate() {
            let parsed = parse_jsonl_line(line).expect("well-formed line");
            assert_eq!(parsed.seq, i as u64);
        }
        let p = parse_jsonl_line(lines[1]).expect("well-formed");
        assert_eq!(p.layer, "power");
        assert_eq!(p.event, "power.volatile-lost");
    }

    #[test]
    fn metrics_snapshot_is_stable_and_parseable() {
        let mut m = Metrics::new();
        m.incr("program.end", 3);
        m.incr("power.cut", 1);
        m.observe("program.us", 900);
        m.observe("program.us", 120_000);
        let text = render_metrics_jsonl("totals", &m);
        assert_eq!(text, render_metrics_jsonl("totals", &m));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "2 counters + 1 histogram: {text}");
        // BTreeMap order: counters alphabetical, then histograms.
        assert_eq!(
            lines[0],
            "{\"type\":\"counter\",\"scope\":\"totals\",\"name\":\"power.cut\",\"value\":1}"
        );
        for line in &lines {
            let v = serde_json::parse_value_str(line).expect("valid JSON");
            assert!(v.as_object().is_some());
        }
        let hist = lines[2];
        assert!(hist.contains("\"count\":2"));
        assert!(hist.contains("\"buckets\":["));
        // Scope labels with quotes must stay well-formed JSON.
        let odd = render_metrics_jsonl("we\"ird", &m);
        for line in odd.lines() {
            assert!(serde_json::parse_value_str(line).is_ok(), "line: {line}");
        }
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(parse_jsonl_line("not json").is_err());
        assert!(parse_jsonl_line("{\"seq\":1}").is_err());
        assert!(
            parse_jsonl_line("{\"seq\":\"x\",\"t_us\":0,\"layer\":\"a\",\"event\":\"b\"}").is_err()
        );
    }
}
