//! The probe bus: an append-only, zero-cost-when-disabled event log.
//!
//! Mirrors the proven `SiteLog` pattern from `pfault-ssd`: a single
//! `enabled` flag guards every emit, so a disabled log costs one branch
//! and no allocation. Hot paths should use [`ProbeLog::emit_with`] so
//! the event payload itself is never built while disabled.

use pfault_sim::SimTime;
use serde::{Deserialize, Serialize};

use crate::event::{Layer, ProbeEvent};

/// One emitted probe event with its full provenance tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbeRecord {
    /// Emission sequence number within the trial, starting at 0.
    pub seq: u64,
    /// Simulated time of the event, in microseconds.
    pub time_us: u64,
    /// Layer that emitted the event.
    pub layer: Layer,
    /// Host request id the event is attributable to, when one exists.
    pub request: Option<u64>,
    /// Fault-site span index (`SiteLog` span number) the event belongs
    /// to, when site recording is also enabled.
    pub span: Option<u64>,
    /// The typed payload.
    pub event: ProbeEvent,
}

/// Append-only probe sink. Disabled (and free) by default.
#[derive(Debug, Clone, Default)]
pub struct ProbeLog {
    enabled: bool,
    records: Vec<ProbeRecord>,
}

impl ProbeLog {
    /// Creates a disabled log: every emit is a no-op.
    pub fn new() -> Self {
        ProbeLog::default()
    }

    /// Creates a log that records from the first event.
    pub fn enabled() -> Self {
        ProbeLog {
            enabled: true,
            records: Vec::new(),
        }
    }

    /// Starts recording.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Emits an untagged event (no request/span attribution).
    #[inline]
    pub fn emit(&mut self, time: SimTime, layer: Layer, event: ProbeEvent) {
        if !self.enabled {
            return;
        }
        self.push(time, layer, None, None, event);
    }

    /// Emits an event tagged with a request id and/or fault-site span.
    #[inline]
    pub fn emit_tagged(
        &mut self,
        time: SimTime,
        layer: Layer,
        request: Option<u64>,
        span: Option<u64>,
        event: ProbeEvent,
    ) {
        if !self.enabled {
            return;
        }
        self.push(time, layer, request, span, event);
    }

    /// Emits an event whose payload (and tags) are only computed when
    /// the log is enabled — use on hot paths where building the event
    /// would itself cost something.
    #[inline]
    pub fn emit_with<F>(&mut self, time: SimTime, layer: Layer, build: F)
    where
        F: FnOnce() -> (Option<u64>, Option<u64>, ProbeEvent),
    {
        if !self.enabled {
            return;
        }
        let (request, span, event) = build();
        self.push(time, layer, request, span, event);
    }

    fn push(
        &mut self,
        time: SimTime,
        layer: Layer,
        request: Option<u64>,
        span: Option<u64>,
        event: ProbeEvent,
    ) {
        let seq = self.records.len() as u64;
        self.records.push(ProbeRecord {
            seq,
            time_us: time.as_micros(),
            layer,
            request,
            span,
            event,
        });
    }

    /// All records emitted so far, in emission order.
    pub fn records(&self) -> &[ProbeRecord] {
        &self.records
    }

    /// Drains the records out of the log (the log stays enabled).
    pub fn take_records(&mut self) -> Vec<ProbeRecord> {
        std::mem::take(&mut self.records)
    }

    /// Number of records emitted.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Count of records whose event kind equals `kind` (dotted name).
    pub fn count_kind(&self, kind: &str) -> u64 {
        self.records
            .iter()
            .filter(|r| r.event.kind() == kind)
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_is_a_no_op() {
        let mut log = ProbeLog::new();
        log.emit(
            SimTime::from_micros(5),
            Layer::Cache,
            ProbeEvent::CacheInsert { lba: 1, dirty: 1 },
        );
        let mut built = false;
        log.emit_with(SimTime::from_micros(6), Layer::Flash, || {
            built = true;
            (None, None, ProbeEvent::EraseStart { block: 0 })
        });
        assert!(log.is_empty());
        assert!(
            !built,
            "emit_with must not build the payload while disabled"
        );
    }

    #[test]
    fn sequence_numbers_are_dense_and_ordered() {
        let mut log = ProbeLog::enabled();
        for i in 0..4u64 {
            log.emit(
                SimTime::from_micros(i),
                Layer::Flash,
                ProbeEvent::EraseStart { block: i },
            );
        }
        let seqs: Vec<u64> = log.records().iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
        assert_eq!(log.count_kind("erase.start"), 4);
    }

    #[test]
    fn tags_are_preserved() {
        let mut log = ProbeLog::enabled();
        log.emit_tagged(
            SimTime::from_micros(9),
            Layer::Ftl,
            Some(7),
            Some(2),
            ProbeEvent::GcMove {
                lba: 3,
                from_block: 1,
                to_block: 2,
            },
        );
        let r = log.records()[0];
        assert_eq!(r.request, Some(7));
        assert_eq!(r.span, Some(2));
        assert_eq!(r.time_us, 9);
        assert_eq!(r.layer, Layer::Ftl);
    }
}
