//! Typed probe events and the layers that emit them.
//!
//! Events carry only integers (addresses, sector counts, microsecond
//! durations) so that every serialisation is exact and deterministic.
//! Fractions are expressed in permille (`progress_permille`), never as
//! floats.

use serde::{Deserialize, Serialize};

/// Which layer of the stack emitted a probe record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Layer {
    /// Host interface: request queue, ACK boundary.
    Host,
    /// DRAM write-back cache.
    Cache,
    /// NAND array operations (programs, erases, ECC).
    Flash,
    /// FTL bookkeeping: journal, checkpoints, GC.
    Ftl,
    /// Power subsystem: rail thresholds, volatile-state loss.
    Power,
    /// Power-on recovery path.
    Recovery,
    /// Fleet layer: erasure-coded stripes across many devices.
    Fleet,
    /// Application layer: the WAL'd KV store running above the device.
    App,
}

impl Layer {
    /// Stable lowercase name used in JSONL output and metric keys.
    pub fn name(self) -> &'static str {
        match self {
            Layer::Host => "host",
            Layer::Cache => "cache",
            Layer::Flash => "flash",
            Layer::Ftl => "ftl",
            Layer::Power => "power",
            Layer::Recovery => "recovery",
            Layer::Fleet => "fleet",
            Layer::App => "app",
        }
    }
}

/// What kind of NAND program a `Program*` event describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ProgramKind {
    /// Dirty sector flushed from the write cache.
    CacheFlush,
    /// Direct (cache-off) user write.
    Direct,
    /// GC relocation of a live sector.
    GcReloc,
    /// Journal-batch control program.
    Journal,
    /// Mapping-checkpoint control program.
    Checkpoint,
}

impl ProgramKind {
    /// Stable name used in JSONL output.
    pub fn name(self) -> &'static str {
        match self {
            ProgramKind::CacheFlush => "cache-flush",
            ProgramKind::Direct => "direct",
            ProgramKind::GcReloc => "gc-reloc",
            ProgramKind::Journal => "journal",
            ProgramKind::Checkpoint => "checkpoint",
        }
    }
}

/// One step of the power-on recovery pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RecoveryStepKind {
    /// A mount attempt started (`value` = attempt number, 1-based).
    MountAttempt,
    /// A mount attempt failed (`value` = attempt number, 1-based).
    MountFailed,
    /// A mapping checkpoint was restored (`value` = entries restored).
    CheckpointRestored,
    /// Journal batches replayed cleanly (`value` = batch count).
    BatchReplayed,
    /// Torn batches that failed their CRC and were discarded whole
    /// (`value` = batch count).
    BatchDiscardedTorn,
    /// Replay stopped early at an unreadable journal page
    /// (`value` = batches never reached).
    ReplayTruncated,
    /// The logical-to-physical map finished rebuilding
    /// (`value` = mapped entries).
    MapRebuilt,
    /// Full-scan reconciliation adopted an OOB-tagged page
    /// (`value` = pages adopted so far).
    ScanAdopted,
    /// A recovery pipeline stage began executing
    /// (`value` = stage index, 1-based: 1 journal scan, 2 mapping
    /// rebuild, 3 dirty-page verify, 4 bad-block retirement).
    StageStarted,
    /// A power cut landed inside a recovery stage; its in-flight work is
    /// lost (`value` = stage index, 1-based).
    StageInterrupted,
    /// A recovery stage failed stochastically and the mount aborted
    /// (`value` = stage index, 1-based).
    StageFailed,
    /// A mount resumed a previous interrupted recovery from its last
    /// completed stage boundary (`value` = stages skipped).
    Resumed,
    /// Dirty-page verify found a mapped page unreadable even through the
    /// read-retry ladder (`value` = unreadable pages so far).
    VerifyUnreadable,
    /// Bad-block retirement took a block out of service
    /// (`value` = physical block id).
    BlockRetired,
    /// The device degraded to read-only instead of bricking
    /// (`value` = blocks retired at that point).
    ReadOnlyFallback,
}

impl RecoveryStepKind {
    /// Stable name used in JSONL output and metric keys.
    pub fn name(self) -> &'static str {
        match self {
            RecoveryStepKind::MountAttempt => "mount-attempt",
            RecoveryStepKind::MountFailed => "mount-failed",
            RecoveryStepKind::CheckpointRestored => "checkpoint-restored",
            RecoveryStepKind::BatchReplayed => "batch-replayed",
            RecoveryStepKind::BatchDiscardedTorn => "batch-discarded-torn",
            RecoveryStepKind::ReplayTruncated => "replay-truncated",
            RecoveryStepKind::MapRebuilt => "map-rebuilt",
            RecoveryStepKind::ScanAdopted => "scan-adopted",
            RecoveryStepKind::StageStarted => "stage-started",
            RecoveryStepKind::StageInterrupted => "stage-interrupted",
            RecoveryStepKind::StageFailed => "stage-failed",
            RecoveryStepKind::Resumed => "resumed",
            RecoveryStepKind::VerifyUnreadable => "verify-unreadable",
            RecoveryStepKind::BlockRetired => "block-retired",
            RecoveryStepKind::ReadOnlyFallback => "read-only-fallback",
        }
    }
}

/// A typed probe event. All payload fields are integers so renderings
/// are exact; durations are simulated microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProbeEvent {
    /// Sector entered the write cache.
    CacheInsert {
        /// Logical block address.
        lba: u64,
        /// Dirty sectors resident after the insert.
        dirty: u64,
    },
    /// Sector left the cache to make room (flush-on-pressure).
    CacheEvict {
        /// Logical block address.
        lba: u64,
        /// Dirty sectors resident after the eviction started.
        dirty: u64,
    },
    /// A NAND program started.
    ProgramStart {
        /// What the program is writing.
        kind: ProgramKind,
        /// Physical block.
        block: u64,
        /// Page within the block.
        page: u64,
    },
    /// A NAND program completed on the array.
    ProgramEnd {
        /// What the program was writing.
        kind: ProgramKind,
        /// Physical block.
        block: u64,
        /// Page within the block.
        page: u64,
        /// Program latency in simulated microseconds.
        us: u64,
    },
    /// A NAND program was cut mid-flight by the rail collapse.
    ProgramInterrupted {
        /// What the program was writing.
        kind: ProgramKind,
        /// Physical block.
        block: u64,
        /// Page within the block.
        page: u64,
        /// How far the ISPP sequence had got, in permille.
        progress_permille: u64,
    },
    /// A block erase started (GC victim).
    EraseStart {
        /// Physical block being erased.
        block: u64,
    },
    /// A block erase completed.
    EraseEnd {
        /// Physical block erased.
        block: u64,
        /// Erase latency in simulated microseconds.
        us: u64,
    },
    /// A block erase was cut mid-flight.
    EraseInterrupted {
        /// Physical block whose erase was interrupted.
        block: u64,
    },
    /// A journal batch committed durably.
    JournalCommit {
        /// Mapping entries in the batch.
        entries: u64,
        /// Sectors of user data the batch covers.
        coverage: u64,
        /// Commit (program) latency in simulated microseconds.
        us: u64,
    },
    /// A journal batch tore: only a prefix reached the array.
    JournalTorn {
        /// Sectors of the batch that survived.
        kept: u64,
        /// Sectors the full batch would have occupied.
        full: u64,
    },
    /// A mapping checkpoint write started.
    CheckpointBegin {
        /// Monotonic checkpoint id.
        id: u64,
        /// Mapping entries captured.
        entries: u64,
    },
    /// A mapping checkpoint write completed.
    CheckpointEnd {
        /// Monotonic checkpoint id.
        id: u64,
        /// Checkpoint (program) latency in simulated microseconds.
        us: u64,
    },
    /// A mapping checkpoint write was cut mid-flight.
    CheckpointInterrupted {
        /// Monotonic checkpoint id.
        id: u64,
    },
    /// GC relocated one live sector.
    GcMove {
        /// Logical block address moved.
        lba: u64,
        /// Victim block.
        from_block: u64,
        /// Destination block.
        to_block: u64,
    },
    /// The power rail was cut; thresholds are absolute simulated µs.
    PowerCut {
        /// When the Off command was issued.
        commanded_us: u64,
        /// When the host link dropped (4.5 V).
        host_lost_us: u64,
        /// When NAND operations stopped being reliable (4.0 V).
        flash_unreliable_us: u64,
        /// When the controller core died (2.5 V).
        core_dead_us: u64,
    },
    /// Volatile state lost at core death.
    VolatileLost {
        /// Dirty cache sectors that never reached the array.
        dirty: u64,
        /// Volatile mapping entries that never reached the journal.
        map: u64,
    },
    /// One step of power-on recovery.
    RecoveryStep {
        /// Which step.
        step: RecoveryStepKind,
        /// Step-specific magnitude (see [`RecoveryStepKind`] docs).
        value: u64,
    },
    /// ECC corrected a read.
    EccCorrected {
        /// Physical block read.
        block: u64,
        /// Page within the block.
        page: u64,
        /// Bits repaired.
        bits: u64,
    },
    /// ECC could not correct a read.
    EccUncorrectable {
        /// Physical block read.
        block: u64,
        /// Page within the block.
        page: u64,
    },
    /// The read-retry ladder re-read a page at shifted thresholds after
    /// an uncorrectable nominal read.
    ReadRetry {
        /// Physical block read.
        block: u64,
        /// Page within the block.
        page: u64,
        /// Ladder rungs walked for this read.
        rungs: u64,
        /// 1 when a rung decoded the page, 0 when the ladder ran dry.
        recovered: u64,
    },
    /// The host link dropped with requests still in flight.
    HostLinkLost {
        /// Requests in flight when the link died.
        inflight: u64,
    },
    /// A fleet-level outage event cut one or more devices.
    FleetOutage {
        /// Devices cut by this event.
        devices: u64,
        /// 1 when the cut was a correlated PSU-group (rack) event,
        /// 0 when it was an independent single-device cut.
        correlated: u64,
    },
    /// A stripe read was served degraded: reconstruction from parity
    /// stood in for chunks that were unavailable or stale.
    FleetDegradedRead {
        /// Stripe identifier.
        stripe: u64,
        /// Chunks that had to be reconstructed.
        missing: u64,
    },
    /// A stripe lost more chunks than parity can cover, *after*
    /// per-device mechanistic recovery ran: a data-loss event.
    FleetStripeLost {
        /// Stripe identifier.
        stripe: u64,
        /// Unrecoverable chunks (strictly more than the parity count).
        unrecoverable: u64,
    },
    /// A rebuild pass was interrupted by a further outage before the
    /// queue drained; remaining stripes stay degraded.
    FleetRebuildInterrupted {
        /// Stripes still waiting for rebuild when the outage landed.
        pending_stripes: u64,
    },
    /// The KV store appended one CRC-framed record to its WAL.
    AppWalAppend {
        /// WAL slot (physical ring position) the record landed in.
        slot: u64,
        /// Monotonic record sequence number.
        seq: u64,
    },
    /// A group commit completed: the FLUSH barrier returned and the
    /// batched operations were acknowledged to the application.
    AppCommit {
        /// Operations acknowledged by this commit.
        ops: u64,
        /// Commit latency (append of first record to FLUSH ACK) in
        /// simulated microseconds.
        us: u64,
    },
    /// A checkpoint compaction sealed: the memtable was rewritten into
    /// the checkpoint region and the WAL logically truncated.
    AppCheckpoint {
        /// Monotonic checkpoint generation.
        generation: u64,
        /// Live entries captured by the checkpoint.
        entries: u64,
    },
    /// Crash recovery finished replaying the WAL.
    AppWalReplay {
        /// Records replayed cleanly (CRC and sequence both good).
        replayed: u64,
        /// Records discarded because their frame failed the CRC check
        /// (torn, garbled, or unreadable).
        discarded: u64,
        /// Records rejected as stale (an earlier ring generation read
        /// back where a newer record was expected).
        stale: u64,
    },
    /// The KV store degraded to read-only because the device did.
    AppReadOnly {
        /// Mount attempts spent before the device settled read-only.
        retries: u64,
    },
    /// Post-outage oracle verdict for one trial: how the device fault
    /// surfaced at the application boundary.
    AppOutcome {
        /// Acknowledged keys whose damage was visible to the app
        /// (error or detected corruption).
        surfaced: u64,
        /// 1 when device-level damage occurred but every acknowledged
        /// key verified correct (the WAL absorbed the fault).
        masked: u64,
        /// Acknowledged keys wrong or missing with no error raised —
        /// the application-level false write acknowledgment.
        silent_poison: u64,
    },
}

impl ProbeEvent {
    /// Stable dotted event name: used as the JSONL `event` field and as
    /// the per-event counter key in [`crate::Metrics`].
    pub fn kind(&self) -> &'static str {
        match self {
            ProbeEvent::CacheInsert { .. } => "cache.insert",
            ProbeEvent::CacheEvict { .. } => "cache.evict",
            ProbeEvent::ProgramStart { .. } => "program.start",
            ProbeEvent::ProgramEnd { .. } => "program.end",
            ProbeEvent::ProgramInterrupted { .. } => "program.interrupted",
            ProbeEvent::EraseStart { .. } => "erase.start",
            ProbeEvent::EraseEnd { .. } => "erase.end",
            ProbeEvent::EraseInterrupted { .. } => "erase.interrupted",
            ProbeEvent::JournalCommit { .. } => "journal.commit",
            ProbeEvent::JournalTorn { .. } => "journal.torn",
            ProbeEvent::CheckpointBegin { .. } => "checkpoint.begin",
            ProbeEvent::CheckpointEnd { .. } => "checkpoint.end",
            ProbeEvent::CheckpointInterrupted { .. } => "checkpoint.interrupted",
            ProbeEvent::GcMove { .. } => "gc.move",
            ProbeEvent::PowerCut { .. } => "power.cut",
            ProbeEvent::VolatileLost { .. } => "power.volatile-lost",
            ProbeEvent::RecoveryStep { .. } => "recovery.step",
            ProbeEvent::EccCorrected { .. } => "ecc.corrected",
            ProbeEvent::EccUncorrectable { .. } => "ecc.uncorrectable",
            ProbeEvent::ReadRetry { .. } => "flash.read-retry",
            ProbeEvent::HostLinkLost { .. } => "host.link-lost",
            ProbeEvent::FleetOutage { .. } => "fleet.outage",
            ProbeEvent::FleetDegradedRead { .. } => "fleet.degraded-read",
            ProbeEvent::FleetStripeLost { .. } => "fleet.stripe-lost",
            ProbeEvent::FleetRebuildInterrupted { .. } => "fleet.rebuild-interrupted",
            ProbeEvent::AppWalAppend { .. } => "app.wal-append",
            ProbeEvent::AppCommit { .. } => "app.commit",
            ProbeEvent::AppCheckpoint { .. } => "app.checkpoint",
            ProbeEvent::AppWalReplay { .. } => "app.wal-replay",
            ProbeEvent::AppReadOnly { .. } => "app.read-only",
            ProbeEvent::AppOutcome { .. } => "app.outcome",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_unique() {
        let events = [
            ProbeEvent::CacheInsert { lba: 0, dirty: 0 },
            ProbeEvent::CacheEvict { lba: 0, dirty: 0 },
            ProbeEvent::ProgramStart {
                kind: ProgramKind::Direct,
                block: 0,
                page: 0,
            },
            ProbeEvent::ProgramEnd {
                kind: ProgramKind::Direct,
                block: 0,
                page: 0,
                us: 0,
            },
            ProbeEvent::ProgramInterrupted {
                kind: ProgramKind::Direct,
                block: 0,
                page: 0,
                progress_permille: 0,
            },
            ProbeEvent::EraseStart { block: 0 },
            ProbeEvent::EraseEnd { block: 0, us: 0 },
            ProbeEvent::EraseInterrupted { block: 0 },
            ProbeEvent::JournalCommit {
                entries: 0,
                coverage: 0,
                us: 0,
            },
            ProbeEvent::JournalTorn { kept: 0, full: 0 },
            ProbeEvent::CheckpointBegin { id: 0, entries: 0 },
            ProbeEvent::CheckpointEnd { id: 0, us: 0 },
            ProbeEvent::CheckpointInterrupted { id: 0 },
            ProbeEvent::GcMove {
                lba: 0,
                from_block: 0,
                to_block: 0,
            },
            ProbeEvent::PowerCut {
                commanded_us: 0,
                host_lost_us: 0,
                flash_unreliable_us: 0,
                core_dead_us: 0,
            },
            ProbeEvent::VolatileLost { dirty: 0, map: 0 },
            ProbeEvent::RecoveryStep {
                step: RecoveryStepKind::MountAttempt,
                value: 0,
            },
            ProbeEvent::EccCorrected {
                block: 0,
                page: 0,
                bits: 0,
            },
            ProbeEvent::EccUncorrectable { block: 0, page: 0 },
            ProbeEvent::ReadRetry {
                block: 0,
                page: 0,
                rungs: 0,
                recovered: 0,
            },
            ProbeEvent::HostLinkLost { inflight: 0 },
            ProbeEvent::FleetOutage {
                devices: 0,
                correlated: 0,
            },
            ProbeEvent::FleetDegradedRead {
                stripe: 0,
                missing: 0,
            },
            ProbeEvent::FleetStripeLost {
                stripe: 0,
                unrecoverable: 0,
            },
            ProbeEvent::FleetRebuildInterrupted { pending_stripes: 0 },
            ProbeEvent::AppWalAppend { slot: 0, seq: 0 },
            ProbeEvent::AppCommit { ops: 0, us: 0 },
            ProbeEvent::AppCheckpoint {
                generation: 0,
                entries: 0,
            },
            ProbeEvent::AppWalReplay {
                replayed: 0,
                discarded: 0,
                stale: 0,
            },
            ProbeEvent::AppReadOnly { retries: 0 },
            ProbeEvent::AppOutcome {
                surfaced: 0,
                masked: 0,
                silent_poison: 0,
            },
        ];
        let mut kinds: Vec<&str> = events.iter().map(|e| e.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), events.len());
    }

    #[test]
    fn layer_names_are_unique() {
        let layers = [
            Layer::Host,
            Layer::Cache,
            Layer::Flash,
            Layer::Ftl,
            Layer::Power,
            Layer::Recovery,
            Layer::Fleet,
            Layer::App,
        ];
        let mut names: Vec<&str> = layers.iter().map(|l| l.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), layers.len());
    }
}
