//! Cross-layer observability for the power-fault platform.
//!
//! The paper's testbed is at heart an *observability* rig: every IO is
//! checksummed, `blktrace` records the host queue, and a modified `btt`
//! classifies what the drive did wrong. This crate extends that idea
//! below the host boundary: each layer of the simulated device (cache,
//! flash, FTL, power, recovery) emits typed [`ProbeEvent`]s into a
//! [`ProbeLog`] tagged with simulated time, the host request id, and the
//! fault-site span that produced them.
//!
//! Three consumers sit on top of the raw records:
//!
//! * [`Metrics`] — per-trial counters plus fixed log2-bucket latency
//!   histograms ([`Log2Histogram`]). Everything is integer-valued and
//!   derived only from simulated time, so same-seed reruns produce
//!   byte-identical metrics.
//! * [`jsonl`] — a blkparse-style JSON-lines export (one record per
//!   line, fixed key order) consumable by the `blkdump` binary and any
//!   external tooling.
//! * campaign aggregation (in `pfault-platform`) — per-failure-class
//!   roll-ups merged into `CampaignReport`.
//!
//! Recording is **off by default and free when off**: every emit path
//! checks a single `bool` and returns before constructing the event
//! (use [`ProbeLog::emit_with`] on hot paths so argument evaluation is
//! skipped too). The `obs_overhead` benchmark in `pfault-bench` holds
//! the disabled path to within noise of the pre-probe baseline.

pub mod event;
pub mod jsonl;
pub mod metrics;
pub mod probe;

pub use event::{Layer, ProbeEvent, ProgramKind, RecoveryStepKind};
pub use jsonl::{
    parse_jsonl_line, render_metrics_jsonl, render_record, render_records, ParsedProbeLine,
};
pub use metrics::{Log2Histogram, Metrics};
pub use probe::{ProbeLog, ProbeRecord};
