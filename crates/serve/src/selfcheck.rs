//! The `serve` experiment: an end-to-end, self-checking exercise of the
//! daemon's whole robustness story inside one process.
//!
//! The narrative mirrors the paper's methodology, one level up: instead
//! of cutting power to a simulated SSD mid-write, we "cut power" to the
//! *campaign daemon* mid-campaign and check the same three properties
//! the platform checks of its firmware — nothing acknowledged is lost,
//! nothing is double-applied, and recovery converges to the exact state
//! an uninterrupted run would have reached:
//!
//! 1. **byte-identical resume** — a daemon killed mid-job and restarted
//!    over the same spool finishes the job with a final report equal,
//!    byte for byte, to an uninterrupted local run of the same spec;
//! 2. **exactly-once delivery** — a client that saw the first events,
//!    lost its daemon, and reattached to the restarted one observes a
//!    dense, gap-free, duplicate-free sequence;
//! 3. **clean failure edges** — garbage on the wire gets a protocol
//!    error (never a panic, never a wedged daemon), a full queue gets
//!    `Busy`, a draining daemon gets `Rejected`, and shutdown closes
//!    the socket only after in-flight work has checkpointed.

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::io::Write as _;

use pfault_platform::experiments::{Experiment, ExperimentCtx, ExperimentReport};
use pfault_platform::PlatformError;

use crate::client::Client;
use crate::daemon::{campaign_for, Daemon, DaemonConfig};
use crate::proto::{JobSpec, Request, Response};

/// The `serve` experiment (excluded from `--exp all`: it spins up real
/// sockets and threads, which is smoke-test work, not figure work).
pub fn experiment() -> &'static dyn Experiment {
    static EXP: ServeExperiment = ServeExperiment;
    &EXP
}

struct ServeExperiment;

impl Experiment for ServeExperiment {
    fn name(&self) -> &'static str {
        "serve"
    }

    fn describe(&self) -> &'static str {
        "campaign daemon: kill/restart resume, exactly-once streams, backpressure, drain"
    }

    fn in_all(&self) -> bool {
        false
    }

    fn run(&self, ctx: &ExperimentCtx) -> Result<ExperimentReport, PlatformError> {
        let outcome = run_selfcheck(ctx.seed);
        let mut text = String::new();
        let _ = writeln!(text, "== Extension O: campaign-as-a-service ==");
        for line in &outcome.log {
            let _ = writeln!(text, "  {line}");
        }
        if outcome.failures.is_empty() {
            let _ = writeln!(text, "  all daemon self-checks passed");
        }
        text.push('\n');
        let json = serde_json::to_value(&outcome.summary)
            .unwrap_or(serde_json::Value::Null);
        Ok(ExperimentReport {
            text,
            json_key: "serve",
            json,
            check_failures: outcome.failures,
        })
    }
}

/// Machine-readable results. Deterministic by construction: no ports,
/// no timings, no thread counts — only protocol-visible facts that the
/// durability design pins down exactly.
#[derive(Debug, serde::Serialize)]
struct ServeSummary {
    seed: u64,
    trials: u64,
    events_before_kill: u64,
    resumed_report_matches_reference: bool,
    exactly_once: bool,
    busy_observed: bool,
    rejected_while_draining: bool,
    garbage_rejected_cleanly: bool,
    drain_left_resumable_checkpoint: bool,
    adaptive_report_matches_local_plan: bool,
    adaptive_convergence_reported: bool,
}

struct Outcome {
    summary: ServeSummary,
    log: Vec<String>,
    failures: Vec<String>,
}

fn scratch_dir(name: &str, seed: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pfault-serve-{name}-{seed}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fail(failures: &mut Vec<String>, msg: impl Into<String>) {
    failures.push(msg.into());
}

fn run_selfcheck(seed: u64) -> Outcome {
    let mut log = Vec::new();
    let mut failures = Vec::new();

    let spec = JobSpec::tiny_campaign(seed);
    let trials = spec.trials;

    // -- Reference: the same spec run locally, uninterrupted. ---------
    let reference = campaign_for(&spec)
        .map_err(|e| e.to_string())
        .and_then(|c| c.run_checked().map_err(|e| e.to_string()))
        .and_then(|r| serde_json::to_string(&r).map_err(|e| e.to_string()));
    let reference = match reference {
        Ok(json) => json,
        Err(e) => {
            fail(&mut failures, format!("reference run failed: {e}"));
            return Outcome {
                summary: ServeSummary {
                    seed,
                    trials,
                    events_before_kill: 0,
                    resumed_report_matches_reference: false,
                    exactly_once: false,
                    busy_observed: false,
                    rejected_while_draining: false,
                    garbage_rejected_cleanly: false,
                    drain_left_resumable_checkpoint: false,
                    adaptive_report_matches_local_plan: false,
                    adaptive_convergence_reported: false,
                },
                log,
                failures,
            };
        }
    };
    log.push(format!(
        "reference run: {trials} trials, report of {} bytes",
        reference.len()
    ));

    // -- Phase 1: daemon A takes the job and dies mid-run. ------------
    let spool = scratch_dir("spool", seed);
    let mut events_before_kill = 0u64;
    let mut seen_seqs: BTreeSet<u64> = BTreeSet::new();
    let mut job_id = 0u64;
    match Daemon::start(DaemonConfig::new(&spool)) {
        Ok(daemon) => {
            let addr = daemon.local_addr().to_string();
            match Client::connect(&addr, 5_000) {
                Ok(mut client) => {
                    match client.submit(&spec) {
                        Ok(Some(id)) => {
                            job_id = id;
                            match client.attach(id, 0) {
                                Ok(stream) => {
                                    for event in stream.take(2).flatten() {
                                        seen_seqs.insert(event.seq);
                                        events_before_kill += 1;
                                    }
                                }
                                Err(e) => fail(&mut failures, format!("attach failed: {e}")),
                            }
                        }
                        Ok(None) => fail(&mut failures, "fresh daemon answered Busy".to_string()),
                        Err(e) => fail(&mut failures, format!("submit failed: {e}")),
                    }
                }
                Err(e) => fail(&mut failures, format!("connect to daemon A failed: {e}")),
            }
            // Power cut: the client's stream dies with the daemon.
            daemon.kill();
        }
        Err(e) => fail(&mut failures, format!("daemon A failed to start: {e}")),
    }
    if events_before_kill == 0 {
        fail(
            &mut failures,
            "no progress events observed before the kill".to_string(),
        );
    }
    log.push(format!(
        "daemon A killed after streaming {events_before_kill} progress events"
    ));

    // -- Phase 2: daemon B over the same spool resumes and finishes. --
    let mut resumed_matches = false;
    let mut exactly_once = false;
    match Daemon::start(DaemonConfig::new(&spool)) {
        Ok(daemon) => {
            let addr = daemon.local_addr().to_string();
            let from_seq = seen_seqs.last().map_or(0, |s| s + 1);
            match Client::connect_backoff(&addr, 10_000, 5, 10, seed) {
                Ok(mut client) => match client.attach(job_id, from_seq) {
                    Ok(stream) => {
                        let mut done_body = None;
                        for event in stream {
                            match event {
                                Ok(e) => {
                                    if !seen_seqs.insert(e.seq) {
                                        fail(
                                            &mut failures,
                                            format!("duplicate event seq {}", e.seq),
                                        );
                                    }
                                    if e.kind == "done" {
                                        done_body = Some(e.body);
                                    } else if e.kind == "failed" {
                                        fail(
                                            &mut failures,
                                            format!("resumed job failed: {}", e.body),
                                        );
                                    }
                                }
                                Err(e) => {
                                    fail(&mut failures, format!("resumed stream broke: {e}"));
                                    break;
                                }
                            }
                        }
                        // Exactly-once: the union of both attaches is
                        // dense 0..n with a terminal record.
                        let n = seen_seqs.len() as u64;
                        exactly_once = n > 0
                            && seen_seqs.iter().copied().eq(0..n)
                            && done_body.is_some();
                        if !exactly_once {
                            fail(
                                &mut failures,
                                format!("event seqs not dense exactly-once: {seen_seqs:?}"),
                            );
                        }
                        match done_body {
                            Some(body) if body == reference => resumed_matches = true,
                            Some(body) => fail(
                                &mut failures,
                                format!(
                                    "resumed report differs from reference ({} vs {} bytes)",
                                    body.len(),
                                    reference.len()
                                ),
                            ),
                            None => fail(&mut failures, "no done event after resume".to_string()),
                        }
                    }
                    Err(e) => fail(&mut failures, format!("reattach failed: {e}")),
                },
                Err(e) => fail(&mut failures, format!("reconnect to daemon B failed: {e}")),
            }

            // Status must list the job as done; metrics must serve
            // parseable JSONL (the job ran with obs enabled).
            if let Ok(mut client) = Client::connect(&addr, 5_000) {
                match client.call(&Request::Status) {
                    Ok(Response::JobList { jobs }) => {
                        let row = jobs.iter().find(|j| j.job == job_id);
                        if !row.is_some_and(|j| j.state == "done" && j.completed == trials) {
                            fail(&mut failures, format!("status row wrong: {row:?}"));
                        }
                    }
                    other => fail(&mut failures, format!("status reply wrong: {other:?}")),
                }
                match client.call(&Request::Metrics { job: job_id }) {
                    Ok(Response::MetricsSnapshot { jsonl, .. }) => {
                        let parses = !jsonl.is_empty()
                            && jsonl.lines().all(|l| {
                                serde_json::from_str::<serde_json::Value>(l).is_ok()
                            })
                            && jsonl.contains("\"counter\"");
                        if !parses {
                            fail(
                                &mut failures,
                                format!("metrics jsonl unusable: {:?}…", jsonl.get(..60)),
                            );
                        }
                    }
                    other => fail(&mut failures, format!("metrics reply wrong: {other:?}")),
                }
            }

            // Garbage on the wire: clean protocol error, daemon lives.
            let mut garbage_rejected_cleanly = false;
            if let Ok(mut raw) = std::net::TcpStream::connect(&addr) {
                let _ = raw.write_all(b"GET / HTTP/1.1\r\n\r\n");
                let _ = raw.flush();
                let _ = raw.set_read_timeout(Some(std::time::Duration::from_millis(2_000)));
                match crate::frame::read_frame(&mut raw) {
                    Ok(payload) => {
                        garbage_rejected_cleanly = matches!(
                            crate::proto::decode_message::<Response>(&payload),
                            Ok(Response::Error { .. })
                        );
                    }
                    Err(_) => {
                        // Also acceptable: the daemon just hung up.
                        garbage_rejected_cleanly = true;
                    }
                }
            }
            let still_alive = Client::connect(&addr, 5_000)
                .and_then(|mut c| c.call(&Request::Ping))
                .is_ok_and(|r| r == Response::Pong);
            if !(garbage_rejected_cleanly && still_alive) {
                fail(
                    &mut failures,
                    "garbage connection was not handled cleanly".to_string(),
                );
            }
            daemon.kill();

            let summary_part = (garbage_rejected_cleanly, still_alive);
            log.push(format!(
                "daemon B: resume matched reference = {resumed_matches}, exactly-once = {exactly_once}, garbage handled = {:?}",
                summary_part
            ));
        }
        Err(e) => fail(&mut failures, format!("daemon B failed to start: {e}")),
    }

    // -- Phase 3: backpressure and drain-then-exit. -------------------
    let spool_c = scratch_dir("drain", seed);
    let mut busy_observed = false;
    let mut rejected_while_draining = false;
    let mut drain_left_resumable_checkpoint = false;
    let mut config = DaemonConfig::new(&spool_c);
    config.workers = 1;
    config.queue_capacity = 1;
    match Daemon::start(config) {
        Ok(daemon) => {
            let addr = daemon.local_addr().to_string();
            if let Ok(mut client) = Client::connect(&addr, 5_000) {
                // A long job ties up the one worker...
                let mut long = JobSpec::tiny_campaign(seed ^ 1);
                long.trials = 400;
                long.checkpoint_every = 1;
                let running = client.submit(&long);
                // Wait until the worker has actually picked it up —
                // draining before then would leave it queued (durable,
                // but checkpoint-less) and void the resumable-ckpt
                // check below.
                for _ in 0..500 {
                    if daemon.active_jobs() > 0 {
                        break;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
                // ...so repeated quick submissions must eventually hit
                // the queue bound and answer Busy.
                for i in 0..50 {
                    match client.submit(&JobSpec::tiny_campaign(seed ^ (i + 2))) {
                        Ok(Some(_)) => continue,
                        Ok(None) => {
                            busy_observed = true;
                            break;
                        }
                        Err(e) => {
                            fail(&mut failures, format!("submit under load failed: {e}"));
                            break;
                        }
                    }
                }
                if running.is_err() || !busy_observed {
                    fail(
                        &mut failures,
                        format!("bounded queue never answered Busy (long job: {running:?})"),
                    );
                }
                // Graceful drain: the daemon acks, then refuses work.
                match client.call(&Request::Shutdown) {
                    Ok(Response::ShuttingDown) => {}
                    other => fail(&mut failures, format!("shutdown reply wrong: {other:?}")),
                }
                rejected_while_draining = matches!(
                    client.submit(&JobSpec::tiny_campaign(seed ^ 99)),
                    Err(crate::client::ClientError::Daemon(_))
                );
                if !rejected_while_draining {
                    fail(
                        &mut failures,
                        "submit during drain was not Rejected".to_string(),
                    );
                }
            }
            // Drain completes: in-flight work checkpointed, socket
            // closed last.
            daemon.join();
            let spool = crate::spool::Spool::open(&spool_c).expect("spool reopens");
            drain_left_resumable_checkpoint =
                spool.jobs().iter().any(|&j| spool.has_checkpoint(j));
            if !drain_left_resumable_checkpoint {
                fail(
                    &mut failures,
                    "drain left no resumable checkpoint behind".to_string(),
                );
            }
            if std::net::TcpStream::connect(&addr).is_ok() {
                fail(
                    &mut failures,
                    "socket still accepting after drain".to_string(),
                );
            }
        }
        Err(e) => fail(&mut failures, format!("daemon C failed to start: {e}")),
    }
    log.push(format!(
        "drain: busy = {busy_observed}, rejected-during-drain = {rejected_while_draining}, resumable ckpt = {drain_left_resumable_checkpoint}"
    ));

    // -- Phase 4: an adaptive (planned) job end-to-end. ---------------
    // Same spec, two runners: the daemon's planned path must land on
    // the same bytes as a local `run_planned`, and the status row must
    // surface the planner's convergence line.
    let spool_p = scratch_dir("plan", seed);
    let mut adaptive_matches = false;
    let mut adaptive_convergence = false;
    let adaptive_spec = JobSpec::tiny_adaptive(seed ^ 7);
    let adaptive_reference = campaign_for(&adaptive_spec)
        .and_then(|c| c.run_planned().map_err(|e| e.to_string()))
        .and_then(|r| serde_json::to_string(&r).map_err(|e| e.to_string()));
    match (adaptive_reference, Daemon::start(DaemonConfig::new(&spool_p))) {
        (Ok(reference), Ok(daemon)) => {
            let addr = daemon.local_addr().to_string();
            if let Ok(mut client) = Client::connect(&addr, 5_000) {
                match client.submit(&adaptive_spec) {
                    Ok(Some(id)) => match client.attach(id, 0) {
                        Ok(stream) => {
                            let mut done_body = None;
                            for event in stream.flatten() {
                                if event.kind == "done" {
                                    done_body = Some(event.body);
                                } else if event.kind == "failed" {
                                    fail(
                                        &mut failures,
                                        format!("adaptive job failed: {}", event.body),
                                    );
                                }
                            }
                            adaptive_matches = done_body.as_deref() == Some(reference.as_str());
                            if !adaptive_matches {
                                fail(
                                    &mut failures,
                                    "adaptive report differs from local run_planned".to_string(),
                                );
                            }
                        }
                        Err(e) => fail(&mut failures, format!("adaptive attach failed: {e}")),
                    },
                    Ok(None) => fail(&mut failures, "adaptive submit answered Busy".to_string()),
                    Err(e) => fail(&mut failures, format!("adaptive submit failed: {e}")),
                }
                match client.call(&Request::Status) {
                    Ok(Response::JobList { jobs }) => {
                        adaptive_convergence = jobs
                            .iter()
                            .any(|j| j.state == "done" && j.convergence.ends_with("done"));
                        if !adaptive_convergence {
                            fail(
                                &mut failures,
                                "adaptive status row carried no convergence line".to_string(),
                            );
                        }
                    }
                    other => fail(&mut failures, format!("adaptive status reply wrong: {other:?}")),
                }
            }
            daemon.kill();
        }
        (Err(e), _) => fail(&mut failures, format!("local run_planned failed: {e}")),
        (_, Err(e)) => fail(&mut failures, format!("daemon D failed to start: {e}")),
    }
    log.push(format!(
        "adaptive: matched local run_planned = {adaptive_matches}, convergence line = {adaptive_convergence}"
    ));

    let _ = std::fs::remove_dir_all(&spool);
    let _ = std::fs::remove_dir_all(&spool_c);
    let _ = std::fs::remove_dir_all(&spool_p);

    Outcome {
        summary: ServeSummary {
            seed,
            trials,
            events_before_kill,
            resumed_report_matches_reference: resumed_matches,
            exactly_once,
            busy_observed,
            rejected_while_draining,
            garbage_rejected_cleanly: failures
                .iter()
                .all(|f| !f.contains("garbage connection")),
            drain_left_resumable_checkpoint,
            adaptive_report_matches_local_plan: adaptive_matches,
            adaptive_convergence_reported: adaptive_convergence,
        },
        log,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_selfcheck_passes_end_to_end() {
        let outcome = run_selfcheck(11);
        assert!(
            outcome.failures.is_empty(),
            "serve self-checks failed:\n{}",
            outcome.failures.join("\n")
        );
        assert!(outcome.summary.resumed_report_matches_reference);
        assert!(outcome.summary.exactly_once);
        assert!(outcome.summary.busy_observed);
        assert!(outcome.summary.adaptive_report_matches_local_plan);
        assert!(outcome.summary.adaptive_convergence_reported);
    }
}
