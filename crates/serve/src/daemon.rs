//! The campaign daemon: a std-only TCP service running durable
//! fault-injection jobs.
//!
//! # Robustness model
//!
//! * **Backpressure, never buffering** — the pending-job queue is
//!   bounded; a full queue answers [`Response::Busy`] and spools
//!   nothing. Restart recovery is the one exception: every unfinished
//!   spooled job re-enters the queue regardless of the bound, because
//!   durability promises already made outrank admission control.
//! * **Deadlines everywhere** — each connection carries read/write
//!   timeouts; attach streams interleave [`Response::Heartbeat`]s so an
//!   idle-but-alive stream never trips the client's deadline, and a
//!   connection idle past its budget is closed.
//! * **Per-job supervision** — jobs run through the platform campaign
//!   engine, so trial panics are caught (`catch_unwind`), hung trials
//!   hit watchdog budgets, and a poisoned snapshot-cache lock recovers;
//!   one bad trial cannot take the daemon down.
//! * **Durability** — specs before acks, checkpoints before progress
//!   events, final reports before done events (see [`crate::spool`]).
//!   [`Daemon::kill`] (or just dropping the daemon) stops abruptly:
//!   restartin over the same spool resumes every in-flight job
//!   byte-identically.
//! * **Drain-then-exit** — [`Request::Shutdown`] stops admissions
//!   (`Rejected`), pauses in-flight jobs at their next trial boundary
//!   with a durable checkpoint, lets streams say
//!   [`Response::ShuttingDown`], and closes the listening socket last.

use std::collections::{BTreeMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use pfault_platform::campaign::{Campaign, CampaignConfig, CampaignProgress, ProgressSignal};
use pfault_platform::experiments::{self, ExperimentCtx, ExperimentOpts, ExperimentScale};
use pfault_platform::plan::PlanSpec;
use pfault_platform::{snapcache, ObsAggregate};
use pfault_sim::checksum::fnv64;

use crate::frame::{read_frame, FrameError};
use crate::proto::{decode_message, encode_message, JobEvent, JobInfo, JobSpec, Request, Response};
use crate::spool::Spool;

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Listen address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Spool directory for durable job state.
    pub spool_dir: PathBuf,
    /// Job-runner worker threads.
    pub workers: usize,
    /// Bound on the pending-job queue (admission control).
    pub queue_capacity: usize,
    /// Idle gap before an attach stream emits a heartbeat.
    pub heartbeat_ms: u64,
    /// Per-connection read/write deadline.
    pub io_timeout_ms: u64,
    /// Default trials-between-checkpoints for campaign jobs whose spec
    /// leaves `checkpoint_every` at 0.
    pub checkpoint_every: u64,
}

impl DaemonConfig {
    /// Defaults: loopback ephemeral port, 2 workers, queue of 8,
    /// 250 ms heartbeats, 2 s deadlines, checkpoint every 5 trials.
    pub fn new(spool_dir: impl Into<PathBuf>) -> DaemonConfig {
        DaemonConfig {
            addr: "127.0.0.1:0".to_string(),
            spool_dir: spool_dir.into(),
            workers: 2,
            queue_capacity: 8,
            heartbeat_ms: 250,
            io_timeout_ms: 2_000,
            checkpoint_every: 5,
        }
    }
}

/// Live (in-memory) view of one job; the durable truth is the spool.
#[derive(Debug, Clone)]
struct JobStatus {
    state: String,
    completed: u64,
    trials: u64,
    events: u64,
    cache_hits: u64,
    cache_misses: u64,
    metrics_jsonl: String,
    convergence: String,
}

impl JobStatus {
    fn new(state: &str, trials: u64) -> JobStatus {
        JobStatus {
            state: state.to_string(),
            completed: 0,
            trials,
            events: 0,
            cache_hits: 0,
            cache_misses: 0,
            metrics_jsonl: String::new(),
            convergence: String::new(),
        }
    }
}

struct Shared {
    config: DaemonConfig,
    spool: Spool,
    queue: Mutex<VecDeque<u64>>,
    queue_cv: Condvar,
    jobs: Mutex<BTreeMap<u64, JobStatus>>,
    next_id: AtomicU64,
    draining: AtomicBool,
    killed: AtomicBool,
    accept_stop: AtomicBool,
    active_jobs: AtomicUsize,
}

/// Locks a mutex, recovering from poisoning — a connection or worker
/// thread that died must never wedge the rest of the daemon.
fn lock_rec<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Shared {
    fn stopping(&self) -> bool {
        self.draining.load(Ordering::SeqCst) || self.killed.load(Ordering::SeqCst)
    }

    fn killed(&self) -> bool {
        self.killed.load(Ordering::SeqCst)
    }

    fn update_job(&self, id: u64, f: impl FnOnce(&mut JobStatus)) {
        let mut jobs = lock_rec(&self.jobs);
        let entry = jobs.entry(id).or_insert_with(|| JobStatus::new("queued", 0));
        f(entry);
    }
}

/// A running daemon. Dropping it is an abrupt in-process kill (the
/// crash-resume tests literally drop it mid-campaign); [`Daemon::join`]
/// is the graceful foreground mode that drains on `Shutdown`.
pub struct Daemon {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl Daemon {
    /// Binds, recovers the spool (unfinished jobs re-enter the queue;
    /// finished jobs get any missing `done` journal record appended),
    /// and starts the accept loop plus worker pool.
    pub fn start(config: DaemonConfig) -> std::io::Result<Daemon> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let spool = Spool::open(&config.spool_dir)?;
        let shared = Arc::new(Shared {
            next_id: AtomicU64::new(spool.next_job_id()),
            spool,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            jobs: Mutex::new(BTreeMap::new()),
            draining: AtomicBool::new(false),
            killed: AtomicBool::new(false),
            accept_stop: AtomicBool::new(false),
            active_jobs: AtomicUsize::new(0),
            config,
        });
        recover_spool(&shared)?;
        let workers = (0..shared.config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> = Arc::default();
        let accept = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || accept_loop(&shared, listener, &conns))
        };
        Ok(Daemon {
            shared,
            addr,
            accept: Some(accept),
            workers,
            conns,
        })
    }

    /// The bound address (port 0 resolves here).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Abrupt in-process kill: stop running trials at the next
    /// boundary, abandon the queue, close everything. The spool is left
    /// exactly as a crash would leave it; a daemon restarted over it
    /// resumes every job byte-identically.
    pub fn kill(mut self) {
        self.shared.killed.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
        self.teardown();
    }

    /// Foreground mode: blocks until a client's `Shutdown` request (or
    /// a kill) starts the drain, then finishes it — in-flight jobs
    /// checkpoint and pause, the queue stays spooled for the next
    /// start, streams are told `ShuttingDown`, and the listening socket
    /// closes last.
    pub fn join(mut self) {
        while !self.shared.stopping() {
            std::thread::sleep(Duration::from_millis(20));
        }
        self.teardown();
    }

    /// Starts the drain without a client (used by harnesses).
    pub fn request_shutdown(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
    }

    /// Jobs currently executing (not queued, not finished).
    pub fn active_jobs(&self) -> usize {
        self.shared.active_jobs.load(Ordering::SeqCst)
    }

    fn teardown(&mut self) {
        // Order matters: workers first (jobs checkpoint and pause),
        // connection threads next (streams flush their ShuttingDown),
        // the accept thread — and with it the listening socket — last.
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        loop {
            let handle = lock_rec(&self.conns).pop();
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
        self.shared.accept_stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.shared.killed.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
        self.teardown();
    }
}

/// Startup recovery: reconcile every spooled job's journal with its
/// durable state and re-queue the unfinished ones.
fn recover_spool(shared: &Arc<Shared>) -> std::io::Result<()> {
    for id in shared.spool.jobs() {
        let Ok(spec) = shared.spool.read_spec(id) else {
            continue;
        };
        if let Some(done_json) = shared.spool.read_done(id) {
            let total = done_totals(&spec, &done_json);
            let events = shared.spool.reconcile_events(id, total, None)?;
            shared.update_job(id, |j| {
                j.state = "done".to_string();
                j.trials = total;
                j.completed = total;
                j.events = events;
            });
            continue;
        }
        shared.update_job(id, |j| {
            j.state = "queued".to_string();
            j.trials = spec.trials;
        });
        // Durability outranks admission control: recovered jobs bypass
        // the queue bound.
        lock_rec(&shared.queue).push_back(id);
        shared.queue_cv.notify_all();
    }
    Ok(())
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut queue = lock_rec(&shared.queue);
            loop {
                if shared.stopping() {
                    return;
                }
                if let Some(id) = queue.pop_front() {
                    break id;
                }
                let (guard, _) = shared
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(200))
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                queue = guard;
            }
        };
        shared.active_jobs.fetch_add(1, Ordering::SeqCst);
        run_job(shared, job);
        shared.active_jobs.fetch_sub(1, Ordering::SeqCst);
    }
}

fn run_job(shared: &Arc<Shared>, id: u64) {
    let spec = match shared.spool.read_spec(id) {
        Ok(spec) => spec,
        Err(e) => {
            shared.update_job(id, |j| j.state = format!("failed: unreadable spec ({e})"));
            return;
        }
    };
    shared.update_job(id, |j| {
        j.state = "running".to_string();
        j.trials = spec.trials;
    });
    // Scoped snapshot-cache stats: the job's report attributes only its
    // own hits/misses, not the daemon's cumulative drift.
    let scope = snapcache::scope();
    let outcome = if spec.exp == "campaign" {
        run_campaign_job(shared, id, &spec)
    } else {
        run_registry_job(shared, id, &spec)
    };
    let cache = scope.delta();
    shared.update_job(id, |j| {
        j.cache_hits = cache.hits;
        j.cache_misses = cache.misses;
        match &outcome {
            Ok(true) => j.state = "done".to_string(),
            Ok(false) => j.state = "paused".to_string(),
            Err(reason) => j.state = format!("failed: {reason}"),
        }
    });
    if let Err(reason) = outcome {
        let seq = shared.spool.read_events(id).len() as u64;
        let _ = shared.spool.append_event(&JobEvent {
            job: id,
            seq,
            kind: "failed".to_string(),
            completed: 0,
            trials: spec.trials,
            digest: 0,
            body: reason,
        });
        shared.update_job(id, |j| j.events = seq + 1);
    }
}

/// Builds the campaign a spec describes. Pure: the daemon, the restart
/// path, and the self-check's reference run all call this, which is
/// what makes "byte-identical" meaningful.
pub fn campaign_for(spec: &JobSpec) -> Result<Campaign, String> {
    let mut config = CampaignConfig::paper_default();
    match spec.profile.as_str() {
        "paper" => {}
        "tiny" => {
            config.trial.ssd.geometry = pfault_flash::FlashGeometry::new(1 << 14, 256);
            config.trial.ssd.ftl = pfault_ftl::FtlConfig::for_geometry(config.trial.ssd.geometry);
            config.trial.workload = pfault_workload::WorkloadSpec::builder()
                .wss_bytes(4 * pfault_sim::storage::GIB)
                .build();
        }
        other => return Err(format!("unknown profile '{other}' (tiny|paper)")),
    }
    match &spec.plan {
        // The plan is the sizing surface; `trials` is only the classic
        // fallback denominator.
        Some(plan) => {
            plan.validate().map_err(|e| e.to_string())?;
            if matches!(plan, PlanSpec::Splitting { .. }) {
                return Err(
                    "splitting plans need a severity source (plan::run_plan on a PlanPoint); \
                     campaign jobs expose only pass/fail trials"
                        .to_string(),
                );
            }
        }
        None if spec.trials == 0 => {
            return Err("campaign jobs need trials >= 1 and requests_per_trial >= 1".to_string())
        }
        None => {}
    }
    if spec.requests_per_trial == 0 {
        return Err("campaign jobs need trials >= 1 and requests_per_trial >= 1".to_string());
    }
    config.trials = spec.trials as usize;
    config.requests_per_trial = spec.requests_per_trial as usize;
    config.trial.obs = spec.obs;
    if spec.warmup > 0 {
        config.trial = config.trial.with_warmup_requests(spec.warmup as usize);
    }
    let mut builder = Campaign::builder(config).seed(spec.seed);
    if let Some(plan) = &spec.plan {
        builder = builder.plan(*plan);
    }
    Ok(builder.build())
}

/// The daemon-side campaign: `campaign_for` plus the spool checkpoint.
fn spooled_campaign(shared: &Shared, id: u64, spec: &JobSpec) -> Result<Campaign, String> {
    let every = if spec.checkpoint_every > 0 {
        spec.checkpoint_every
    } else {
        shared.config.checkpoint_every
    };
    Ok(campaign_for(spec)?.with_checkpoint(shared.spool.checkpoint_path(id), every))
}

/// Trial totals of a finished job: the spec's count for classic jobs,
/// the report's absorbed-fault count for adaptive ones — the planner,
/// not the spec, decided when the run was done.
fn done_totals(spec: &JobSpec, report_json: &str) -> u64 {
    if spec.plan.is_none() {
        return spec.trials;
    }
    serde_json::from_str::<serde_json::Value>(report_json)
        .ok()
        .and_then(|v| v.as_object().and_then(|o| o.get("faults").cloned()))
        .and_then(|f| f.as_u64())
        .unwrap_or(spec.trials)
}

/// Renders a live [`ObsAggregate`] snapshot as metrics JSONL: totals
/// first, then each failure-class slice.
fn render_aggregate(agg: &ObsAggregate) -> String {
    let mut out = pfault_obs::render_metrics_jsonl("totals", &agg.totals);
    for (class, metrics) in &agg.by_class {
        out.push_str(&pfault_obs::render_metrics_jsonl(class, metrics));
    }
    out
}

/// Runs (or resumes) a durable campaign job. Returns `Ok(true)` when
/// the job finished, `Ok(false)` when it paused for a drain/kill.
fn run_campaign_job(shared: &Arc<Shared>, id: u64, spec: &JobSpec) -> Result<bool, String> {
    let spool = &shared.spool;
    // Finished before a restart: just make sure the journal agrees.
    if let Some(done_json) = spool.read_done(id) {
        let total = done_totals(spec, &done_json);
        let events = spool
            .reconcile_events(id, total, None)
            .map_err(|e| e.to_string())?;
        shared.update_job(id, |j| {
            j.completed = total;
            j.trials = total;
            j.events = events;
        });
        return Ok(true);
    }
    let campaign = spooled_campaign(shared, id, spec)?;
    let ckpt_path = spool.checkpoint_path(id);
    let resume = spool.has_checkpoint(id);
    let mut next_seq = if resume {
        // Crash window: the checkpoint may be one announcement ahead of
        // the journal. Re-synthesize the missing record from the
        // checkpoint itself before streaming anything new.
        let (completed, report) = campaign
            .checkpoint_snapshot(&ckpt_path)
            .map_err(|e| e.to_string())?;
        let report_json = serde_json::to_string(&report).map_err(|e| e.to_string())?;
        spool
            .reconcile_events(id, spec.trials, Some((completed, &report_json)))
            .map_err(|e| e.to_string())?
    } else {
        spool.clear_events(id).map_err(|e| e.to_string())?;
        0
    };
    shared.update_job(id, |j| j.events = next_seq);

    let mut observer = |p: CampaignProgress<'_>| {
        if p.checkpointed {
            let journaled = serde_json::to_string(p.report).ok().map(|report_json| {
                shared.spool.append_event(&JobEvent {
                    job: id,
                    seq: next_seq,
                    kind: "progress".to_string(),
                    completed: p.completed,
                    trials: p.trials,
                    digest: fnv64(report_json.as_bytes()),
                    body: String::new(),
                })
            });
            if matches!(journaled, Some(Ok(()))) {
                next_seq += 1;
            }
        }
        let metrics = (p.checkpointed && !p.report.obs.is_empty())
            .then(|| render_aggregate(&p.report.obs));
        let convergence = p.report.plan.as_ref().map(|s| s.progress_line());
        let seq_now = next_seq;
        let trials_now = p.trials;
        shared.update_job(id, |j| {
            j.completed = p.completed;
            j.trials = trials_now;
            j.events = seq_now;
            if let Some(m) = metrics {
                j.metrics_jsonl = m;
            }
            if let Some(c) = convergence {
                j.convergence = c;
            }
        });
        if shared.stopping() {
            ProgressSignal::Pause
        } else {
            ProgressSignal::Continue
        }
    };
    // The plan field picks the engine: planned jobs run (and resume)
    // through the planner so round extension and convergence stopping
    // replay byte-identically across daemon restarts.
    let run = if spec.plan.is_some() {
        if resume {
            campaign.resume_planned_observed(&ckpt_path, &mut observer)
        } else {
            campaign.run_planned_observed(&mut observer)
        }
    } else if resume {
        campaign.resume_observed(&ckpt_path, &mut observer)
    } else {
        campaign.run_observed(&mut observer)
    }
    .map_err(|e| e.to_string())?;

    if run.paused {
        return Ok(false);
    }
    let report_json = serde_json::to_string(&run.report).map_err(|e| e.to_string())?;
    spool.write_done(id, &report_json).map_err(|e| e.to_string())?;
    let total = if spec.plan.is_some() {
        run.completed
    } else {
        spec.trials
    };
    spool
        .append_event(&JobEvent {
            job: id,
            seq: next_seq,
            kind: "done".to_string(),
            completed: run.completed,
            trials: total,
            digest: fnv64(report_json.as_bytes()),
            body: report_json,
        })
        .map_err(|e| e.to_string())?;
    let metrics = (!run.report.obs.is_empty()).then(|| render_aggregate(&run.report.obs));
    let convergence = run.report.plan.as_ref().map(|s| s.progress_line());
    shared.update_job(id, |j| {
        j.completed = run.completed;
        j.trials = total;
        j.events = next_seq + 1;
        if let Some(m) = metrics {
            j.metrics_jsonl = m;
        }
        if let Some(c) = convergence {
            j.convergence = c;
        }
    });
    Ok(true)
}

/// Runs a registry experiment job. Not checkpointable mid-run, but
/// deterministic: a restart simply reruns it from the spec and lands on
/// the same bytes.
fn run_registry_job(shared: &Arc<Shared>, id: u64, spec: &JobSpec) -> Result<bool, String> {
    let spool = &shared.spool;
    if spool.read_done(id).is_some() {
        let events = spool
            .reconcile_events(id, spec.trials, None)
            .map_err(|e| e.to_string())?;
        shared.update_job(id, |j| j.events = events);
        return Ok(true);
    }
    let Some(exp) = experiments::find(&spec.exp) else {
        return Err(format!("unknown experiment '{}'", spec.exp));
    };
    let ctx = ExperimentCtx {
        scale: ExperimentScale::quick(),
        seed: spec.seed,
        opts: ExperimentOpts::default(),
    };
    let report = exp.run(&ctx).map_err(|e| e.to_string())?;
    let report_json = serde_json::to_string(&report.json).map_err(|e| e.to_string())?;
    spool.clear_events(id).map_err(|e| e.to_string())?;
    spool.write_done(id, &report_json).map_err(|e| e.to_string())?;
    spool
        .append_event(&JobEvent {
            job: id,
            seq: 0,
            kind: "done".to_string(),
            completed: spec.trials,
            trials: spec.trials,
            digest: fnv64(report_json.as_bytes()),
            body: report_json,
        })
        .map_err(|e| e.to_string())?;
    shared.update_job(id, |j| j.events = 1);
    Ok(true)
}

fn accept_loop(
    shared: &Arc<Shared>,
    listener: TcpListener,
    conns: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    while !shared.killed() && !shared.accept_stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                let handle = std::thread::spawn(move || handle_conn(&shared, stream));
                lock_rec(conns).push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    // The listener drops here — after workers and streams wound down,
    // the socket closes last.
}

fn send(stream: &mut TcpStream, resp: &Response) -> Result<(), FrameError> {
    let frame = encode_message(resp)?;
    stream.write_all_frame(&frame)
}

/// Tiny extension so `send` stays one call: write + flush via the
/// frame layer's error type.
trait WriteFrameExt {
    fn write_all_frame(&mut self, frame: &[u8]) -> Result<(), FrameError>;
}

impl WriteFrameExt for TcpStream {
    fn write_all_frame(&mut self, frame: &[u8]) -> Result<(), FrameError> {
        use std::io::Write as _;
        self.write_all(frame)?;
        self.flush()?;
        Ok(())
    }
}

fn handle_conn(shared: &Arc<Shared>, mut stream: TcpStream) {
    let timeout = Duration::from_millis(shared.config.io_timeout_ms.max(50));
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    let mut idle_strikes = 0u32;
    loop {
        match read_frame(&mut stream) {
            Ok(payload) => {
                idle_strikes = 0;
                match decode_message::<Request>(&payload) {
                    Ok(request) => {
                        if !handle_request(shared, &mut stream, request) {
                            return;
                        }
                    }
                    Err(reason) => {
                        // Intact frame, malformed message: report and
                        // keep the connection — the transport is fine.
                        if send(&mut stream, &Response::Error { reason }).is_err() {
                            return;
                        }
                    }
                }
            }
            Err(FrameError::Closed) => return,
            Err(e) if e.is_timeout() => {
                idle_strikes += 1;
                // Deadline discipline: one idle grace period, then the
                // connection is presumed abandoned.
                if idle_strikes > 1 || shared.stopping() {
                    return;
                }
            }
            Err(e) => {
                // Torn or corrupted frame: a clean protocol error, then
                // close — resync inside a byte stream is impossible.
                let _ = send(
                    &mut stream,
                    &Response::Error {
                        reason: e.to_string(),
                    },
                );
                return;
            }
        }
    }
}

/// Handles one request; `false` closes the connection.
fn handle_request(shared: &Arc<Shared>, stream: &mut TcpStream, request: Request) -> bool {
    match request {
        Request::Ping => send(stream, &Response::Pong).is_ok(),
        Request::Submit { spec } => {
            let resp = submit(shared, &spec);
            send(stream, &resp).is_ok()
        }
        Request::Attach { job, from_seq } => attach(shared, stream, job, from_seq),
        Request::Status => {
            let resp = Response::JobList {
                jobs: status_rows(shared),
            };
            send(stream, &resp).is_ok()
        }
        Request::Metrics { job } => {
            let jobs = lock_rec(&shared.jobs);
            let resp = match jobs.get(&job) {
                Some(status) => Response::MetricsSnapshot {
                    job,
                    jsonl: status.metrics_jsonl.clone(),
                },
                None => Response::Error {
                    reason: format!("unknown job {job}"),
                },
            };
            drop(jobs);
            send(stream, &resp).is_ok()
        }
        Request::Shutdown => {
            shared.draining.store(true, Ordering::SeqCst);
            shared.queue_cv.notify_all();
            send(stream, &Response::ShuttingDown).is_ok()
        }
    }
}

fn submit(shared: &Arc<Shared>, spec: &JobSpec) -> Response {
    if shared.stopping() {
        return Response::Rejected {
            reason: "daemon is draining".to_string(),
        };
    }
    if spec.exp == "campaign" {
        if let Err(reason) = campaign_for(spec) {
            return Response::Rejected { reason };
        }
    } else if experiments::find(&spec.exp).is_none() {
        return Response::Rejected {
            reason: format!("unknown experiment '{}'", spec.exp),
        };
    }
    // The queue lock is held across the spec write so admission and
    // durability are one atomic step: `Accepted` is never sent for a
    // job that could be lost, and `Busy` never spools anything.
    let mut queue = lock_rec(&shared.queue);
    if queue.len() >= shared.config.queue_capacity {
        return Response::Busy {
            queued: queue.len() as u64,
            capacity: shared.config.queue_capacity as u64,
        };
    }
    let id = shared.next_id.fetch_add(1, Ordering::SeqCst);
    if let Err(e) = shared.spool.write_spec(id, spec) {
        return Response::Error {
            reason: format!("spool write failed: {e}"),
        };
    }
    shared.update_job(id, |j| {
        j.state = "queued".to_string();
        j.trials = spec.trials;
    });
    queue.push_back(id);
    drop(queue);
    shared.queue_cv.notify_all();
    Response::Accepted { job: id }
}

fn status_rows(shared: &Arc<Shared>) -> Vec<JobInfo> {
    let jobs = lock_rec(&shared.jobs);
    jobs.iter()
        .map(|(&job, s)| JobInfo {
            job,
            state: s.state.clone(),
            completed: s.completed,
            trials: s.trials,
            events: s.events,
            cache_hits: s.cache_hits,
            cache_misses: s.cache_misses,
            convergence: s.convergence.clone(),
        })
        .collect()
}

/// Streams the result journal from `from_seq`, then follows it live
/// with heartbeats until the job ends. Returns `true` when the stream
/// finished cleanly and the connection can take more requests.
fn attach(shared: &Arc<Shared>, stream: &mut TcpStream, job: u64, from_seq: u64) -> bool {
    if shared.spool.read_spec(job).is_err() {
        return send(
            stream,
            &Response::Error {
                reason: format!("unknown job {job}"),
            },
        )
        .is_ok();
    }
    let heartbeat = Duration::from_millis(shared.config.heartbeat_ms.max(10));
    let poll = Duration::from_millis(20);
    let mut next = from_seq;
    let mut last_sent = Instant::now();
    loop {
        if shared.killed() {
            let _ = send(stream, &Response::ShuttingDown);
            return false;
        }
        let events = shared.spool.read_events(job);
        for event in events {
            if event.seq < next {
                continue;
            }
            next = event.seq + 1;
            let terminal = event.kind != "progress";
            if send(stream, &Response::Event { event }).is_err() {
                return false;
            }
            last_sent = Instant::now();
            if terminal {
                return true;
            }
        }
        if shared.stopping() {
            let _ = send(stream, &Response::ShuttingDown);
            return false;
        }
        if last_sent.elapsed() >= heartbeat {
            if send(stream, &Response::Heartbeat).is_err() {
                return false;
            }
            last_sent = Instant::now();
        }
        std::thread::sleep(poll);
    }
}
