//! The daemon's durability layer: one directory, four files per job.
//!
//! ```text
//! spool/
//!   job-7.spec.json    # the JobSpec, written atomically at accept time
//!   job-7.ckpt.json    # the platform's campaign checkpoint (atomic
//!                      # tmp+rename, written by with_checkpoint)
//!   job-7.events.jsonl # append-only result journal, one JobEvent per
//!                      # line, dense seq from 0
//!   job-7.done.json    # final report JSON, written atomically when
//!                      # the job completes
//! ```
//!
//! Write ordering is the whole durability argument:
//!
//! 1. the spec is spooled **before** `Accepted` goes on the wire, so an
//!    acknowledged job survives any later crash;
//! 2. a checkpoint hits disk **before** the progress event that
//!    announces it, so the journal never promises state the checkpoint
//!    cannot reproduce — after a crash the journal is at most one
//!    record *behind* the checkpoint, and [`Spool::reconcile_events`]
//!    re-synthesizes exactly that record;
//! 3. the final report is written **before** the `done` event, with
//!    the same catch-up rule.
//!
//! The journal is read tolerantly: a torn final line (the crash landed
//! mid-append) is ignored, exactly like the simulated firmware ignores
//! a torn journal frame.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::proto::{JobEvent, JobSpec};

/// A job spool directory. Cheap to clone; all state is on disk.
#[derive(Debug, Clone)]
pub struct Spool {
    dir: PathBuf,
}

impl Spool {
    /// Opens (creating if needed) the spool at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Spool> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Spool { dir })
    }

    /// The spool directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path(&self, job: u64, suffix: &str) -> PathBuf {
        self.dir.join(format!("job-{job}.{suffix}"))
    }

    /// Path of the job's campaign checkpoint (handed to the platform's
    /// `with_checkpoint`).
    pub fn checkpoint_path(&self, job: u64) -> PathBuf {
        self.path(job, "ckpt.json")
    }

    fn events_path(&self, job: u64) -> PathBuf {
        self.path(job, "events.jsonl")
    }

    fn spec_path(&self, job: u64) -> PathBuf {
        self.path(job, "spec.json")
    }

    fn done_path(&self, job: u64) -> PathBuf {
        self.path(job, "done.json")
    }

    fn write_atomic(&self, path: &Path, text: &str) -> std::io::Result<()> {
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, text)?;
        fs::rename(&tmp, path)
    }

    /// Durably records a job spec (atomic tmp+rename). Must complete
    /// before the daemon acknowledges the submission.
    pub fn write_spec(&self, job: u64, spec: &JobSpec) -> std::io::Result<()> {
        let text = serde_json::to_string(spec)
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        self.write_atomic(&self.spec_path(job), &text)
    }

    /// Reads a job spec back.
    pub fn read_spec(&self, job: u64) -> std::io::Result<JobSpec> {
        let text = fs::read_to_string(self.spec_path(job))?;
        serde_json::from_str(&text).map_err(|e| std::io::Error::other(e.to_string()))
    }

    /// Appends one record to the job's result journal and flushes it.
    pub fn append_event(&self, event: &JobEvent) -> std::io::Result<()> {
        let mut line = serde_json::to_string(event)
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        line.push('\n');
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.events_path(event.job))?;
        f.write_all(line.as_bytes())?;
        f.flush()
    }

    /// Reads the job's result journal, keeping only complete,
    /// parseable lines — a torn tail from a crash mid-append is
    /// silently dropped (the reconcile pass rebuilds it).
    pub fn read_events(&self, job: u64) -> Vec<JobEvent> {
        let Ok(text) = fs::read_to_string(self.events_path(job)) else {
            return Vec::new();
        };
        let mut events = Vec::new();
        let complete = match text.rfind('\n') {
            Some(last) => &text[..=last],
            None => return events, // single torn line, no newline yet
        };
        for line in complete.lines() {
            match serde_json::from_str::<JobEvent>(line) {
                Ok(e) => events.push(e),
                Err(_) => break, // corrupt record: trust nothing after it
            }
        }
        events
    }

    /// Rewrites the journal down to its valid prefix (atomic
    /// tmp+rename), dropping a torn or corrupt tail so later appends
    /// cannot merge with half a record. Returns the surviving events.
    /// Serialization is deterministic, so an already-clean journal is
    /// rewritten byte-identically (and therefore skipped).
    fn repair_events(&self, job: u64) -> std::io::Result<Vec<JobEvent>> {
        let path = self.events_path(job);
        let on_disk = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let events = self.read_events(job);
        let mut clean = String::new();
        for event in &events {
            clean.push_str(
                &serde_json::to_string(event).map_err(|e| std::io::Error::other(e.to_string()))?,
            );
            clean.push('\n');
        }
        if clean != on_disk {
            self.write_atomic(&path, &clean)?;
        }
        Ok(events)
    }

    /// Truncates the journal (fresh runs that found stale garbage).
    pub fn clear_events(&self, job: u64) -> std::io::Result<()> {
        match fs::remove_file(self.events_path(job)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Durably records the final report JSON (atomic tmp+rename). Must
    /// complete before the `done` event is journaled.
    pub fn write_done(&self, job: u64, report_json: &str) -> std::io::Result<()> {
        self.write_atomic(&self.done_path(job), report_json)
    }

    /// The final report JSON, if the job completed.
    pub fn read_done(&self, job: u64) -> Option<String> {
        fs::read_to_string(self.done_path(job)).ok()
    }

    /// Whether a campaign checkpoint exists for the job.
    pub fn has_checkpoint(&self, job: u64) -> bool {
        self.checkpoint_path(job).exists()
    }

    /// Every job id with a spooled spec, ascending.
    pub fn jobs(&self) -> Vec<u64> {
        let mut ids = Vec::new();
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return ids;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(rest) = name.strip_prefix("job-") {
                if let Some(id) = rest.strip_suffix(".spec.json") {
                    if let Ok(id) = id.parse::<u64>() {
                        ids.push(id);
                    }
                }
            }
        }
        ids.sort_unstable();
        ids
    }

    /// The next unused job id (one past the highest spooled id).
    pub fn next_job_id(&self) -> u64 {
        self.jobs().last().map_or(0, |last| last + 1)
    }

    /// Brings the journal back in step with the durable state after a
    /// restart: if the checkpoint (or final report) on disk is ahead of
    /// the last journaled record — the crash landed between the durable
    /// write and its announcement — append the missing record now.
    /// `ckpt` is the resumed campaign's `(completed, report_json)` as
    /// read back from the checkpoint file, when one exists.
    ///
    /// Returns the journal length after reconciliation.
    pub fn reconcile_events(
        &self,
        job: u64,
        trials: u64,
        ckpt: Option<(u64, &str)>,
    ) -> std::io::Result<u64> {
        let events = self.repair_events(job)?;
        let mut next_seq = events.len() as u64;
        let journaled = events.last().map(|e| (e.kind.clone(), e.completed));
        if let Some(report_json) = self.read_done(job) {
            // Completed before the crash; the `done` record may be the
            // missing announcement.
            if journaled.as_ref().map(|(k, _)| k.as_str()) != Some("done") {
                self.append_event(&JobEvent {
                    job,
                    seq: next_seq,
                    kind: "done".to_string(),
                    completed: trials,
                    trials,
                    digest: pfault_sim::checksum::fnv64(report_json.as_bytes()),
                    body: report_json,
                })?;
                next_seq += 1;
            }
            return Ok(next_seq);
        }
        if let Some((completed, report_json)) = ckpt {
            let announced = journaled.map_or(0, |(_, c)| c);
            if completed > announced {
                self.append_event(&JobEvent {
                    job,
                    seq: next_seq,
                    kind: "progress".to_string(),
                    completed,
                    trials,
                    digest: pfault_sim::checksum::fnv64(report_json.as_bytes()),
                    body: String::new(),
                })?;
                next_seq += 1;
            }
        }
        Ok(next_seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> Spool {
        let dir = std::env::temp_dir().join(format!("pfault-spool-test-{name}"));
        let _ = fs::remove_dir_all(&dir);
        Spool::open(&dir).expect("spool opens")
    }

    fn event(job: u64, seq: u64, completed: u64) -> JobEvent {
        JobEvent {
            job,
            seq,
            kind: "progress".to_string(),
            completed,
            trials: 10,
            digest: 0x1234,
            body: String::new(),
        }
    }

    #[test]
    fn specs_roundtrip_and_enumerate() {
        let spool = scratch("specs");
        assert_eq!(spool.next_job_id(), 0);
        let spec = JobSpec::tiny_campaign(7);
        spool.write_spec(0, &spec).unwrap();
        spool.write_spec(3, &spec).unwrap();
        assert_eq!(spool.jobs(), vec![0, 3]);
        assert_eq!(spool.next_job_id(), 4);
        assert_eq!(spool.read_spec(3).unwrap(), spec);
    }

    #[test]
    fn journal_appends_and_tolerates_torn_tail() {
        let spool = scratch("journal");
        spool.append_event(&event(1, 0, 2)).unwrap();
        spool.append_event(&event(1, 1, 4)).unwrap();
        assert_eq!(spool.read_events(1).len(), 2);

        // Crash mid-append: a torn half-record at the tail.
        let path = spool.dir().join("job-1.events.jsonl");
        let mut f = fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"job\":1,\"seq\":2,\"ki").unwrap();
        drop(f);
        let events = spool.read_events(1);
        assert_eq!(events.len(), 2, "torn tail must be dropped");
        assert_eq!(events[1].seq, 1);
    }

    #[test]
    fn reconcile_appends_missing_progress_record() {
        let spool = scratch("reconcile");
        spool.append_event(&event(2, 0, 2)).unwrap();
        // Checkpoint got ahead of the journal (crash between rename
        // and append): reconcile journals the announcement.
        let n = spool.reconcile_events(2, 10, Some((4, "{\"r\":1}"))).unwrap();
        assert_eq!(n, 2);
        let events = spool.read_events(2);
        assert_eq!(events[1].completed, 4);
        assert_eq!(events[1].kind, "progress");
        // Idempotent: a second reconcile appends nothing.
        let n = spool.reconcile_events(2, 10, Some((4, "{\"r\":1}"))).unwrap();
        assert_eq!(n, 2);
        assert_eq!(spool.read_events(2).len(), 2);
    }

    #[test]
    fn reconcile_repairs_torn_tail_before_appending() {
        let spool = scratch("repair");
        spool.append_event(&event(5, 0, 2)).unwrap();
        let path = spool.dir().join("job-5.events.jsonl");
        let mut f = fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"job\":5,\"seq\":1,\"ki").unwrap();
        drop(f);
        // Reconcile drops the torn half-record and re-synthesizes the
        // missing announcement; later appends must not merge with it.
        let n = spool.reconcile_events(5, 10, Some((4, "{\"r\":1}"))).unwrap();
        assert_eq!(n, 2);
        spool.append_event(&event(5, 2, 6)).unwrap();
        let events = spool.read_events(5);
        assert_eq!(events.len(), 3, "journal stayed parseable end to end");
        assert_eq!(events[1].completed, 4);
        assert_eq!(events[2].seq, 2);
    }

    #[test]
    fn reconcile_appends_missing_done_record() {
        let spool = scratch("reconcile-done");
        spool.append_event(&event(3, 0, 2)).unwrap();
        spool.write_done(3, "{\"final\":true}").unwrap();
        let n = spool.reconcile_events(3, 10, None).unwrap();
        assert_eq!(n, 2);
        let events = spool.read_events(3);
        assert_eq!(events[1].kind, "done");
        assert_eq!(events[1].body, "{\"final\":true}");
        // Idempotent.
        assert_eq!(spool.reconcile_events(3, 10, None).unwrap(), 2);
    }
}
