//! A blocking client for the campaign daemon, built for flaky links:
//! every connect can back off exponentially with deterministic jitter,
//! every read honours a deadline, and a dropped stream is resumed by
//! reattaching from the last acked sequence number — the daemon replays
//! the journal, so nothing is lost and nothing is duplicated.

use std::net::TcpStream;
use std::time::Duration;

use pfault_sim::rng::DetRng;

use crate::frame::{read_frame, FrameError};
use crate::proto::{decode_message, encode_message, JobEvent, JobSpec, Request, Response};

/// Client-side failures, separating transport faults (worth a retry)
/// from protocol surprises (a daemon answer that makes no sense here).
#[derive(Debug)]
pub enum ClientError {
    /// Could not reach the daemon (after any configured backoff).
    Connect(std::io::Error),
    /// The transport tore mid-exchange.
    Frame(FrameError),
    /// The daemon's reply did not parse.
    Malformed(String),
    /// The daemon replied, but not with anything this call can use
    /// (e.g. `Rejected` on submit, `Error` on attach).
    Daemon(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Connect(e) => write!(f, "connect failed: {e}"),
            ClientError::Frame(e) => write!(f, "transport error: {e}"),
            ClientError::Malformed(m) => write!(f, "malformed reply: {m}"),
            ClientError::Daemon(m) => write!(f, "daemon error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

/// One connection to the daemon. Request/response calls are strictly
/// alternating frames; an attach turns the connection into an event
/// stream until the job ends.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects once, with read/write deadlines.
    pub fn connect(addr: &str, io_timeout_ms: u64) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr).map_err(ClientError::Connect)?;
        let timeout = Duration::from_millis(io_timeout_ms.max(50));
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(timeout));
        let _ = stream.set_write_timeout(Some(timeout));
        Ok(Client { stream })
    }

    /// Connects with exponential backoff and deterministic jitter:
    /// attempt *k* sleeps `base_ms * 2^k` plus a seeded random slice of
    /// the same, so a fleet of clients hammered by a daemon restart
    /// does not reconnect in lockstep.
    pub fn connect_backoff(
        addr: &str,
        io_timeout_ms: u64,
        attempts: u32,
        base_ms: u64,
        seed: u64,
    ) -> Result<Client, ClientError> {
        let mut rng = DetRng::new(seed ^ 0x5e7e_c0de);
        let mut last = None;
        for attempt in 0..attempts.max(1) {
            match Client::connect(addr, io_timeout_ms) {
                Ok(client) => return Ok(client),
                Err(e) => last = Some(e),
            }
            let step = base_ms.saturating_mul(1 << attempt.min(10));
            let jitter = rng.below(step.max(1));
            std::thread::sleep(Duration::from_millis(step + jitter));
        }
        Err(last.unwrap_or_else(|| {
            ClientError::Connect(std::io::Error::other("no connection attempts made"))
        }))
    }

    /// One request/response exchange.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        let frame = encode_message(request)?;
        use std::io::Write as _;
        self.stream
            .write_all(&frame)
            .map_err(|e| ClientError::Frame(FrameError::Io(e)))?;
        self.stream
            .flush()
            .map_err(|e| ClientError::Frame(FrameError::Io(e)))?;
        self.read_response()
    }

    fn read_response(&mut self) -> Result<Response, ClientError> {
        let payload = read_frame(&mut self.stream)?;
        decode_message(&payload).map_err(ClientError::Malformed)
    }

    /// Submits a job, translating the daemon's admission verdict:
    /// `Ok(Some(id))` accepted, `Ok(None)` busy (retry with backoff),
    /// `Err` rejected or broken.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<Option<u64>, ClientError> {
        match self.call(&Request::Submit { spec: spec.clone() })? {
            Response::Accepted { job } => Ok(Some(job)),
            Response::Busy { .. } => Ok(None),
            Response::Rejected { reason } | Response::Error { reason } => {
                Err(ClientError::Daemon(reason))
            }
            other => Err(ClientError::Daemon(format!("unexpected reply {other:?}"))),
        }
    }

    /// Submits with bounded busy-retries (exponential backoff +
    /// deterministic jitter between attempts).
    pub fn submit_backoff(
        &mut self,
        spec: &JobSpec,
        attempts: u32,
        base_ms: u64,
        seed: u64,
    ) -> Result<u64, ClientError> {
        let mut rng = DetRng::new(seed ^ 0xba_c0ff);
        for attempt in 0..attempts.max(1) {
            if let Some(job) = self.submit(spec)? {
                return Ok(job);
            }
            let step = base_ms.saturating_mul(1 << attempt.min(10));
            std::thread::sleep(Duration::from_millis(step + rng.below(step.max(1))));
        }
        Err(ClientError::Daemon("queue stayed busy".to_string()))
    }

    /// Attaches to a job's result stream from `from_seq` and returns an
    /// iterator of events. Heartbeats are consumed silently; the stream
    /// ends after a terminal (`done`/`failed`) event, on
    /// `ShuttingDown`, or with the first transport error.
    pub fn attach(&mut self, job: u64, from_seq: u64) -> Result<EventStream<'_>, ClientError> {
        let frame = encode_message(&Request::Attach { job, from_seq })?;
        use std::io::Write as _;
        self.stream
            .write_all(&frame)
            .and_then(|()| self.stream.flush())
            .map_err(|e| ClientError::Frame(FrameError::Io(e)))?;
        Ok(EventStream {
            client: self,
            finished: false,
        })
    }
}

/// Iterator over a job's streamed [`JobEvent`]s (see
/// [`Client::attach`]). `None` after a terminal event or
/// `ShuttingDown`; transport and protocol failures surface as one final
/// `Some(Err(..))`.
pub struct EventStream<'a> {
    client: &'a mut Client,
    finished: bool,
}

impl Iterator for EventStream<'_> {
    type Item = Result<JobEvent, ClientError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.finished {
            return None;
        }
        loop {
            match self.client.read_response() {
                Ok(Response::Event { event }) => {
                    if event.kind != "progress" {
                        self.finished = true;
                    }
                    return Some(Ok(event));
                }
                Ok(Response::Heartbeat) => continue,
                Ok(Response::ShuttingDown) => {
                    self.finished = true;
                    return None;
                }
                Ok(Response::Error { reason }) => {
                    self.finished = true;
                    return Some(Err(ClientError::Daemon(reason)));
                }
                Ok(other) => {
                    self.finished = true;
                    return Some(Err(ClientError::Daemon(format!(
                        "unexpected reply {other:?}"
                    ))));
                }
                Err(e) => {
                    self.finished = true;
                    return Some(Err(e));
                }
            }
        }
    }
}
