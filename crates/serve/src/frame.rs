//! Length-prefixed, CRC-framed byte transport.
//!
//! Every protocol message travels as one frame:
//!
//! ```text
//! +-------+----------------+----------------+---------+
//! | magic | payload length | crc32(payload) | payload |
//! | PFS1  | u32 LE         | u32 LE         | bytes   |
//! +-------+----------------+----------------+---------+
//! ```
//!
//! The daemon treats the wire the way the platform treats flash under a
//! power cut: any prefix can arrive and any byte can flip. A torn frame
//! decodes to [`FrameError::Truncated`], a flipped header byte to
//! [`FrameError::BadMagic`] / [`FrameError::Oversize`], a flipped
//! payload byte to [`FrameError::CrcMismatch`] — always an error value,
//! never a panic, and never a silently corrupted payload (the CRC is
//! [`pfault_sim::checksum::crc32`], the same IEEE polynomial the
//! simulated firmware uses for its journal frames).

use std::io::{Read, Write};

use pfault_sim::checksum::crc32;

/// Frame preamble: protocol name + wire version.
pub const MAGIC: [u8; 4] = *b"PFS1";

/// Fixed header size (magic + length + CRC).
pub const HEADER_BYTES: usize = 12;

/// Upper bound on a payload, rejecting absurd lengths from corrupt or
/// hostile headers before any allocation happens.
pub const MAX_PAYLOAD_BYTES: usize = 16 << 20;

/// Everything that can go wrong reading a frame. Wire corruption is a
/// *value*, never a panic — the daemon drops the connection with a
/// protocol error and keeps serving everyone else.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the stream cleanly at a frame boundary.
    Closed,
    /// The stream ended (or the buffer ran out) mid-frame.
    Truncated {
        /// Bytes the header or payload still owed.
        missing: usize,
    },
    /// The first four bytes are not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The header claims a payload larger than [`MAX_PAYLOAD_BYTES`].
    Oversize(u64),
    /// The payload arrived whole but its CRC does not match the header.
    CrcMismatch {
        /// CRC the header promised.
        expected: u32,
        /// CRC of the bytes that actually arrived.
        found: u32,
    },
    /// An underlying transport error (including read timeouts).
    Io(std::io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Truncated { missing } => {
                write!(f, "frame truncated ({missing} bytes missing)")
            }
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            FrameError::Oversize(n) => write!(f, "frame payload of {n} bytes exceeds limit"),
            FrameError::CrcMismatch { expected, found } => {
                write!(f, "frame crc mismatch: header {expected:#010x}, payload {found:#010x}")
            }
            FrameError::Io(e) => write!(f, "frame io error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl FrameError {
    /// Whether this is a read/write deadline expiry rather than a real
    /// failure — the daemon's heartbeat loop treats timeouts as "no
    /// traffic yet", everything else as a dead peer.
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            FrameError::Io(e) if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            )
        )
    }
}

/// Encodes one payload as a complete frame.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_BYTES + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Decodes one frame from the front of `buf`, returning the payload and
/// the number of bytes consumed. Pure — the property tests drive this
/// directly with truncated and bit-flipped buffers.
pub fn decode_frame(buf: &[u8]) -> Result<(Vec<u8>, usize), FrameError> {
    if buf.is_empty() {
        return Err(FrameError::Closed);
    }
    if buf.len() < HEADER_BYTES {
        return Err(FrameError::Truncated {
            missing: HEADER_BYTES - buf.len(),
        });
    }
    let magic = [buf[0], buf[1], buf[2], buf[3]];
    if magic != MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let len = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]) as usize;
    if len > MAX_PAYLOAD_BYTES {
        return Err(FrameError::Oversize(len as u64));
    }
    let expected = u32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]);
    let total = HEADER_BYTES + len;
    if buf.len() < total {
        return Err(FrameError::Truncated {
            missing: total - buf.len(),
        });
    }
    let payload = &buf[HEADER_BYTES..total];
    let found = crc32(payload);
    if found != expected {
        return Err(FrameError::CrcMismatch { expected, found });
    }
    Ok((payload.to_vec(), total))
}

/// Writes one frame (header + payload) and flushes.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), FrameError> {
    w.write_all(&encode_frame(payload))?;
    w.flush()?;
    Ok(())
}

/// Reads exactly one frame. A clean EOF *before any header byte* is
/// [`FrameError::Closed`]; an EOF mid-frame is a torn write and reports
/// [`FrameError::Truncated`].
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; HEADER_BYTES];
    let got = fill(r, &mut header)?;
    if got == 0 {
        return Err(FrameError::Closed);
    }
    if got < HEADER_BYTES {
        return Err(FrameError::Truncated {
            missing: HEADER_BYTES - got,
        });
    }
    let magic = [header[0], header[1], header[2], header[3]];
    if magic != MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let len = u32::from_le_bytes([header[4], header[5], header[6], header[7]]) as usize;
    if len > MAX_PAYLOAD_BYTES {
        return Err(FrameError::Oversize(len as u64));
    }
    let expected = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
    let mut payload = vec![0u8; len];
    let got = fill(r, &mut payload)?;
    if got < len {
        return Err(FrameError::Truncated { missing: len - got });
    }
    let found = crc32(&payload);
    if found != expected {
        return Err(FrameError::CrcMismatch { expected, found });
    }
    Ok(payload)
}

/// Reads until `buf` is full or EOF, returning how many bytes landed.
/// Unlike `read_exact`, a short read is reported with its exact length
/// so the caller can distinguish "closed between frames" from "torn
/// mid-frame".
fn fill(r: &mut impl Read, buf: &mut [u8]) -> Result<usize, FrameError> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => {
                // A deadline expiry with a partial frame in hand is a
                // torn read from the caller's perspective only if bytes
                // arrived; with none, surface the timeout itself so the
                // heartbeat loop can keep waiting.
                if got == 0 {
                    return Err(e.into());
                }
                return Err(FrameError::Truncated {
                    missing: buf.len() - got,
                });
            }
        }
    }
    Ok(got)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        for payload in [&b""[..], b"x", b"{\"a\":1}", &[0u8; 4096]] {
            let frame = encode_frame(payload);
            let (decoded, used) = decode_frame(&frame).expect("decodes");
            assert_eq!(decoded, payload);
            assert_eq!(used, frame.len());
        }
    }

    #[test]
    fn empty_buffer_is_closed() {
        assert!(matches!(decode_frame(&[]), Err(FrameError::Closed)));
    }

    #[test]
    fn truncation_reports_missing_bytes() {
        let frame = encode_frame(b"hello");
        for cut in 1..frame.len() {
            // Inside the header only the header's own shortfall is
            // knowable; past it the payload length is on record.
            let expect = if cut < HEADER_BYTES {
                HEADER_BYTES - cut
            } else {
                frame.len() - cut
            };
            match decode_frame(&frame[..cut]) {
                Err(FrameError::Truncated { missing }) => {
                    assert_eq!(missing, expect, "cut at {cut}");
                }
                other => panic!("cut at {cut}: expected truncation, got {other:?}"),
            }
        }
    }

    #[test]
    fn payload_flip_is_a_crc_mismatch() {
        let mut frame = encode_frame(b"hello");
        frame[HEADER_BYTES + 2] ^= 0x40;
        assert!(matches!(
            decode_frame(&frame),
            Err(FrameError::CrcMismatch { .. })
        ));
    }

    #[test]
    fn magic_flip_is_rejected() {
        let mut frame = encode_frame(b"hello");
        frame[0] ^= 0x01;
        assert!(matches!(decode_frame(&frame), Err(FrameError::BadMagic(_))));
    }

    #[test]
    fn absurd_length_is_rejected_before_allocation() {
        let mut frame = encode_frame(b"hello");
        frame[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode_frame(&frame), Err(FrameError::Oversize(_))));
    }

    #[test]
    fn stream_roundtrip_and_torn_tail() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"first").unwrap();
        write_frame(&mut wire, b"second").unwrap();
        wire.truncate(wire.len() - 3); // tear the second frame
        let mut cursor = std::io::Cursor::new(wire);
        assert_eq!(read_frame(&mut cursor).unwrap(), b"first");
        assert!(matches!(
            read_frame(&mut cursor),
            Err(FrameError::Truncated { missing: 3 })
        ));
    }
}
