//! The request/response vocabulary carried inside [`crate::frame`]
//! frames, serialized as JSON via the workspace serde shim.
//!
//! Every frame payload is exactly one serialized [`Request`] (client →
//! daemon) or [`Response`] (daemon → client). Streams are just repeated
//! `Event` responses on one connection, terminated by a `done` or
//! `failed` event — there is no out-of-band state, which is what makes
//! reattach trivial: a client that reconnects replays the journal from
//! its last acked sequence number and the bytes are the same.

use pfault_platform::plan::PlanSpec;
use serde::{Deserialize, Serialize};

use crate::frame::FrameError;

/// How a job's trial workload is shaped. The spec is the *complete*
/// description of the work — the daemon derives everything (trial
/// configuration, campaign seed streams, checkpoint cadence) from it,
/// so the same spec resumed after a crash reproduces the same bytes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// What to run: `campaign` (the durable, checkpointed path) or any
    /// registry experiment name (deterministic, rerun-from-spec on
    /// daemon restart).
    pub exp: String,
    /// Geometry/workload profile: `tiny` (the test-suite device) or
    /// `paper` (the paper-default device).
    pub profile: String,
    /// Campaign seed.
    pub seed: u64,
    /// Fault injections (campaign jobs).
    pub trials: u64,
    /// Requests per trial (campaign jobs).
    pub requests_per_trial: u64,
    /// Warm-up requests cloned from the shared snapshot cache (0 =
    /// cold device per trial).
    pub warmup: u64,
    /// Collect probe telemetry so `metrics` serves a live aggregate.
    pub obs: bool,
    /// Trials between durable checkpoints (0 = daemon default).
    pub checkpoint_every: u64,
    /// Adaptive sizing: when set, campaign jobs run under the planner
    /// ([`Campaign::run_planned_observed`]) — rounds extend or stop the
    /// run by interval convergence, planner state checkpoints and
    /// resumes with the report, and `status` rows carry the convergence
    /// line. `None` keeps the classic fixed-`trials` loop. Splitting
    /// specs are rejected at submit time: whole campaigns expose only
    /// pass/fail bits, not severities.
    ///
    /// [`Campaign::run_planned_observed`]: pfault_platform::campaign::Campaign::run_planned_observed
    pub plan: Option<PlanSpec>,
}

impl JobSpec {
    /// A small, fast campaign spec — the smoke-test default.
    pub fn tiny_campaign(seed: u64) -> JobSpec {
        JobSpec {
            exp: "campaign".to_string(),
            profile: "tiny".to_string(),
            seed,
            trials: 12,
            requests_per_trial: 20,
            warmup: 8,
            obs: true,
            checkpoint_every: 2,
            plan: None,
        }
    }

    /// [`JobSpec::tiny_campaign`] sized by a loose adaptive confidence
    /// plan instead of a fixed trial count — converges in a handful of
    /// trials, which keeps planner smoke tests fast while still
    /// exercising round extension, convergence stopping, and planned
    /// checkpoint/resume.
    pub fn tiny_adaptive(seed: u64) -> JobSpec {
        let mut spec = JobSpec::tiny_campaign(seed);
        spec.plan = Some(PlanSpec::Confidence {
            half_width: 0.45,
            confidence: 0.9,
            exact: false,
            min_trials: 9,
            max_trials: 24,
            round: 3,
        });
        spec
    }
}

/// One durable result-journal record, also the streamed result unit.
/// `seq` is dense per job starting at 0; a client acks by remembering
/// the last `seq` it processed and reattaches with `from_seq = acked +
/// 1`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobEvent {
    /// Job the event belongs to.
    pub job: u64,
    /// Dense per-job sequence number (0-based).
    pub seq: u64,
    /// `progress`, `done`, or `failed`.
    pub kind: String,
    /// Trials absorbed when the event was journaled.
    pub completed: u64,
    /// Total trials the job will run.
    pub trials: u64,
    /// FNV-64 of the serialized report at this point (0 for `failed`).
    pub digest: u64,
    /// Full report JSON on `done`, the error text on `failed`, empty
    /// for `progress`.
    pub body: String,
}

/// A row of the live `status` listing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobInfo {
    /// Job id.
    pub job: u64,
    /// `queued`, `running`, `paused`, `done`, or `failed`.
    pub state: String,
    /// Trials absorbed so far.
    pub completed: u64,
    /// Total trials.
    pub trials: u64,
    /// Result-journal records written so far.
    pub events: u64,
    /// Snapshot-cache hits attributed to this job (scoped stats, not
    /// process-wide drift).
    pub cache_hits: u64,
    /// Snapshot-cache misses attributed to this job.
    pub cache_misses: u64,
    /// Planner convergence line (round, n, p̂, interval) for jobs
    /// running under an adaptive plan; empty for classic fixed jobs.
    pub convergence: String,
}

/// Client → daemon messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Submit a job for execution. Answered by `Accepted`, `Busy`, or
    /// `Rejected`.
    Submit {
        /// The job to run.
        spec: JobSpec,
    },
    /// Stream the result journal of `job`, starting at `from_seq`,
    /// then follow it live until the job ends. Heartbeats fill idle
    /// gaps so the client's read deadline never fires spuriously.
    Attach {
        /// Job id from `Accepted`.
        job: u64,
        /// First sequence number wanted (last acked + 1).
        from_seq: u64,
    },
    /// List every job the daemon knows (spool-wide, including finished
    /// ones).
    Status,
    /// A mid-run snapshot of the job's observability aggregate as
    /// metrics JSONL.
    Metrics {
        /// Job id.
        job: u64,
    },
    /// Graceful drain: stop accepting work, checkpoint in-flight jobs,
    /// then exit with the socket closing last.
    Shutdown,
}

/// Daemon → client messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// `Ping` reply.
    Pong,
    /// The job is durably spooled and queued.
    Accepted {
        /// Assigned job id (use for `Attach`/`Metrics`).
        job: u64,
    },
    /// Explicit backpressure: the bounded job queue is full. The spec
    /// was *not* spooled; retry with backoff.
    Busy {
        /// Jobs currently queued.
        queued: u64,
        /// Queue capacity.
        capacity: u64,
    },
    /// The daemon cannot take the job (draining, or the spec is
    /// invalid).
    Rejected {
        /// Human-readable reason.
        reason: String,
    },
    /// `Status` reply.
    JobList {
        /// One row per known job, ordered by id.
        jobs: Vec<JobInfo>,
    },
    /// `Metrics` reply: the job's current [`ObsAggregate`] rendered as
    /// metrics JSONL (empty until an obs-enabled trial lands).
    ///
    /// [`ObsAggregate`]: pfault_platform::ObsAggregate
    MetricsSnapshot {
        /// Job id.
        job: u64,
        /// `pfault_obs::render_metrics_jsonl` output.
        jsonl: String,
    },
    /// One streamed result-journal record.
    Event {
        /// The record.
        event: JobEvent,
    },
    /// Idle keepalive inside an `Attach` stream.
    Heartbeat,
    /// The daemon acknowledged `Shutdown` (or is refusing a stream
    /// because it is draining).
    ShuttingDown,
    /// Protocol-level failure (unknown job, malformed request, …). The
    /// connection stays usable unless the transport itself broke.
    Error {
        /// Human-readable reason.
        reason: String,
    },
}

/// Serializes a message and wraps it in a frame.
pub fn encode_message<T: Serialize>(msg: &T) -> Result<Vec<u8>, FrameError> {
    let json = serde_json::to_string(msg)
        .map_err(|e| FrameError::Io(std::io::Error::other(e.to_string())))?;
    Ok(crate::frame::encode_frame(json.as_bytes()))
}

/// Parses a frame payload as a message, mapping malformed JSON to a
/// clean error value.
pub fn decode_message<T: Deserialize>(payload: &[u8]) -> Result<T, String> {
    let text = std::str::from_utf8(payload).map_err(|e| format!("payload is not UTF-8: {e}"))?;
    serde_json::from_str(text).map_err(|e| format!("malformed message: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip_through_json() {
        let reqs = vec![
            Request::Ping,
            Request::Submit {
                spec: JobSpec::tiny_campaign(7),
            },
            Request::Submit {
                spec: JobSpec::tiny_adaptive(7),
            },
            Request::Attach { job: 3, from_seq: 9 },
            Request::Status,
            Request::Metrics { job: 3 },
            Request::Shutdown,
        ];
        for r in reqs {
            let json = serde_json::to_string(&r).unwrap();
            let back: Request = serde_json::from_str(&json).unwrap();
            assert_eq!(back, r, "json was {json}");
        }
    }

    #[test]
    fn responses_roundtrip_through_json() {
        let resps = vec![
            Response::Pong,
            Response::Accepted { job: 1 },
            Response::Busy {
                queued: 4,
                capacity: 4,
            },
            Response::Rejected {
                reason: "draining".to_string(),
            },
            Response::JobList {
                jobs: vec![JobInfo {
                    job: 1,
                    state: "running".to_string(),
                    completed: 3,
                    trials: 12,
                    events: 1,
                    cache_hits: 2,
                    cache_misses: 1,
                    convergence: "round 3 n=9 done".to_string(),
                }],
            },
            Response::MetricsSnapshot {
                job: 1,
                jsonl: "{\"type\":\"counter\"}\n".to_string(),
            },
            Response::Event {
                event: JobEvent {
                    job: 1,
                    seq: 0,
                    kind: "progress".to_string(),
                    completed: 2,
                    trials: 12,
                    digest: 0xdead_beef,
                    body: String::new(),
                },
            },
            Response::Heartbeat,
            Response::ShuttingDown,
            Response::Error {
                reason: "unknown job".to_string(),
            },
        ];
        for r in resps {
            let json = serde_json::to_string(&r).unwrap();
            let back: Response = serde_json::from_str(&json).unwrap();
            assert_eq!(back, r, "json was {json}");
        }
    }

    #[test]
    fn framed_message_roundtrip() {
        let frame = encode_message(&Request::Ping).unwrap();
        let (payload, _) = crate::frame::decode_frame(&frame).unwrap();
        let back: Request = decode_message(&payload).unwrap();
        assert_eq!(back, Request::Ping);
    }

    #[test]
    fn garbage_payload_is_a_clean_error() {
        assert!(decode_message::<Request>(b"not json").is_err());
        assert!(decode_message::<Request>(&[0xff, 0xfe]).is_err());
        assert!(decode_message::<Request>(b"{\"Nope\":1}").is_err());
    }
}
