//! `pfault-serve` — campaign-as-a-service: a crash-tolerant, std-only
//! daemon that runs fault-injection jobs for remote clients.
//!
//! The paper's methodology is thousands of repeated power-cut trials
//! per configuration; this crate lifts that workload from a batch CLI
//! into a long-running service, modelled on CHAOS's
//! controller-driven fault injector. The design treats the wire and the
//! daemon's own lifetime exactly like the platform treats flash under
//! power cuts: everything can tear at any byte, so every layer is
//! framed, checksummed, journaled, or resumable.
//!
//! * [`frame`] — length-prefixed, CRC-framed byte transport: torn or
//!   bit-flipped frames surface as clean [`frame::FrameError`]s, never
//!   panics;
//! * [`proto`] — the JSON request/response vocabulary carried inside
//!   frames;
//! * [`spool`] — the durability layer: job specs, campaign checkpoints
//!   (the platform's `with_checkpoint` machinery), an append-only
//!   sequence-numbered result journal per job, and a final-report
//!   marker, all written so a killed daemon restarts and resumes every
//!   in-flight job **byte-identically**;
//! * [`daemon`] — the TCP service: bounded job queue with explicit
//!   `Busy` backpressure, per-connection read/write deadlines with idle
//!   heartbeats, per-job panic isolation (the platform campaign
//!   engine's `catch_unwind` + watchdog), snapshot-cache sharing with
//!   per-job stats attribution, and drain-then-exit shutdown;
//! * [`client`] — a blocking client with exponential backoff + jitter,
//!   used by the `repro servectl` subcommand;
//! * [`selfcheck`] — the `serve` experiment: an end-to-end
//!   submit → kill → restart → reattach check asserting byte-identical
//!   resumed reports and exactly-once event delivery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The lint gate (`make lint-core`) denies unwrap() in library code;
// tests may unwrap freely.
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod client;
pub mod daemon;
pub mod frame;
pub mod proto;
pub mod selfcheck;
pub mod spool;

pub use client::{Client, ClientError};
pub use daemon::{Daemon, DaemonConfig};
pub use frame::{decode_frame, encode_frame, read_frame, write_frame, FrameError};
pub use proto::{JobEvent, JobInfo, JobSpec, Request, Response};
pub use selfcheck::experiment;
pub use spool::Spool;
