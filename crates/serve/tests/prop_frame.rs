//! Property tests for the wire framing: whatever the network does to a
//! frame — deliver it, tear it at any byte, or flip any bit — the
//! decoder answers with the payload or a clean protocol error. It never
//! panics, and it never hands back a payload that differs from what was
//! sent.

use proptest::prelude::*;

use pfault_serve::frame::{decode_frame, encode_frame, read_frame, FrameError, HEADER_BYTES};

proptest! {
    /// Encode → decode is the identity, for payloads of any content and
    /// size, and consumes exactly the frame.
    #[test]
    fn roundtrip_is_identity(payload in prop::collection::vec(any::<u8>(), 0..512)) {
        let frame = encode_frame(&payload);
        prop_assert_eq!(frame.len(), HEADER_BYTES + payload.len());
        let (decoded, used) = decode_frame(&frame).expect("intact frame decodes");
        prop_assert_eq!(decoded, payload);
        prop_assert_eq!(used, frame.len());
    }

    /// A frame cut at any byte decodes to a clean error — `Closed` at
    /// the exact boundary, `Truncated` anywhere inside — and never to a
    /// payload.
    #[test]
    fn any_truncation_is_a_clean_error(
        payload in prop::collection::vec(any::<u8>(), 0..256),
        cut_sel: u64,
    ) {
        let frame = encode_frame(&payload);
        let cut = (cut_sel % frame.len() as u64) as usize;
        match decode_frame(&frame[..cut]) {
            Err(FrameError::Closed) => prop_assert_eq!(cut, 0),
            Err(FrameError::Truncated { missing }) => {
                prop_assert!(missing > 0);
                // Inside the header the decoder can only know the
                // header's own shortfall; past it, the full tally.
                if cut >= HEADER_BYTES {
                    prop_assert_eq!(missing, frame.len() - cut);
                }
            }
            other => prop_assert!(false, "cut at {} gave {:?}", cut, other),
        }
        // The streaming reader agrees (modulo Closed-at-zero).
        let mut cursor = std::io::Cursor::new(frame[..cut].to_vec());
        prop_assert!(read_frame(&mut cursor).is_err());
    }

    /// Flipping any single bit anywhere in the frame is detected: the
    /// decode errors (bad magic, oversize, truncation, or CRC mismatch
    /// depending on where the flip landed) — it never silently yields a
    /// payload, let alone the original.
    #[test]
    fn any_bit_flip_is_detected(
        payload in prop::collection::vec(any::<u8>(), 1..256),
        flip_sel: u64,
    ) {
        let mut frame = encode_frame(&payload);
        let bits = (frame.len() * 8) as u64;
        let flip = flip_sel % bits;
        frame[(flip / 8) as usize] ^= 1 << (flip % 8);
        match decode_frame(&frame) {
            Err(_) => {}
            Ok((decoded, _)) => {
                // A flip that somehow still decodes (e.g. a length bit
                // flipped low with a colliding CRC) must at least never
                // reproduce the original payload as if nothing happened.
                prop_assert_ne!(decoded, payload, "flip at bit {} went unnoticed", flip);
                prop_assert!(false, "flip at bit {} decoded successfully", flip);
            }
        }
    }

    /// Torn or corrupt streams never panic the reader: any byte soup is
    /// either a valid first frame or a clean error.
    #[test]
    fn arbitrary_bytes_never_panic_the_reader(
        soup in prop::collection::vec(any::<u8>(), 0..300),
    ) {
        let _ = decode_frame(&soup);
        let mut cursor = std::io::Cursor::new(soup);
        let _ = read_frame(&mut cursor);
    }
}
