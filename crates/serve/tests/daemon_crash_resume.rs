//! Integration test for the daemon's durability story: kill the daemon
//! mid-campaign (in-process), restart it over the same spool, and
//! require the finished job to be **byte-identical** to an
//! uninterrupted same-seed run — including through the nastiest crash
//! window, where the checkpoint hit disk but its journal announcement
//! did not.

use std::collections::BTreeSet;
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};

use pfault_serve::client::Client;
use pfault_serve::daemon::{campaign_for, Daemon, DaemonConfig};
use pfault_serve::proto::JobSpec;
use pfault_serve::spool::Spool;

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pfault-crash-resume-{name}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The uninterrupted truth: the same spec run locally.
fn reference_report(spec: &JobSpec) -> String {
    let report = campaign_for(spec)
        .expect("spec builds a campaign")
        .run_checked()
        .expect("reference run succeeds");
    serde_json::to_string(&report).expect("report serializes")
}

/// Drops the last line of the job's event journal, simulating a crash
/// that landed after a checkpoint rename but before (or during) the
/// journal append — the exact window `reconcile_events` exists for.
fn tear_last_journal_line(spool_dir: &std::path::Path, job: u64) {
    let path = spool_dir.join(format!("job-{job}.events.jsonl"));
    let mut file = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(&path)
        .expect("journal exists");
    let mut text = String::new();
    file.read_to_string(&mut text).expect("journal reads");
    let trimmed = &text[..text.trim_end_matches('\n').len()];
    let keep = trimmed.rfind('\n').map_or(0, |i| i + 1);
    file.set_len(keep as u64).expect("journal truncates");
    file.seek(SeekFrom::Start(keep as u64)).expect("seek");
    // Leave half a record behind for good measure: the reader must
    // treat it exactly like a torn append.
    file.write_all(b"{\"job\":").expect("torn tail writes");
}

#[test]
fn killed_daemon_resumes_byte_identically_with_exactly_once_delivery() {
    let spec = JobSpec::tiny_campaign(4242);
    let reference = reference_report(&spec);
    let spool_dir = scratch("main");

    // Phase 1: first daemon takes the job; the client acks two events;
    // then the daemon dies abruptly.
    let mut seen: BTreeSet<u64> = BTreeSet::new();
    let job;
    {
        let daemon = Daemon::start(DaemonConfig::new(&spool_dir)).expect("daemon A starts");
        let addr = daemon.local_addr().to_string();
        let mut client = Client::connect(&addr, 10_000).expect("client connects");
        job = client
            .submit(&spec)
            .expect("submit succeeds")
            .expect("queue has room");
        let stream = client.attach(job, 0).expect("attach succeeds");
        for event in stream.take(2) {
            let event = event.expect("early events stream cleanly");
            assert_eq!(event.kind, "progress");
            seen.insert(event.seq);
        }
        daemon.kill();
    }
    assert!(!seen.is_empty(), "need at least one acked event before the kill");

    // Widen the crash window: whatever the journal's last record was,
    // tear it off. The checkpoint on disk is now strictly ahead of the
    // journal, exactly as if the power died between rename and append.
    tear_last_journal_line(&spool_dir, job);

    // Phase 2: a fresh daemon over the same spool must reconcile the
    // journal, resume the campaign, and finish. The reattached client
    // replays from its last acked seq.
    let daemon = Daemon::start(DaemonConfig::new(&spool_dir)).expect("daemon B starts");
    let addr = daemon.local_addr().to_string();
    let from_seq = seen.last().map_or(0, |s| s + 1);
    let mut client =
        Client::connect_backoff(&addr, 20_000, 5, 10, 4242).expect("client reconnects");
    let mut done_body = None;
    for event in client.attach(job, from_seq).expect("reattach succeeds") {
        let event = event.expect("resumed stream is clean");
        assert!(
            seen.insert(event.seq),
            "seq {} delivered twice across the crash",
            event.seq
        );
        assert_eq!(event.job, job);
        match event.kind.as_str() {
            "progress" => {}
            "done" => done_body = Some(event.body),
            other => panic!("unexpected terminal event {other:?}"),
        }
    }
    daemon.kill();

    // Exactly-once: the union of pre-kill and post-restart deliveries
    // is dense from 0 with no duplicates (insert() above caught those).
    let n = seen.len() as u64;
    assert!(
        seen.iter().copied().eq(0..n),
        "event seqs have gaps: {seen:?}"
    );

    // Byte-identical resume: the daemon's final report equals the
    // uninterrupted local run, byte for byte.
    let done_body = done_body.expect("stream ended with a done event");
    assert_eq!(
        done_body, reference,
        "resumed report diverged from the uninterrupted reference"
    );

    // And the spool agrees with what was streamed.
    let spool = Spool::open(&spool_dir).expect("spool reopens");
    assert_eq!(spool.read_done(job).as_deref(), Some(reference.as_str()));
    let _ = std::fs::remove_dir_all(&spool_dir);
}

#[test]
fn restart_with_no_checkpoint_reruns_from_scratch_deterministically() {
    // Kill so early that no checkpoint exists yet: recovery must rerun
    // the job from the spec alone and still match the reference.
    let spec = JobSpec::tiny_campaign(99);
    let reference = reference_report(&spec);
    let spool_dir = scratch("early");

    let job;
    {
        let daemon = Daemon::start(DaemonConfig::new(&spool_dir)).expect("daemon starts");
        let addr = daemon.local_addr().to_string();
        let mut client = Client::connect(&addr, 10_000).expect("client connects");
        job = client
            .submit(&spec)
            .expect("submit succeeds")
            .expect("queue has room");
        // No attach, no waiting: kill immediately. The job may have
        // progressed arbitrarily far — or not started.
        daemon.kill();
    }

    let daemon = Daemon::start(DaemonConfig::new(&spool_dir)).expect("daemon restarts");
    let addr = daemon.local_addr().to_string();
    let mut client = Client::connect(&addr, 20_000).expect("client reconnects");
    let mut done_body = None;
    let mut seqs = Vec::new();
    for event in client.attach(job, 0).expect("attach succeeds") {
        let event = event.expect("stream is clean");
        seqs.push(event.seq);
        if event.kind == "done" {
            done_body = Some(event.body);
        }
    }
    daemon.kill();

    assert_eq!(
        done_body.as_deref(),
        Some(reference.as_str()),
        "from-scratch rerun diverged"
    );
    let dense: Vec<u64> = (0..seqs.len() as u64).collect();
    assert_eq!(seqs, dense, "replayed journal is not dense from 0");
    let _ = std::fs::remove_dir_all(&spool_dir);
}
