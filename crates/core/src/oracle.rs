//! Expected-state oracle.
//!
//! The platform tracks, per logical sector, the content of the last
//! **acknowledged** write and which request wrote it. After recovery the
//! Analyzer compares what the device actually returns against this
//! expectation — the in-simulation equivalent of the paper's checksum
//! bookkeeping (initial / data / final checksums of Fig 2).

use pfault_flash::array::PageData;
use pfault_sim::{DetHashMap, Lba};

/// Last acknowledged content of one sector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectorVersion {
    /// The content the host believes is stored.
    pub data: PageData,
    /// The request that wrote it.
    pub writer: u64,
}

/// Expected contents of the device, from the host's point of view.
#[derive(Debug, Clone, Default)]
pub struct Oracle {
    acked: DetHashMap<Lba, SectorVersion>,
}

impl Oracle {
    /// Creates an empty oracle (freshly erased device).
    pub fn new() -> Self {
        Oracle::default()
    }

    /// Expected content of `lba`, if any acknowledged write covered it.
    pub fn expected(&self, lba: Lba) -> Option<SectorVersion> {
        self.acked.get(&lba).copied()
    }

    /// Records that request `writer`'s write of `data` to `lba` was
    /// acknowledged.
    pub fn acknowledge_write(&mut self, lba: Lba, data: PageData, writer: u64) {
        self.acked.insert(lba, SectorVersion { data, writer });
    }

    /// Number of sectors with acknowledged content.
    pub fn len(&self) -> usize {
        self.acked.len()
    }

    /// Whether nothing has been acknowledged yet.
    pub fn is_empty(&self) -> bool {
        self.acked.is_empty()
    }

    /// Iterates `(lba, version)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Lba, SectorVersion)> + '_ {
        self.acked.iter().map(|(&l, &v)| (l, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(tag: u64) -> PageData {
        PageData::from_tag(tag)
    }

    #[test]
    fn acknowledge_and_lookup() {
        let mut o = Oracle::new();
        assert!(o.is_empty());
        o.acknowledge_write(Lba::new(5), data(1), 100);
        let v = o.expected(Lba::new(5)).unwrap();
        assert_eq!(v.data, data(1));
        assert_eq!(v.writer, 100);
        assert_eq!(o.expected(Lba::new(6)), None);
    }

    #[test]
    fn later_ack_supersedes_earlier() {
        let mut o = Oracle::new();
        o.acknowledge_write(Lba::new(5), data(1), 100);
        o.acknowledge_write(Lba::new(5), data(2), 200);
        let v = o.expected(Lba::new(5)).unwrap();
        assert_eq!(v.writer, 200);
        assert_eq!(o.len(), 1);
    }

    #[test]
    fn iter_covers_all_sectors() {
        let mut o = Oracle::new();
        for i in 0..10 {
            o.acknowledge_write(Lba::new(i), data(i), i);
        }
        assert_eq!(o.iter().count(), 10);
    }
}
