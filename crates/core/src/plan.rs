//! Adaptive campaign planning: confidence-driven stopping, stratified
//! allocation over the fault-site census, and importance splitting for
//! deep-tail estimates.
//!
//! The paper's campaigns sample outage instants uniformly, which wastes
//! nearly every trial once the failure rate drops below ~1e-3 (supercap
//! vendors, CRC-verifying firmware, double-fault tails). This module is
//! the redesigned sizing surface for every campaign in the workspace:
//!
//! * [`PlanSpec`] — the single typed description of how a point is
//!   sized: `Fixed` (the classic trial count), `Confidence` (adaptive
//!   rounds until the Wilson — and optionally Clopper-Pearson —
//!   interval on the failure rate is tighter than a requested
//!   half-width), or `Splitting` (multilevel importance splitting for
//!   deep tails, with level thresholds chosen deterministically from
//!   pilot rounds).
//! * [`Planner`] — the round-allocation policy: given the per-stratum
//!   tallies so far, how many more trials does each stratum get?
//! * [`PlanState`] — the resumable planner state (tallies, round
//!   index, current round targets, splitting levels). Campaigns embed
//!   it in their reports so checkpoint v6 can pause and resume an
//!   adaptive run byte-identically.
//! * [`PlanReport`] — per-point n, p̂, intervals, and the strata
//!   breakdown; same seed + same spec ⇒ byte-identical report, across
//!   the serial, striped, and work-stealing engines.
//!
//! Determinism rules (also in DESIGN.md §16): every planner decision is
//! a pure function of `(spec, tallies)`; trial outcomes are pure
//! functions of `(stratum, index)`; rounds absorb results in canonical
//! `(stratum, index)` order regardless of engine; splitting level
//! thresholds are order statistics of deterministic pilot batches. No
//! wall clock, no OS entropy, no thread-arrival dependence.

use std::sync::mpsc;

use serde::{Deserialize, Serialize};

use crate::error::PlatformError;
use crate::scheduler;

/// Default confidence level when a spec does not carry one.
pub const DEFAULT_CONFIDENCE: f64 = 0.95;
/// Default minimum trials before a confidence-driven point may stop.
pub const DEFAULT_MIN_TRIALS: u64 = 32;
/// Default trial-budget ceiling for confidence-driven points.
pub const DEFAULT_MAX_TRIALS: u64 = 1 << 20;
/// Default per-round increment for confidence-driven points.
pub const DEFAULT_ROUND: u64 = 64;
/// Default pilot-batch size per splitting level.
pub const DEFAULT_PILOT: u64 = 256;
/// Default estimation-batch size per splitting level.
pub const DEFAULT_PER_LEVEL: u64 = 512;
/// Pilot quantile used to place splitting level thresholds.
const SPLIT_QUANTILE: f64 = 0.8;
/// Rejection-sampling attempt budget per splitting phase.
const SPLIT_PHASE_BUDGET: u64 = 2_000_000;
/// Hard cap on planner rounds (backstop against degenerate specs).
const MAX_ROUNDS: u64 = 100_000;

// ---------------------------------------------------------------------------
// Binomial confidence intervals
// ---------------------------------------------------------------------------

/// A two-sided confidence interval on a proportion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    /// Lower bound, in `[0, 1]`.
    pub lo: f64,
    /// Upper bound, in `[0, 1]`.
    pub hi: f64,
}

impl Interval {
    /// The full-uncertainty interval `[0, 1]`.
    pub fn full() -> Interval {
        Interval { lo: 0.0, hi: 1.0 }
    }

    /// Half the interval width — the quantity confidence-driven
    /// stopping compares against the requested precision.
    pub fn half_width(&self) -> f64 {
        (self.hi - self.lo) / 2.0
    }

    /// Whether `p` lies inside the interval (inclusive).
    pub fn covers(&self, p: f64) -> bool {
        self.lo <= p && p <= self.hi
    }
}

/// Standard-normal quantile (inverse CDF) via the Acklam rational
/// approximation — |relative error| < 1.15e-9 over (0, 1), which is far
/// below the statistical noise of any campaign this plans.
fn z_quantile(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0);
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// The z score for a two-sided interval at `confidence`.
fn z_for(confidence: f64) -> f64 {
    let c = confidence.clamp(0.5, 1.0 - 1e-12);
    z_quantile(1.0 - (1.0 - c) / 2.0)
}

/// Wilson score interval for `failures` successes out of `trials`.
///
/// The Wilson interval has near-nominal coverage down to very small p,
/// never escapes `[0, 1]`, and is the primary stopping criterion for
/// confidence-driven plans. `trials == 0` yields `[0, 1]`.
pub fn wilson(failures: u64, trials: u64, confidence: f64) -> Interval {
    if trials == 0 {
        return Interval::full();
    }
    let n = trials as f64;
    let p = failures as f64 / n;
    let z = z_for(confidence);
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    // At k=0 / k=n the bounds are exactly 0 / 1 analytically; pin them
    // so float rounding cannot exclude the sample proportion.
    Interval {
        lo: if failures == 0 {
            0.0
        } else {
            (center - half).max(0.0)
        },
        hi: if failures >= trials {
            1.0
        } else {
            (center + half).min(1.0)
        },
    }
}

/// `P(X <= k)` for `X ~ Binomial(n, p)`, computed with a log-space pmf
/// recurrence and streaming log-sum-exp so it neither under- nor
/// overflows for any `n` a campaign can reach.
fn binom_cdf(k: u64, n: u64, p: f64) -> f64 {
    if p <= 0.0 {
        return 1.0;
    }
    if p >= 1.0 {
        return if k >= n { 1.0 } else { 0.0 };
    }
    if k >= n {
        return 1.0;
    }
    let lp = p.ln();
    let lq = (1.0 - p).ln();
    // log pmf(0) = n * ln(1 - p); recurrence:
    // log pmf(i+1) = log pmf(i) + ln(n-i) - ln(i+1) + ln p - ln(1-p)
    let mut log_term = n as f64 * lq;
    let mut max_log = log_term;
    let mut scaled_sum = 1.0f64; // sum of exp(log_term - max_log)
    for i in 0..k {
        log_term += ((n - i) as f64).ln() - ((i + 1) as f64).ln() + lp - lq;
        if log_term > max_log {
            scaled_sum = scaled_sum * (max_log - log_term).exp() + 1.0;
            max_log = log_term;
        } else {
            scaled_sum += (log_term - max_log).exp();
        }
    }
    (max_log + scaled_sum.ln()).exp().min(1.0)
}

/// Clopper-Pearson "exact" interval for `failures` out of `trials`.
///
/// Guaranteed coverage at every `(n, p)` (at the price of conservatism)
/// — the optional second gate for confidence-driven stopping, and the
/// interval the proptests verify exhaustively. Bounds are found by
/// bisection on the binomial CDF, which is deterministic.
pub fn clopper_pearson(failures: u64, trials: u64, confidence: f64) -> Interval {
    if trials == 0 {
        return Interval::full();
    }
    let alpha = (1.0 - confidence.clamp(0.5, 1.0 - 1e-12)) / 2.0;
    let k = failures.min(trials);
    let lo = if k == 0 {
        0.0
    } else {
        // Largest p with P(X >= k) <= alpha, i.e. P(X <= k-1) >= 1 - alpha.
        bisect(|p| binom_cdf(k - 1, trials, p) - (1.0 - alpha))
    };
    let hi = if k == trials {
        1.0
    } else {
        // Smallest p with P(X <= k) <= alpha.
        bisect(|p| binom_cdf(k, trials, p) - alpha)
    };
    Interval { lo, hi }
}

/// Root of a monotone-decreasing function of p on `[0, 1]` by fixed
/// 80-iteration bisection (resolution ~1e-24, far past f64 precision).
fn bisect(f: impl Fn(f64) -> f64) -> f64 {
    let mut lo = 0.0f64;
    let mut hi = 1.0f64;
    for _ in 0..80 {
        let mid = (lo + hi) / 2.0;
        if f(mid) >= 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (lo + hi) / 2.0
}

// ---------------------------------------------------------------------------
// PlanSpec — the sizing spec for one campaign/experiment point
// ---------------------------------------------------------------------------

/// How a campaign point is sized. This is the single way trial counts
/// are expressed across the workspace: `Campaign::builder(..).plan(..)`,
/// `ExperimentOpts.plan`, `repro --plan`, and pfault-serve job specs
/// all carry one of these.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PlanSpec {
    /// Classic fixed-N sizing: exactly `trials` trials, allocated
    /// across strata by largest-remainder apportionment of the weights
    /// (self-weighting, so the pooled estimate is unbiased).
    Fixed {
        /// Total trial count.
        trials: u64,
    },
    /// Adaptive sizing: run rounds of `round` trials (Neyman-allocated
    /// across strata) until the Wilson interval — and, when `exact` is
    /// set, also the Clopper-Pearson interval — has half-width at most
    /// `half_width`, subject to `min_trials`/`max_trials`.
    Confidence {
        /// Target interval half-width on the failure rate.
        half_width: f64,
        /// Two-sided confidence level, e.g. `0.95`.
        confidence: f64,
        /// Also require the Clopper-Pearson interval to be tight.
        exact: bool,
        /// Never stop before this many trials.
        min_trials: u64,
        /// Hard budget: stop (unconverged) at this many trials.
        max_trials: u64,
        /// Trials added per adaptive round.
        round: u64,
    },
    /// Multilevel importance splitting for deep-tail probabilities:
    /// `levels` nested severity thresholds, each placed at a fixed
    /// quantile of a deterministic pilot batch, each conditional
    /// probability estimated on a fresh batch of `per_level` samples.
    Splitting {
        /// Number of nested levels (the last threshold is 1.0).
        levels: u32,
        /// Pilot samples per level used to place the threshold.
        pilot: u64,
        /// Estimation samples per level.
        per_level: u64,
    },
}

impl PlanSpec {
    /// Fixed-N sizing — the drop-in replacement for a bare trial count.
    pub fn fixed(trials: u64) -> PlanSpec {
        PlanSpec::Fixed { trials }
    }

    /// Confidence-driven sizing with default round/budget parameters.
    pub fn ci(half_width: f64, confidence: f64) -> PlanSpec {
        PlanSpec::Confidence {
            half_width,
            confidence,
            exact: false,
            min_trials: DEFAULT_MIN_TRIALS,
            max_trials: DEFAULT_MAX_TRIALS,
            round: DEFAULT_ROUND,
        }
    }

    /// Importance-splitting sizing with default batch sizes.
    pub fn split(levels: u32) -> PlanSpec {
        PlanSpec::Splitting {
            levels,
            pilot: DEFAULT_PILOT,
            per_level: DEFAULT_PER_LEVEL,
        }
    }

    /// The confidence level this spec reports intervals at.
    pub fn confidence(&self) -> f64 {
        match *self {
            PlanSpec::Confidence { confidence, .. } => confidence,
            _ => DEFAULT_CONFIDENCE,
        }
    }

    /// Upper bound on the trials this spec may run — what budgeting
    /// surfaces (serve job rows, progress denominators) display.
    pub fn trial_budget(&self) -> u64 {
        match *self {
            PlanSpec::Fixed { trials } => trials,
            PlanSpec::Confidence { max_trials, .. } => max_trials,
            PlanSpec::Splitting {
                levels,
                pilot,
                per_level,
            } => (pilot + per_level) * u64::from(levels),
        }
    }

    /// Parses the CLI form: `fixed:N`, `ci:EPS[:CONF]`, `split:LEVELS`.
    pub fn parse(text: &str) -> Result<PlanSpec, String> {
        let mut parts = text.split(':');
        let kind = parts.next().unwrap_or("");
        let rest: Vec<&str> = parts.collect();
        match kind {
            "fixed" => {
                let [n] = rest[..] else {
                    return Err(format!("expected fixed:N, got `{text}`"));
                };
                let trials = n
                    .parse::<u64>()
                    .map_err(|_| format!("bad trial count `{n}` in `{text}`"))?;
                if trials == 0 {
                    return Err("fixed plan needs at least 1 trial".to_string());
                }
                Ok(PlanSpec::fixed(trials))
            }
            "ci" => {
                let (eps, conf) = match rest[..] {
                    [eps] => (eps, None),
                    [eps, conf] => (eps, Some(conf)),
                    _ => return Err(format!("expected ci:EPS[:CONF], got `{text}`")),
                };
                let half_width = eps
                    .parse::<f64>()
                    .map_err(|_| format!("bad half-width `{eps}` in `{text}`"))?;
                let confidence = match conf {
                    None => DEFAULT_CONFIDENCE,
                    Some(c) => c
                        .parse::<f64>()
                        .map_err(|_| format!("bad confidence `{c}` in `{text}`"))?,
                };
                let spec = PlanSpec::ci(half_width, confidence);
                spec.validate().map_err(|e| e.to_string())?;
                Ok(spec)
            }
            "split" => {
                let [levels] = rest[..] else {
                    return Err(format!("expected split:LEVELS, got `{text}`"));
                };
                let levels = levels
                    .parse::<u32>()
                    .map_err(|_| format!("bad level count `{levels}` in `{text}`"))?;
                let spec = PlanSpec::split(levels);
                spec.validate().map_err(|e| e.to_string())?;
                Ok(spec)
            }
            other => Err(format!(
                "unknown plan kind `{other}` (expected fixed:N, ci:EPS[:CONF], or split:LEVELS)"
            )),
        }
    }

    /// Renders the canonical CLI form (inverse of [`PlanSpec::parse`]
    /// for specs expressible there).
    pub fn render(&self) -> String {
        match *self {
            PlanSpec::Fixed { trials } => format!("fixed:{trials}"),
            PlanSpec::Confidence {
                half_width,
                confidence,
                ..
            } => format!("ci:{half_width}:{confidence}"),
            PlanSpec::Splitting { levels, .. } => format!("split:{levels}"),
        }
    }

    /// Rejects degenerate specs before any trial runs.
    pub fn validate(&self) -> Result<(), PlatformError> {
        let bad = |why: String| Err(PlatformError::InvalidConfig(why));
        match *self {
            PlanSpec::Fixed { trials } => {
                if trials == 0 {
                    return bad("fixed plan needs at least 1 trial".to_string());
                }
            }
            PlanSpec::Confidence {
                half_width,
                confidence,
                min_trials,
                max_trials,
                round,
                ..
            } => {
                if !(half_width > 0.0 && half_width < 0.5) {
                    return bad(format!("half-width {half_width} must be in (0, 0.5)"));
                }
                if !(0.5..1.0).contains(&confidence) {
                    return bad(format!("confidence {confidence} must be in [0.5, 1)"));
                }
                if round == 0 {
                    return bad("round size must be at least 1".to_string());
                }
                if max_trials == 0 || max_trials < min_trials {
                    return bad(format!(
                        "max_trials {max_trials} must be >= min_trials {min_trials} and > 0"
                    ));
                }
            }
            PlanSpec::Splitting {
                levels,
                pilot,
                per_level,
            } => {
                if levels == 0 {
                    return bad("splitting needs at least 1 level".to_string());
                }
                if pilot < 8 || per_level < 8 {
                    return bad("splitting pilot/per_level batches must be >= 8".to_string());
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Planner state: tallies, rounds, targets
// ---------------------------------------------------------------------------

/// Exact per-stratum tally: weight, trials run, failures seen.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StratumTally {
    /// Stratum label (e.g. a fault-site name from the census).
    pub name: String,
    /// Normalized sampling weight of the stratum in the population.
    pub weight: f64,
    /// Trials run in this stratum so far.
    pub trials: u64,
    /// Failures observed in this stratum so far.
    pub failures: u64,
}

impl StratumTally {
    /// Raw per-stratum failure-rate estimate (0 when unsampled).
    pub fn p_hat(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.failures as f64 / self.trials as f64
        }
    }

    /// Observed per-trial standard deviation `√(p̂(1-p̂))` — what Neyman
    /// allocation weighs. Used only for allocation, never for
    /// estimation, so the recombined estimate stays unbiased. Zero
    /// until the stratum has at least one failure (and one success),
    /// which is exactly when forced exploration takes over.
    fn sigma(&self) -> f64 {
        let p = self.p_hat();
        (p * (1.0 - p)).sqrt()
    }
}

/// Resumable planner state. Campaigns persist this inside
/// [`crate::campaign::CampaignReport`] (checkpoint v6), so an adaptive
/// run paused mid-round resumes byte-identically: the `targets` the
/// current round is running toward are part of the state, and every
/// allocation decision is recomputed as a pure function of the tallies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanState {
    /// The spec this state executes.
    pub spec: PlanSpec,
    /// Completed allocation rounds (round 1 is scheduled at creation).
    pub round: u64,
    /// Per-stratum tallies, in stable stratum order.
    pub strata: Vec<StratumTally>,
    /// Per-stratum cumulative trial targets for the current round.
    pub targets: Vec<u64>,
    /// Splitting level thresholds chosen so far (empty otherwise).
    pub levels: Vec<f64>,
    /// Whether the planner has converged or exhausted its budget.
    pub done: bool,
}

impl PlanState {
    /// Creates planner state over the given `(name, weight)` strata and
    /// schedules the first round. Weights are normalized; they must be
    /// positive and finite.
    pub fn new(spec: PlanSpec, strata: Vec<(String, f64)>) -> Result<PlanState, PlatformError> {
        spec.validate()?;
        if strata.is_empty() {
            return Err(PlatformError::InvalidConfig(
                "plan needs at least one stratum".to_string(),
            ));
        }
        let total: f64 = strata.iter().map(|(_, w)| *w).sum();
        if total.is_nan() || total <= 0.0 || strata.iter().any(|(_, w)| *w <= 0.0 || !w.is_finite()) {
            return Err(PlatformError::InvalidConfig(
                "stratum weights must be positive and finite".to_string(),
            ));
        }
        let n = strata.len();
        let mut state = PlanState {
            spec,
            round: 0,
            strata: strata
                .into_iter()
                .map(|(name, w)| StratumTally {
                    name,
                    weight: w / total,
                    trials: 0,
                    failures: 0,
                })
                .collect(),
            targets: vec![0; n],
            levels: Vec::new(),
            done: false,
        };
        state.advance()?;
        Ok(state)
    }

    /// Single-stratum state — what a whole-campaign plan uses.
    pub fn single(spec: PlanSpec) -> Result<PlanState, PlatformError> {
        PlanState::new(spec, vec![("all".to_string(), 1.0)])
    }

    /// Records one trial outcome in `stratum`.
    pub fn absorb(&mut self, stratum: usize, failed: bool) {
        let tally = &mut self.strata[stratum];
        tally.trials += 1;
        if failed {
            tally.failures += 1;
        }
    }

    /// Whether every stratum has reached its current round target.
    pub fn round_complete(&self) -> bool {
        self.strata
            .iter()
            .zip(&self.targets)
            .all(|(t, &target)| t.trials >= target)
    }

    /// Runs the planner decision at a round boundary: either extends
    /// the targets for another round or marks the state done. A pure
    /// function of `(spec, tallies)`, so serial/striped/stealing
    /// engines and paused/resumed runs all take identical decisions.
    pub fn advance(&mut self) -> Result<(), PlatformError> {
        if self.done {
            return Ok(());
        }
        let planner = planner_for(self.spec)?;
        let add = planner.next_round(self);
        if add.iter().all(|&a| a == 0) {
            self.done = true;
        } else {
            for (target, a) in self.targets.iter_mut().zip(&add) {
                *target += a;
            }
            self.round += 1;
            if self.round >= MAX_ROUNDS {
                self.done = true;
            }
        }
        Ok(())
    }

    /// Total trials across strata.
    pub fn total_trials(&self) -> u64 {
        self.strata.iter().map(|t| t.trials).sum()
    }

    /// Total failures across strata.
    pub fn total_failures(&self) -> u64 {
        self.strata.iter().map(|t| t.failures).sum()
    }

    /// Unbiased stratified estimate `p̂ = Σ w_h p̂_h`.
    pub fn p_hat(&self) -> f64 {
        self.strata.iter().map(|t| t.weight * t.p_hat()).sum()
    }

    /// Stratified variance `Σ w_h² p̂_h (1-p̂_h) / n_h`; `None` until
    /// every stratum has been sampled at least once.
    fn stratified_variance(&self) -> Option<f64> {
        if self.strata.iter().any(|t| t.trials == 0) {
            return None;
        }
        Some(
            self.strata
                .iter()
                .map(|t| {
                    let p = t.p_hat();
                    t.weight * t.weight * p * (1.0 - p) / t.trials as f64
                })
                .sum(),
        )
    }

    /// Effective sample size behind the stratified estimate: the n a
    /// simple-random-sample campaign would need for the same variance.
    /// Collapses to the exact total for a single stratum.
    fn effective_n(&self) -> u64 {
        let total = self.total_trials();
        if self.strata.len() == 1 {
            return total;
        }
        let p = self.p_hat();
        match self.stratified_variance() {
            Some(var) if var > 0.0 && p > 0.0 && p < 1.0 => {
                let n_eff = p * (1.0 - p) / var;
                (n_eff.round() as u64).max(total.max(1))
            }
            _ => total,
        }
    }

    /// Wilson interval on the stratified estimate, via the effective
    /// sample size. For a single stratum this is the exact Wilson
    /// interval on the pooled tallies.
    pub fn interval(&self) -> Interval {
        self.interval_at(self.spec.confidence())
    }

    fn interval_at(&self, confidence: f64) -> Interval {
        if self.strata.iter().any(|t| t.trials == 0) {
            return Interval::full();
        }
        if self.strata.len() == 1 {
            let t = &self.strata[0];
            return wilson(t.failures, t.trials, confidence);
        }
        let n_eff = self.effective_n();
        let k_eff = ((self.p_hat() * n_eff as f64).round() as u64).min(n_eff);
        wilson(k_eff, n_eff, confidence)
    }

    /// Clopper-Pearson counterpart of [`PlanState::interval`].
    pub fn exact_interval(&self) -> Interval {
        if self.strata.iter().any(|t| t.trials == 0) {
            return Interval::full();
        }
        let confidence = self.spec.confidence();
        if self.strata.len() == 1 {
            let t = &self.strata[0];
            return clopper_pearson(t.failures, t.trials, confidence);
        }
        let n_eff = self.effective_n();
        let k_eff = ((self.p_hat() * n_eff as f64).round() as u64).min(n_eff);
        clopper_pearson(k_eff, n_eff, confidence)
    }

    /// Whether the confidence stopping rule is satisfied right now.
    fn converged(&self) -> bool {
        let PlanSpec::Confidence {
            half_width,
            exact,
            min_trials,
            ..
        } = self.spec
        else {
            return false;
        };
        if self.total_trials() < min_trials || self.strata.iter().any(|t| t.trials == 0) {
            return false;
        }
        if self.interval().half_width() > half_width {
            return false;
        }
        !exact || self.exact_interval().half_width() <= half_width
    }

    /// Snapshot of the final (or in-flight) results as a [`PlanReport`].
    pub fn report(&self) -> PlanReport {
        let exact = matches!(self.spec, PlanSpec::Confidence { exact: true, .. });
        PlanReport {
            spec: self.spec,
            trials: self.total_trials(),
            failures: self.total_failures(),
            p_hat: self.p_hat(),
            wilson: self.interval(),
            clopper_pearson: if exact {
                Some(self.exact_interval())
            } else {
                None
            },
            rounds: self.round,
            strata: self.strata.clone(),
            levels: Vec::new(),
            tail_estimate: None,
        }
    }

    /// One-line convergence summary for progress streams.
    pub fn progress_line(&self) -> String {
        let iv = self.interval();
        format!(
            "round {} n={} p^={:.6} ci=[{:.6},{:.6}] hw={:.6}{}",
            self.round,
            self.total_trials(),
            self.p_hat(),
            iv.lo,
            iv.hi,
            iv.half_width(),
            if self.done { " done" } else { "" }
        )
    }
}

// ---------------------------------------------------------------------------
// Planner trait — round-allocation policy
// ---------------------------------------------------------------------------

/// A round-allocation policy: given the tallies so far, how many more
/// trials does each stratum get? Returning all zeros (or an empty
/// vector) stops the point. Implementations must be pure functions of
/// the state — no clocks, no entropy — so that every engine and every
/// pause/resume boundary reproduces the same decision.
pub trait Planner {
    /// The spec this planner executes.
    fn spec(&self) -> PlanSpec;

    /// Additional trials per stratum for the next round; all-zero or
    /// empty means stop.
    fn next_round(&self, state: &PlanState) -> Vec<u64>;
}

/// Deterministic largest-remainder apportionment of `total` trials over
/// non-negative `shares` (ties broken by lower index).
fn apportion(total: u64, shares: &[f64]) -> Vec<u64> {
    let sum: f64 = shares.iter().sum();
    if total == 0 || sum.is_nan() || sum <= 0.0 {
        return vec![0; shares.len()];
    }
    let mut alloc: Vec<u64> = Vec::with_capacity(shares.len());
    let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(shares.len());
    let mut assigned = 0u64;
    for (i, &s) in shares.iter().enumerate() {
        let ideal = total as f64 * (s / sum);
        let floor = ideal.floor() as u64;
        alloc.push(floor);
        assigned += floor;
        remainders.push((i, ideal - floor as f64));
    }
    // Distribute the leftover to the largest remainders; stable sort +
    // index tie-break keeps this deterministic.
    remainders.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let mut leftover = total - assigned;
    for (i, _) in remainders {
        if leftover == 0 {
            break;
        }
        alloc[i] += 1;
        leftover -= 1;
    }
    alloc
}

/// Fixed-N policy: one round, weights apportioned exactly.
struct FixedPlanner {
    trials: u64,
}

impl Planner for FixedPlanner {
    fn spec(&self) -> PlanSpec {
        PlanSpec::fixed(self.trials)
    }

    fn next_round(&self, state: &PlanState) -> Vec<u64> {
        if state.round > 0 {
            return Vec::new();
        }
        let shares: Vec<f64> = state.strata.iter().map(|t| t.weight).collect();
        apportion(self.trials, &shares)
    }
}

/// Confidence-driven policy: even first round (so every stratum gets
/// pilot coverage), then each round splits 3:1 between *exploitation* —
/// Neyman allocation `n_h ∝ w_h σ̂_h` on the observed standard
/// deviations — and *forced exploration* — least-sampled-first
/// (`∝ 1/(n_h+1)`), so a stratum whose failures simply have not shown
/// up yet keeps accruing trials instead of being starved by its zero
/// σ̂. While no stratum has any observed variance at all, the whole
/// round explores. Runs until the interval is tight or the budget is
/// exhausted.
struct ConfidencePlanner {
    spec: PlanSpec,
}

/// Fraction of each post-pilot round (as a divisor) spent on forced
/// exploration rather than Neyman exploitation.
const EXPLORE_DIV: u64 = 4;

impl Planner for ConfidencePlanner {
    fn spec(&self) -> PlanSpec {
        self.spec
    }

    fn next_round(&self, state: &PlanState) -> Vec<u64> {
        let PlanSpec::Confidence {
            max_trials, round, ..
        } = self.spec
        else {
            return Vec::new();
        };
        let total = state.total_trials();
        if total >= max_trials || state.converged() {
            return Vec::new();
        }
        let batch = round.min(max_trials - total);
        let k = state.strata.len() as u64;
        if state.round == 0 {
            // Pilot round: even coverage, at least one trial each.
            let each = (batch.max(k)) / k;
            let extra = (batch.max(k)) % k;
            return (0..state.strata.len())
                .map(|i| each + u64::from((i as u64) < extra))
                .collect();
        }
        let exploit: Vec<f64> = state
            .strata
            .iter()
            .map(|t| t.weight * t.sigma())
            .collect();
        let explore: Vec<f64> = state
            .strata
            .iter()
            .map(|t| 1.0 / (t.trials as f64 + 1.0))
            .collect();
        let exploit_total: f64 = exploit.iter().sum();
        if exploit_total.is_nan() || exploit_total <= 0.0 {
            // Nothing has observed variance yet: the best move is to
            // keep hunting for the first failure, least-sampled first.
            return apportion(batch, &explore);
        }
        let explore_batch = batch / EXPLORE_DIV;
        let mut alloc = apportion(batch - explore_batch, &exploit);
        for (a, e) in alloc.iter_mut().zip(apportion(explore_batch, &explore)) {
            *a += e;
        }
        alloc
    }
}

/// The policy for a spec. Splitting is not a round/tally policy — it
/// needs severity values, not pass/fail bits — so it is rejected here
/// and handled by [`run_plan`]'s dedicated driver.
pub fn planner_for(spec: PlanSpec) -> Result<Box<dyn Planner>, PlatformError> {
    spec.validate()?;
    match spec {
        PlanSpec::Fixed { trials } => Ok(Box::new(FixedPlanner { trials })),
        PlanSpec::Confidence { .. } => Ok(Box::new(ConfidencePlanner { spec })),
        PlanSpec::Splitting { .. } => Err(PlatformError::InvalidConfig(
            "splitting plans need a severity source; use plan::run_plan on a PlanPoint".to_string(),
        )),
    }
}

// ---------------------------------------------------------------------------
// PlanReport
// ---------------------------------------------------------------------------

/// One splitting level: its threshold, sampling effort, and the
/// estimated conditional probability of exceeding it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelReport {
    /// Severity threshold for this level (the last level is 1.0).
    pub threshold: f64,
    /// Rejection-sampling attempts spent on this level (pilot + estimation).
    pub attempts: u64,
    /// Accepted estimation samples.
    pub samples: u64,
    /// Estimation samples at or above the threshold.
    pub passed: u64,
    /// Conditional estimate `passed / samples`.
    pub conditional: f64,
}

/// The planner's verdict for one point: how many trials ran, the
/// failure-rate estimate with its interval(s), and the per-stratum
/// breakdown. Same seed + same spec ⇒ byte-identical report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanReport {
    /// The spec that sized this point.
    pub spec: PlanSpec,
    /// Trials actually run (for splitting: severity evaluations).
    pub trials: u64,
    /// Failures observed.
    pub failures: u64,
    /// Stratified failure-rate estimate (for splitting: the tail product).
    pub p_hat: f64,
    /// Wilson interval at the spec's confidence.
    pub wilson: Interval,
    /// Clopper-Pearson interval when the spec requests the exact gate.
    pub clopper_pearson: Option<Interval>,
    /// Allocation rounds run (for splitting: levels).
    pub rounds: u64,
    /// Per-stratum tallies.
    pub strata: Vec<StratumTally>,
    /// Splitting levels (empty for fixed/confidence plans).
    pub levels: Vec<LevelReport>,
    /// Product-of-conditionals tail estimate (splitting only).
    pub tail_estimate: Option<f64>,
}

// ---------------------------------------------------------------------------
// PlanPoint + engines — running a plan over a microtrial point
// ---------------------------------------------------------------------------

/// A point the planner can sample: a stable set of weighted strata and
/// a deterministic severity function. `severity(h, i)` must be a pure
/// function of `(h, i)` (fold any seed into the point itself): values
/// `>= 1.0` are failures, values in `(0, 1)` measure how close trial
/// `i` came to failing — the resolution importance splitting climbs.
pub trait PlanPoint: Sync {
    /// Stable `(name, weight)` strata; weights need not be normalized.
    fn strata(&self) -> Vec<(String, f64)>;

    /// Deterministic severity of trial `index` within `stratum`.
    fn severity(&self, stratum: usize, index: u64) -> f64;
}

/// Which execution engine runs each round's trial batch. All three
/// produce byte-identical reports: results are absorbed in canonical
/// `(stratum, index)` order no matter which thread computed them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanEngine {
    /// One thread, in order.
    Serial,
    /// Static round-robin striping across threads.
    Striped {
        /// Worker thread count.
        threads: usize,
    },
    /// Work-stealing scheduler (chunked deques, canonical reduce).
    Stealing {
        /// Worker thread count.
        threads: usize,
    },
}

/// Runs `spec` over `point` and returns the final report.
///
/// Fixed and confidence specs run in adaptive rounds; splitting specs
/// run the multilevel driver (always serial — each level's batch is
/// conditioned on the previous threshold). `seed` only feeds the
/// splitting mixture sampler; round-based plans are fully determined by
/// the point itself.
pub fn run_plan<P: PlanPoint>(
    point: &P,
    spec: PlanSpec,
    seed: u64,
    engine: PlanEngine,
) -> Result<PlanReport, PlatformError> {
    if matches!(spec, PlanSpec::Splitting { .. }) {
        return run_splitting(point, spec, seed);
    }
    let mut state = PlanState::new(spec, point.strata())?;
    while !state.done {
        // Jobs this round, in canonical (stratum, index) order.
        let mut jobs: Vec<(usize, u64)> = Vec::new();
        for (h, (tally, &target)) in state.strata.iter().zip(&state.targets).enumerate() {
            for i in tally.trials..target {
                jobs.push((h, i));
            }
        }
        let bits = run_round(point, &jobs, engine);
        for (&(h, _), failed) in jobs.iter().zip(bits) {
            state.absorb(h, failed);
        }
        state.advance()?;
    }
    Ok(state.report())
}

/// Executes one round's jobs on the chosen engine, returning pass/fail
/// bits in the same canonical order as `jobs`.
fn run_round<P: PlanPoint>(point: &P, jobs: &[(usize, u64)], engine: PlanEngine) -> Vec<bool> {
    let eval = |&(h, i): &(usize, u64)| point.severity(h, i) >= 1.0;
    match engine {
        PlanEngine::Serial => jobs.iter().map(eval).collect(),
        PlanEngine::Striped { threads } => {
            let workers = threads.max(1).min(jobs.len().max(1));
            if workers <= 1 {
                return jobs.iter().map(eval).collect();
            }
            let mut bits = vec![false; jobs.len()];
            let (tx, rx) = mpsc::channel::<(usize, bool)>();
            std::thread::scope(|scope| {
                for w in 0..workers {
                    let tx = tx.clone();
                    scope.spawn(move || {
                        let mut j = w;
                        while j < jobs.len() {
                            let _ = tx.send((j, eval(&jobs[j])));
                            j += workers;
                        }
                    });
                }
                drop(tx);
                for (j, bit) in rx {
                    bits[j] = bit;
                }
            });
            bits
        }
        PlanEngine::Stealing { threads } => {
            let (bits, _stats) = scheduler::run_work_stealing(
                jobs.len() as u64,
                threads.max(1),
                scheduler::DEFAULT_CHUNK,
                |i| eval(&jobs[i as usize]),
                Vec::with_capacity(jobs.len()),
                |acc: &mut Vec<bool>, _i, bit| acc.push(bit),
            );
            bits
        }
    }
}

// ---------------------------------------------------------------------------
// Importance splitting
// ---------------------------------------------------------------------------

/// Multilevel splitting driver. Level thresholds are order statistics
/// of deterministic pilot batches (DESIGN.md §16 spells out the rules);
/// each level's conditional probability is estimated on a fresh batch,
/// conditioned on the previous threshold by rejection sampling over a
/// dedicated deterministic index stream. The tail estimate is the
/// product of the per-level conditionals.
fn run_splitting<P: PlanPoint>(
    point: &P,
    spec: PlanSpec,
    seed: u64,
) -> Result<PlanReport, PlatformError> {
    let PlanSpec::Splitting {
        levels,
        pilot,
        per_level,
    } = spec
    else {
        return Err(PlatformError::InvalidConfig(
            "run_splitting called with a non-splitting spec".to_string(),
        ));
    };
    spec.validate()?;
    let raw = point.strata();
    let mut state = PlanState {
        spec,
        round: 0,
        strata: Vec::new(),
        targets: Vec::new(),
        levels: Vec::new(),
        done: false,
    };
    {
        // Reuse PlanState::new's weight validation/normalization.
        let normalized = PlanState::new(PlanSpec::fixed(1), raw)?;
        state.strata = normalized.strata;
        state.strata.iter_mut().for_each(|t| {
            t.trials = 0;
            t.failures = 0;
        });
        state.targets = vec![0; state.strata.len()];
    }
    let weights: Vec<f64> = state.strata.iter().map(|t| t.weight).collect();

    // Every severity evaluation consumes a globally unique attempt
    // index: the mixture pick and the trial itself both derive from it,
    // so no trial is ever replayed across levels or phases.
    let mut attempt: u64 = 0;
    let draw = |attempt: &mut u64,
                state: &mut PlanState,
                floor: f64,
                want: u64,
                budget: u64|
     -> Vec<f64> {
        let mut out = Vec::with_capacity(want as usize);
        let mut spent = 0u64;
        while (out.len() as u64) < want && spent < budget {
            let mut rng = pfault_sim::DetRng::new(seed)
                .fork("plan-split-mix")
                .fork_index(*attempt);
            let h = weighted_pick(&mut rng, &weights);
            let s = point.severity(h, *attempt);
            state.strata[h].trials += 1;
            if s >= 1.0 {
                state.strata[h].failures += 1;
            }
            *attempt += 1;
            spent += 1;
            if s > floor {
                out.push(s);
            }
        }
        out
    };

    let confidence = spec.confidence();
    let mut floor = 0.0f64;
    let mut product = 1.0f64;
    let mut iv_lo = 1.0f64;
    let mut iv_hi = 1.0f64;
    let mut level_reports: Vec<LevelReport> = Vec::new();
    for level in 0..levels {
        let attempts_before = attempt;
        let last = level + 1 == levels;
        let threshold = if last {
            1.0
        } else {
            let mut samples = draw(&mut attempt, &mut state, floor, pilot, SPLIT_PHASE_BUDGET);
            if samples.is_empty() {
                1.0 // pilot found nothing past the floor: jump straight to failure
            } else {
                samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                let t = quantile(&samples, SPLIT_QUANTILE).min(1.0);
                if t > floor {
                    t
                } else {
                    1.0
                }
            }
        };
        let est = draw(&mut attempt, &mut state, floor, per_level, SPLIT_PHASE_BUDGET);
        let samples = est.len() as u64;
        let passed = est.iter().filter(|&&s| s >= threshold).count() as u64;
        let conditional = if samples == 0 {
            0.0
        } else {
            passed as f64 / samples as f64
        };
        product *= conditional;
        let iv = wilson(passed, samples, confidence);
        iv_lo *= iv.lo;
        iv_hi *= iv.hi;
        level_reports.push(LevelReport {
            threshold,
            attempts: attempt - attempts_before,
            samples,
            passed,
            conditional,
        });
        state.levels.push(threshold);
        state.round += 1;
        floor = threshold;
        if conditional <= 0.0 || (threshold - 1.0).abs() < f64::EPSILON {
            break;
        }
    }
    state.done = true;

    Ok(PlanReport {
        spec,
        trials: attempt,
        failures: state.total_failures(),
        p_hat: product,
        // Product of per-level Wilson bounds: conservative but
        // deterministic, and honest about multi-level uncertainty.
        wilson: Interval {
            lo: iv_lo.clamp(0.0, 1.0),
            hi: iv_hi.clamp(0.0, 1.0),
        },
        clopper_pearson: None,
        rounds: u64::from(levels.min(level_reports.len() as u32)),
        strata: state.strata.clone(),
        levels: level_reports,
        tail_estimate: Some(product),
    })
}

/// Nearest-rank quantile of an ascending-sorted slice.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Weighted stratum pick from a unit draw (weights normalized).
fn weighted_pick(rng: &mut pfault_sim::DetRng, weights: &[f64]) -> usize {
    let u = rng.unit_f64();
    let mut acc = 0.0;
    for (i, &w) in weights.iter().enumerate() {
        acc += w;
        if u < acc {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wilson_matches_known_values() {
        // k=1, n=10 at 95%: textbook Wilson interval ~ [0.0179, 0.4041].
        let iv = wilson(1, 10, 0.95);
        assert!((iv.lo - 0.017876).abs() < 1e-4, "lo={}", iv.lo);
        assert!((iv.hi - 0.404155).abs() < 1e-4, "hi={}", iv.hi);
        assert_eq!(wilson(0, 0, 0.95), Interval::full());
    }

    #[test]
    fn clopper_pearson_matches_known_values() {
        // k=0, n=20 at 95%: upper bound = 1 - (alpha/2)^(1/20) ~ 0.16843.
        let iv = clopper_pearson(0, 20, 0.95);
        assert_eq!(iv.lo, 0.0);
        assert!((iv.hi - 0.16843).abs() < 1e-4, "hi={}", iv.hi);
        // Symmetry: k=n mirrors k=0.
        let iv = clopper_pearson(20, 20, 0.95);
        assert_eq!(iv.hi, 1.0);
        assert!((iv.lo - (1.0 - 0.16843)).abs() < 1e-4, "lo={}", iv.lo);
    }

    #[test]
    fn binom_cdf_is_sane() {
        assert!((binom_cdf(5, 10, 0.5) - 0.623046875).abs() < 1e-12);
        assert!((binom_cdf(10, 10, 0.5) - 1.0).abs() < 1e-12);
        // Large n must not underflow to zero.
        let c = binom_cdf(400, 1_000_000, 0.0005);
        assert!(c > 0.0 && c < 1.0, "cdf={c}");
    }

    #[test]
    fn spec_parse_and_render_roundtrip() {
        let s = PlanSpec::parse("fixed:300").unwrap();
        assert_eq!(s, PlanSpec::fixed(300));
        assert_eq!(PlanSpec::parse(&s.render()).unwrap(), s);

        let s = PlanSpec::parse("ci:0.01").unwrap();
        assert_eq!(
            s,
            PlanSpec::ci(0.01, DEFAULT_CONFIDENCE),
            "ci defaults confidence"
        );
        let s = PlanSpec::parse("ci:0.02:0.99").unwrap();
        assert_eq!(s, PlanSpec::ci(0.02, 0.99));
        assert_eq!(PlanSpec::parse(&s.render()).unwrap(), s);

        let s = PlanSpec::parse("split:4").unwrap();
        assert_eq!(s, PlanSpec::split(4));
        assert_eq!(PlanSpec::parse(&s.render()).unwrap(), s);

        for bad in ["", "fixed", "fixed:0", "ci:0.9", "ci:abc", "split:0", "nope:3"] {
            assert!(PlanSpec::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn apportion_is_exact_and_deterministic() {
        let a = apportion(10, &[0.5, 0.3, 0.2]);
        assert_eq!(a.iter().sum::<u64>(), 10);
        assert_eq!(a, vec![5, 3, 2]);
        let b = apportion(7, &[1.0, 1.0, 1.0]);
        assert_eq!(b.iter().sum::<u64>(), 7);
        assert_eq!(b, vec![3, 2, 2], "tie-break by lower index");
        assert_eq!(apportion(0, &[1.0]), vec![0]);
    }

    /// A synthetic point: stratum 0 never fails, stratum 1 fails iff a
    /// deterministic hash of the index clears a threshold.
    struct TwoStrata {
        fail_one_in: u64,
    }

    impl PlanPoint for TwoStrata {
        fn strata(&self) -> Vec<(String, f64)> {
            vec![("safe".to_string(), 0.9), ("hot".to_string(), 0.1)]
        }

        fn severity(&self, stratum: usize, index: u64) -> f64 {
            let mut rng = pfault_sim::DetRng::new(0xabcd)
                .fork("two-strata")
                .fork_index(stratum as u64)
                .fork_index(index);
            if stratum == 0 {
                0.25 * rng.unit_f64()
            } else if rng.below(self.fail_one_in) == 0 {
                1.0
            } else {
                0.25 + 0.5 * rng.unit_f64()
            }
        }
    }

    #[test]
    fn engines_agree_byte_for_byte() {
        let point = TwoStrata { fail_one_in: 8 };
        let spec = PlanSpec::ci(0.05, 0.95);
        let serial = run_plan(&point, spec, 7, PlanEngine::Serial).unwrap();
        let striped = run_plan(&point, spec, 7, PlanEngine::Striped { threads: 4 }).unwrap();
        let stealing = run_plan(&point, spec, 7, PlanEngine::Stealing { threads: 4 }).unwrap();
        let s0 = serde_json::to_string(&serial).unwrap();
        assert_eq!(s0, serde_json::to_string(&striped).unwrap());
        assert_eq!(s0, serde_json::to_string(&stealing).unwrap());
        assert!(serial.trials >= DEFAULT_MIN_TRIALS);
        assert!(serial.wilson.half_width() <= 0.05);
    }

    #[test]
    fn fixed_plan_runs_exactly_n_trials_apportioned_by_weight() {
        let point = TwoStrata { fail_one_in: 4 };
        let report = run_plan(&point, PlanSpec::fixed(100), 1, PlanEngine::Serial).unwrap();
        assert_eq!(report.trials, 100);
        assert_eq!(report.strata[0].trials, 90);
        assert_eq!(report.strata[1].trials, 10);
        assert_eq!(report.rounds, 1);
    }

    #[test]
    fn confidence_plan_stops_when_tight_and_respects_budget() {
        let point = TwoStrata { fail_one_in: 4 };
        let spec = PlanSpec::Confidence {
            half_width: 0.01,
            confidence: 0.95,
            exact: false,
            min_trials: 16,
            max_trials: 50_000,
            round: 32,
        };
        let report = run_plan(&point, spec, 3, PlanEngine::Serial).unwrap();
        assert!(report.wilson.half_width() <= 0.01);
        assert!(report.trials <= 50_000);
        assert!(report.rounds >= 2, "should take multiple rounds");

        // An unreachable precision must stop exactly at the budget.
        let capped = PlanSpec::Confidence {
            half_width: 1e-6,
            confidence: 0.95,
            exact: false,
            min_trials: 16,
            max_trials: 500,
            round: 64,
        };
        let report = run_plan(&point, capped, 3, PlanEngine::Serial).unwrap();
        assert_eq!(report.trials, 500);
    }

    #[test]
    fn single_stratum_interval_is_exact_wilson() {
        let mut state = PlanState::single(PlanSpec::ci(0.1, 0.95)).unwrap();
        for i in 0..40 {
            state.absorb(0, i % 10 == 0);
        }
        assert_eq!(state.interval(), wilson(4, 40, 0.95));
        assert_eq!(state.exact_interval(), clopper_pearson(4, 40, 0.95));
    }

    #[test]
    fn splitting_is_deterministic_with_increasing_levels() {
        let point = TwoStrata { fail_one_in: 64 };
        let spec = PlanSpec::Splitting {
            levels: 3,
            pilot: 64,
            per_level: 128,
        };
        let a = run_plan(&point, spec, 11, PlanEngine::Serial).unwrap();
        let b = run_plan(&point, spec, 11, PlanEngine::Serial).unwrap();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        let thresholds: Vec<f64> = a.levels.iter().map(|l| l.threshold).collect();
        assert!(
            thresholds.windows(2).all(|w| w[0] < w[1] || w[1] == 1.0),
            "levels must ascend: {thresholds:?}"
        );
        assert_eq!(thresholds.last().copied(), Some(1.0));
        let tail = a.tail_estimate.unwrap();
        assert!(tail > 0.0 && tail < 1.0, "tail={tail}");
        // The tail product should agree with the true rate
        // (0.1 * 1/64 ~ 1.6e-3) within an order of magnitude.
        assert!(tail > 1.6e-4 && tail < 1.6e-2, "tail={tail}");
    }

    #[test]
    fn splitting_rejected_by_round_planner() {
        assert!(matches!(
            planner_for(PlanSpec::split(3)),
            Err(PlatformError::InvalidConfig(_))
        ));
    }

    #[test]
    fn state_survives_json_roundtrip() {
        let mut state = PlanState::single(PlanSpec::ci(0.05, 0.99)).unwrap();
        state.absorb(0, true);
        state.absorb(0, false);
        let text = serde_json::to_string(&state).unwrap();
        let back: PlanState = serde_json::from_str(&text).unwrap();
        assert_eq!(back, state);
    }
}
