//! Fig 6 — impact of workload working-set size.
//!
//! The paper sweeps WSS from 1 GB to 90 GB (random writes, 4 KiB–1 MiB)
//! and finds **no significant effect** on failures per fault: what matters
//! is the volatile state resident at fault time, not how wide the
//! addresses range. Expected shape: a flat line.

use serde::{Deserialize, Serialize};

use pfault_sim::storage::GIB;
use pfault_workload::WorkloadSpec;

use crate::experiments::{base_trial, campaign_at, ExperimentScale};
use crate::report::{fnum, Table};

/// One swept WSS point.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct WssRow {
    /// Working-set size in GiB (paper x-axis).
    pub wss_gib: u64,
    /// Faults injected.
    pub faults: u64,
    /// Data failures (excluding FWA).
    pub data_failures: u64,
    /// Data failures per fault.
    pub data_failure_per_fault: f64,
}

/// Full Fig 6 report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WssReport {
    /// One row per WSS point.
    pub rows: Vec<WssRow>,
}

impl WssReport {
    /// Renders the paper-style table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(["WSS (GiB)", "faults", "data failures", "data failure/fault"]);
        for r in &self.rows {
            t.push_row([
                r.wss_gib.to_string(),
                r.faults.to_string(),
                r.data_failures.to_string(),
                fnum(r.data_failure_per_fault, 2),
            ]);
        }
        t
    }

    /// Ratio of the largest to the smallest per-fault rate across the
    /// sweep — the paper's claim is that this stays near 1.
    pub fn spread_ratio(&self) -> f64 {
        let rates: Vec<f64> = self.rows.iter().map(|r| r.data_failure_per_fault).collect();
        let max = rates.iter().cloned().fold(f64::MIN, f64::max);
        let min = rates.iter().cloned().fold(f64::MAX, f64::min);
        if min <= 0.0 {
            return f64::INFINITY;
        }
        max / min
    }
}

impl core::fmt::Display for WssReport {
    /// Renders the report as its aligned table.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.table().render())
    }
}

/// Runs the Fig 6 sweep. `points` selects which of the paper's WSS values
/// {1, 10, 20, 30, 40, 50, 60, 70, 80, 90} GiB to run (pass `None` for
/// all).
pub fn run(scale: ExperimentScale, seed: u64, points: Option<&[u64]>) -> WssReport {
    let all = [1u64, 10, 20, 30, 40, 50, 60, 70, 80, 90];
    let chosen: Vec<u64> = match points {
        Some(p) => p.to_vec(),
        None => all.to_vec(),
    };
    let rows = chosen
        .iter()
        .map(|&wss_gib| {
            let mut trial = base_trial();
            trial.workload = WorkloadSpec::builder()
                .wss_bytes(wss_gib * GIB)
                .write_fraction(1.0)
                .build();
            let report = super::run_point(campaign_at(trial, scale), seed ^ (wss_gib << 8), scale);
            WssRow {
                wss_gib,
                faults: report.faults,
                data_failures: report.counts.data_failures,
                data_failure_per_fault: report.data_failures_per_fault(),
            }
        })
        .collect();
    WssReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spread_ratio_flat_and_degenerate() {
        let flat = WssReport {
            rows: vec![
                WssRow {
                    wss_gib: 1,
                    faults: 10,
                    data_failures: 20,
                    data_failure_per_fault: 2.0,
                },
                WssRow {
                    wss_gib: 90,
                    faults: 10,
                    data_failures: 22,
                    data_failure_per_fault: 2.2,
                },
            ],
        };
        assert!((flat.spread_ratio() - 1.1).abs() < 1e-12);
        let zero = WssReport {
            rows: vec![WssRow {
                wss_gib: 1,
                faults: 10,
                data_failures: 0,
                data_failure_per_fault: 0.0,
            }],
        };
        assert!(zero.spread_ratio().is_infinite());
        assert!(flat.to_string().contains("WSS (GiB)"));
    }
}
