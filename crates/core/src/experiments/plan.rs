//! Extension P — the adaptive campaign planner demonstrated end to end
//! (ROADMAP item 3).
//!
//! The paper sizes every campaign with a fixed trial count, which
//! wastes nearly every trial once failure rates drop below ~1e-3. This
//! experiment builds a *census-grounded* microtrial point from the
//! fault-site census (PR 2's sweep layer): each recorded site span
//! becomes a stratum (`site#occurrence`) weighted by the simulated time
//! it covers, and one deliberately rare span — the smallest stratum,
//! standing in for the §10 second-fault recovery window — carries all
//! of the failure probability, scaled so the *overall* rate is at most
//! `1e-3`.
//!
//! On that point it runs the three plan kinds and self-checks the
//! ROADMAP deliverable:
//!
//! 1. a fixed-N baseline ([`PlanSpec::fixed`]) establishes the
//!    confidence band a classic campaign buys with `FIXED_TRIALS`
//!    trials;
//! 2. a confidence-driven plan ([`PlanSpec::ci`]) targeting that same
//!    half-width must converge at **≥10x fewer trials** (Neyman
//!    allocation concentrates rounds on the rare stratum);
//! 3. the same adaptive plan re-run on the striped and work-stealing
//!    engines must produce byte-identical reports;
//! 4. an importance-splitting plan ([`PlanSpec::split`]) must place
//!    deterministic, strictly ascending level thresholds and land its
//!    deep-tail estimate within an order of magnitude of the known
//!    rate;
//! 5. a *real* planned campaign (actual fault-injection trials, not
//!    microtrials) must agree byte-for-byte between serial and
//!    threaded planned runs and across a mid-round checkpoint/resume.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use crate::campaign::{Campaign, CampaignReport, ProgressSignal};
use crate::error::PlatformError;
use crate::experiments::{base_trial, campaign_at, ExperimentScale};
use crate::plan::{run_plan, PlanEngine, PlanPoint, PlanReport, PlanSpec};
use crate::sweep::{SweepConfig, Sweeper};

/// Trials the fixed-N baseline spends. Microtrials are pure RNG draws,
/// so this is cheap; it only needs to be large enough that the baseline
/// band is meaningfully tight at a ~1e-3 failure rate.
const FIXED_TRIALS: u64 = 20_000;

/// Overall failure rate the point is tuned to (the ROADMAP deliverable
/// demands the 10x gain on a ≤1e-3 point).
const TARGET_RATE: f64 = 1e-3;

/// Per-stratum failure probability ceiling (keeps the rare stratum a
/// genuinely probabilistic microtrial even when its weight is tiny).
const MAX_SITE_RATE: f64 = 0.2;

/// A microtrial point stratified over the fault-site census: stratum
/// `h` fails with probability `rates[h]`, decided by a deterministic
/// per-`(h, index)` uniform draw. Severity is that draw rescaled so
/// `>= 1.0` means failure, which gives importance splitting a
/// continuous resolution to climb.
pub struct CensusPoint {
    strata: Vec<(String, f64)>,
    rates: Vec<f64>,
    seed: u64,
}

impl PlanPoint for CensusPoint {
    fn strata(&self) -> Vec<(String, f64)> {
        self.strata.clone()
    }

    fn severity(&self, stratum: usize, index: u64) -> f64 {
        let u = pfault_sim::DetRng::new(self.seed)
            .fork("plan-census-sev")
            .fork_index(stratum as u64)
            .fork_index(index)
            .unit_f64();
        // P(u >= 1 - p) = p, and the rescale keeps severity continuous
        // on [0, 1/(1-p)) so splitting thresholds have resolution.
        let p = self.rates[stratum];
        if p <= 0.0 {
            return u * (1.0 - f64::EPSILON);
        }
        u / (1.0 - p)
    }
}

impl CensusPoint {
    /// The exact overall failure rate `Σ w_h p_h` baked into the point.
    pub fn true_rate(&self) -> f64 {
        let total: f64 = self.strata.iter().map(|(_, w)| w).sum();
        self.strata
            .iter()
            .zip(&self.rates)
            .map(|((_, w), p)| (w / total) * p)
            .sum()
    }

    /// Name and normalized weight of the failing stratum.
    pub fn vulnerable(&self) -> (String, f64) {
        let total: f64 = self.strata.iter().map(|(_, w)| w).sum();
        let h = self
            .rates
            .iter()
            .position(|&p| p > 0.0)
            .unwrap_or_default();
        (self.strata[h].0.clone(), self.strata[h].1 / total)
    }
}

/// Builds the census point: runs the fault-free census trial from the
/// sweep layer and turns every recorded span into one stratum —
/// `site#occurrence`, weighted by its span time (+1µs so instantaneous
/// sites still weigh). The smallest-weight span plays the vulnerable
/// window (the §10 second-fault story: one specific narrow window is
/// where the damage hides) and gets a failure probability tuned so the
/// overall rate is `min(TARGET_RATE, MAX_SITE_RATE · w)`.
pub fn census_point(seed: u64) -> Result<CensusPoint, PlatformError> {
    let sweeper = Sweeper::new(SweepConfig::smoke(seed));
    let spans = sweeper.census()?;
    let mut by_span: BTreeMap<String, f64> = BTreeMap::new();
    for span in &spans {
        let micros = (span.end - span.start).as_micros() as f64;
        *by_span
            .entry(format!("{}#{:03}", span.site.name(), span.index))
            .or_insert(0.0) += micros + 1.0;
    }
    if by_span.len() < 2 {
        return Err(PlatformError::InvalidConfig(
            "census produced fewer than two fault-site spans; cannot stratify".to_string(),
        ));
    }
    let strata: Vec<(String, f64)> = by_span
        .iter()
        .map(|(name, w)| (name.clone(), *w))
        .collect();
    let total: f64 = strata.iter().map(|(_, w)| w).sum();
    // The rarest span plays the vulnerable one: all failure probability
    // lives there, scaled to hold the overall rate at TARGET_RATE.
    let mut vulnerable = 0usize;
    for (h, (_, w)) in strata.iter().enumerate() {
        if *w < strata[vulnerable].1 {
            vulnerable = h;
        }
    }
    let w_f = strata[vulnerable].1 / total;
    let rate = (TARGET_RATE / w_f).min(MAX_SITE_RATE);
    let mut rates = vec![0.0; strata.len()];
    rates[vulnerable] = rate;
    Ok(CensusPoint {
        strata,
        rates,
        seed,
    })
}

/// Everything the experiment measured, serialized as the JSON payload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlanExpReport {
    /// Strata in the census point (one per recorded site span).
    pub sites: u64,
    /// The exact overall failure rate baked into the point.
    pub true_rate: f64,
    /// The failing (rare) site's name.
    pub vulnerable_site: String,
    /// The failing site's normalized census weight.
    pub vulnerable_weight: f64,
    /// Fixed-N baseline run.
    pub fixed: PlanReport,
    /// Confidence-driven run targeting the baseline's half-width.
    pub adaptive: PlanReport,
    /// `fixed.trials / adaptive.trials` — must be ≥ 10.
    pub gain: f64,
    /// Serial/striped/stealing adaptive reports byte-equal.
    pub engines_agree: bool,
    /// Importance-splitting run on the same point.
    pub split: PlanReport,
    /// Two same-seed splitting runs byte-equal.
    pub split_deterministic: bool,
    /// Trials the real planned fault-injection campaign ran.
    pub campaign_trials: u64,
    /// Serial vs threaded planned campaign byte-equal.
    pub campaign_engines_agree: bool,
    /// Mid-round checkpoint/resume byte-equal to uninterrupted.
    pub campaign_resume_matches: bool,
}

fn report_bytes(report: &PlanReport) -> String {
    serde_json::to_string(report).unwrap_or_default()
}

fn campaign_bytes(report: &CampaignReport) -> String {
    serde_json::to_string(report).unwrap_or_default()
}

/// The small confidence spec the *real* campaign runs under — sized so
/// the planned fault-injection runs stay test-cheap at any scale.
fn campaign_ci_spec() -> PlanSpec {
    PlanSpec::Confidence {
        half_width: 0.45,
        confidence: 0.9,
        exact: false,
        min_trials: 9,
        max_trials: 24,
        round: 3,
    }
}

/// Runs the full extension: microtrial plans on the census point plus
/// the real planned campaign, all deterministically derived from
/// `seed`.
pub fn run(scale: ExperimentScale, seed: u64) -> Result<PlanExpReport, PlatformError> {
    let point = census_point(seed)?;
    let (vulnerable_site, vulnerable_weight) = point.vulnerable();

    // 1. Fixed-N baseline: the band a classic campaign buys.
    let fixed = run_plan(&point, PlanSpec::fixed(FIXED_TRIALS), seed, PlanEngine::Serial)?;

    // 2. Adaptive run targeting the baseline's achieved half-width.
    let eps = fixed.wilson.half_width();
    let adaptive_spec = PlanSpec::ci(eps, 0.95);
    let adaptive = run_plan(&point, adaptive_spec, seed, PlanEngine::Serial)?;
    let gain = fixed.trials as f64 / adaptive.trials.max(1) as f64;

    // 3. Engine byte-equality on the adaptive plan.
    let striped = run_plan(&point, adaptive_spec, seed, PlanEngine::Striped { threads: 3 })?;
    let stealing = run_plan(
        &point,
        adaptive_spec,
        seed,
        PlanEngine::Stealing { threads: 3 },
    )?;
    let engines_agree = report_bytes(&adaptive) == report_bytes(&striped)
        && report_bytes(&adaptive) == report_bytes(&stealing);

    // 4. Importance splitting, twice, for determinism.
    let split = run_plan(&point, PlanSpec::split(3), seed, PlanEngine::Serial)?;
    let split_again = run_plan(&point, PlanSpec::split(3), seed, PlanEngine::Serial)?;
    let split_deterministic = report_bytes(&split) == report_bytes(&split_again);

    // 5. The real thing: a planned fault-injection campaign, serial vs
    //    threaded, and a mid-round pause/resume.
    let config = campaign_at(base_trial(), scale);
    let serial = Campaign::builder(config)
        .plan(campaign_ci_spec())
        .seed(seed)
        .build()
        .run_planned()?;
    let threaded = Campaign::builder(config)
        .plan(campaign_ci_spec())
        .seed(seed)
        .threads(3)
        .build()
        .run_planned()?;
    let campaign_engines_agree = campaign_bytes(&serial) == campaign_bytes(&threaded);

    let dir = std::env::temp_dir().join("pfault-plan-exp");
    std::fs::create_dir_all(&dir)
        .map_err(|e| PlatformError::InvalidConfig(format!("temp dir for checkpoint: {e}")))?;
    let path = dir.join(format!("plan-exp-{}-{}.json", std::process::id(), seed));
    let _ = std::fs::remove_file(&path);
    let campaign = Campaign::builder(config)
        .plan(campaign_ci_spec())
        .seed(seed)
        .checkpoint(&path, 2)
        .build();
    // Pause after trial 4 — mid-round for the 3-wide rounds — so the
    // resume has to pick the planner back up inside a round.
    let paused = campaign.run_planned_observed(&mut |p| {
        if p.completed == 4 {
            ProgressSignal::Pause
        } else {
            ProgressSignal::Continue
        }
    })?;
    let resumed = if paused.paused {
        campaign
            .resume_planned_observed(&path, &mut |_| ProgressSignal::Continue)?
            .report
    } else {
        paused.report.clone()
    };
    let campaign_resume_matches = campaign_bytes(&resumed) == campaign_bytes(&serial);
    let _ = std::fs::remove_file(&path);

    Ok(PlanExpReport {
        sites: point.strata.len() as u64,
        true_rate: point.true_rate(),
        vulnerable_site,
        vulnerable_weight,
        fixed,
        adaptive,
        gain,
        engines_agree,
        split,
        split_deterministic,
        campaign_trials: serial.faults,
        campaign_engines_agree,
        campaign_resume_matches,
    })
}

/// Self-checks — every line of the ROADMAP deliverable, enforced.
pub fn check(report: &PlanExpReport) -> Vec<String> {
    let mut failures = Vec::new();
    let mut fail = |why: String| failures.push(format!("plan check failed: {why}"));

    if report.true_rate > TARGET_RATE * (1.0 + 1e-9) {
        fail(format!(
            "point failure rate {} exceeds the ≤{TARGET_RATE} deliverable",
            report.true_rate
        ));
    }
    if report.gain < 10.0 {
        fail(format!(
            "adaptive plan used {} trials vs fixed {} — gain {:.1}x is below 10x",
            report.adaptive.trials, report.fixed.trials, report.gain
        ));
    }
    let eps = report.fixed.wilson.half_width();
    if report.adaptive.wilson.half_width() > eps * (1.0 + 1e-9) {
        fail(format!(
            "adaptive half-width {} did not reach the fixed baseline's {eps}",
            report.adaptive.wilson.half_width()
        ));
    }
    if !report.adaptive.wilson.covers(report.adaptive.p_hat) {
        fail("adaptive interval does not cover its own estimate".to_string());
    }
    if !report.engines_agree {
        fail("serial/striped/stealing adaptive reports differ".to_string());
    }
    if !report.split_deterministic {
        fail("same-seed splitting runs differ".to_string());
    }
    let thresholds: Vec<f64> = report.split.levels.iter().map(|l| l.threshold).collect();
    if thresholds.windows(2).any(|w| w[1] <= w[0]) {
        fail(format!("splitting thresholds not ascending: {thresholds:?}"));
    }
    if thresholds.last().copied() != Some(1.0) {
        fail(format!("last splitting threshold must be 1.0: {thresholds:?}"));
    }
    match report.split.tail_estimate {
        Some(tail) if tail > 0.0 => {
            let ratio = tail / report.true_rate;
            if !(0.1..=10.0).contains(&ratio) {
                fail(format!(
                    "splitting tail estimate {tail} is more than 10x off the true rate {}",
                    report.true_rate
                ));
            }
        }
        _ => fail("splitting produced no positive tail estimate".to_string()),
    }
    if !report.campaign_engines_agree {
        fail("serial vs threaded planned campaigns differ".to_string());
    }
    if !report.campaign_resume_matches {
        fail("checkpoint/resume planned campaign differs from uninterrupted".to_string());
    }
    if report.campaign_trials == 0 {
        fail("planned campaign ran no trials".to_string());
    }
    failures
}

/// Human-readable rendering for the `repro` text output.
pub fn render(report: &PlanExpReport) -> String {
    let mut text = String::new();
    let _ = writeln!(
        text,
        "== Extension P: adaptive planner on a {}-site census point ==",
        report.sites
    );
    let _ = writeln!(
        text,
        "vulnerable site {} (weight {:.4}), true failure rate {:.2e}",
        report.vulnerable_site, report.vulnerable_weight, report.true_rate
    );
    let _ = writeln!(
        text,
        "fixed   {}: n={} p^={:.6} ci=[{:.6},{:.6}] hw={:.6}",
        report.fixed.spec.render(),
        report.fixed.trials,
        report.fixed.p_hat,
        report.fixed.wilson.lo,
        report.fixed.wilson.hi,
        report.fixed.wilson.half_width()
    );
    let _ = writeln!(
        text,
        "adaptive {}: n={} p^={:.6} ci=[{:.6},{:.6}] hw={:.6} ({} rounds)",
        report.adaptive.spec.render(),
        report.adaptive.trials,
        report.adaptive.p_hat,
        report.adaptive.wilson.lo,
        report.adaptive.wilson.hi,
        report.adaptive.wilson.half_width(),
        report.adaptive.rounds
    );
    let _ = writeln!(
        text,
        "gain: {:.1}x fewer trials at the same half-width (engines byte-equal: {})",
        report.gain, report.engines_agree
    );
    for (i, level) in report.split.levels.iter().enumerate() {
        let _ = writeln!(
            text,
            "split level {}: threshold {:.6} passed {}/{} (conditional {:.4})",
            i, level.threshold, level.passed, level.samples, level.conditional
        );
    }
    if let Some(tail) = report.split.tail_estimate {
        let _ = writeln!(
            text,
            "split tail estimate {:.3e} vs true rate {:.3e} (deterministic: {})",
            tail, report.true_rate, report.split_deterministic
        );
    }
    let _ = writeln!(
        text,
        "planned campaign: {} real trials; serial==threaded: {}, resume==uninterrupted: {}",
        report.campaign_trials, report.campaign_engines_agree, report.campaign_resume_matches
    );
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> ExperimentScale {
        ExperimentScale {
            faults_per_point: 3,
            requests_per_trial: 12,
            threads: 2,
        }
    }

    #[test]
    fn census_point_is_rare_and_stratified() {
        let point = census_point(20180429).expect("census");
        assert!(point.strata.len() >= 2);
        assert!(point.true_rate() <= TARGET_RATE * (1.0 + 1e-9));
        assert!(point.true_rate() > 0.0);
        let (_, w) = point.vulnerable();
        assert!(w > 0.0 && w < 1.0);
        // Severity is pure: same (h, i) twice gives the same value.
        assert_eq!(point.severity(0, 7), point.severity(0, 7));
    }

    #[test]
    fn extension_p_passes_its_own_checks() {
        let report = run(tiny_scale(), 20180429).expect("extension P runs");
        let failures = check(&report);
        assert!(failures.is_empty(), "{failures:?}");
        assert!(report.gain >= 10.0, "gain {:.1}", report.gain);
        let text = render(&report);
        assert!(text.contains("Extension P"));
        assert!(text.contains("gain"));
    }

    #[test]
    fn extension_p_is_deterministic() {
        let a = run(tiny_scale(), 7).expect("run a");
        let b = run(tiny_scale(), 7).expect("run b");
        assert_eq!(
            serde_json::to_string(&a.fixed).unwrap(),
            serde_json::to_string(&b.fixed).unwrap()
        );
        assert_eq!(
            serde_json::to_string(&a.adaptive).unwrap(),
            serde_json::to_string(&b.adaptive).unwrap()
        );
        assert_eq!(
            serde_json::to_string(&a.split).unwrap(),
            serde_json::to_string(&b.split).unwrap()
        );
    }
}
