//! §IV-D — impact of access pattern (random vs sequential).
//!
//! Two independent full-write workloads at 64 GB WSS, 4 KiB–1 MiB
//! requests: one uniform random, one sequential. The paper attributes the
//! sequential penalty to extent-compressed mapping entries ("FTL only
//! keeps the first address") and measures **≈14 % more data failures** for
//! the sequential workload. In this reproduction the penalty emerges from
//! the open extent of a hot sequential run being uncommittable while the
//! run grows.

use serde::{Deserialize, Serialize};

use pfault_sim::storage::GIB;
use pfault_workload::{AccessPattern, WorkloadSpec};

use crate::experiments::{base_trial, campaign_at, ExperimentScale};
use crate::report::{fnum, Table};

/// One pattern's results.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PatternRow {
    /// Whether this is the sequential workload.
    pub sequential: bool,
    /// Faults injected.
    pub faults: u64,
    /// Data failures + FWA (the paper's §IV-D "data failure" aggregate).
    pub data_loss: u64,
    /// Data-loss events per fault.
    pub data_loss_per_fault: f64,
}

/// Full §IV-D report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AccessPatternReport {
    /// Random-pattern results.
    pub random: PatternRow,
    /// Sequential-pattern results.
    pub sequential: PatternRow,
}

impl AccessPatternReport {
    /// Sequential excess over random, in percent (paper: ≈ +14 %).
    pub fn sequential_excess_pct(&self) -> f64 {
        if self.random.data_loss_per_fault <= 0.0 {
            return f64::INFINITY;
        }
        (self.sequential.data_loss_per_fault / self.random.data_loss_per_fault - 1.0) * 100.0
    }

    /// Renders the paper-style table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(["pattern", "faults", "data loss", "per fault"]);
        for r in [&self.random, &self.sequential] {
            t.push_row([
                if r.sequential { "sequential" } else { "random" }.to_string(),
                r.faults.to_string(),
                r.data_loss.to_string(),
                fnum(r.data_loss_per_fault, 2),
            ]);
        }
        t
    }
}

fn run_pattern(pattern: AccessPattern, scale: ExperimentScale, seed: u64) -> PatternRow {
    let mut trial = base_trial();
    trial.workload = WorkloadSpec::builder()
        .wss_bytes(64 * GIB)
        .write_fraction(1.0)
        .pattern(pattern)
        .build();
    let report = super::run_point(campaign_at(trial, scale), seed, scale);
    PatternRow {
        sequential: pattern == AccessPattern::Sequential,
        faults: report.faults,
        data_loss: report.counts.total_data_loss(),
        data_loss_per_fault: report.data_loss_per_fault(),
    }
}

impl core::fmt::Display for AccessPatternReport {
    /// Renders the report as its aligned table.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.table().render())
    }
}

/// Runs both workloads.
pub fn run(scale: ExperimentScale, seed: u64) -> AccessPatternReport {
    AccessPatternReport {
        random: run_pattern(AccessPattern::UniformRandom, scale, seed),
        sequential: run_pattern(AccessPattern::Sequential, scale, seed ^ 0x5E9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn excess_percentage() {
        let r = AccessPatternReport {
            random: PatternRow {
                sequential: false,
                faults: 10,
                data_loss: 100,
                data_loss_per_fault: 10.0,
            },
            sequential: PatternRow {
                sequential: true,
                faults: 10,
                data_loss: 114,
                data_loss_per_fault: 11.4,
            },
        };
        assert!((r.sequential_excess_pct() - 14.0).abs() < 1e-9);
        assert!(r.to_string().contains("sequential"));
        let degenerate = AccessPatternReport {
            random: PatternRow {
                sequential: false,
                faults: 1,
                data_loss: 0,
                data_loss_per_fault: 0.0,
            },
            sequential: PatternRow {
                sequential: true,
                faults: 1,
                data_loss: 1,
                data_loss_per_fault: 1.0,
            },
        };
        assert!(degenerate.sequential_excess_pct().is_infinite());
    }
}
