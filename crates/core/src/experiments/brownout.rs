//! Extension — transient voltage sags (brownouts).
//!
//! The paper injects complete outages only; real power incidents include
//! sags that recover on their own. This experiment sweeps the sag floor
//! across the device's voltage thresholds and measures what each depth
//! costs: nothing, in-flight IO errors only, or full volatile-state loss
//! despite power never actually going away.

use serde::{Deserialize, Serialize};

use pfault_power::{BrownoutEvent, BrownoutSeverity, Millivolts};
use pfault_sim::storage::GIB;
use pfault_sim::{DetRng, Lba, SectorCount, SimDuration};
use pfault_ssd::device::{HostCommand, Ssd, VerifiedContent};

use crate::experiments::{base_trial, ExperimentScale};
use crate::report::{fnum, Table};

/// One sag-depth point.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BrownoutRow {
    /// Sag floor, millivolts.
    pub floor_mv: u32,
    /// Classified severity at this depth.
    pub severity: BrownoutSeverity,
    /// Trials run.
    pub trials: u64,
    /// Trials in which at least one acknowledged write was lost.
    pub trials_with_data_loss: u64,
    /// In-flight commands errored across all trials.
    pub io_errors: u64,
}

/// Full brownout report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BrownoutReport {
    /// One row per sag depth.
    pub rows: Vec<BrownoutRow>,
}

impl BrownoutReport {
    /// Row at a given floor.
    pub fn at(&self, floor_mv: u32) -> Option<&BrownoutRow> {
        self.rows.iter().find(|r| r.floor_mv == floor_mv)
    }

    /// Renders the table.
    pub fn table(&self) -> Table {
        let mut t = Table::new([
            "floor (mV)",
            "severity",
            "trials",
            "trials w/ data loss",
            "IO errors",
            "loss rate",
        ]);
        for r in &self.rows {
            t.push_row([
                r.floor_mv.to_string(),
                format!("{:?}", r.severity),
                r.trials.to_string(),
                r.trials_with_data_loss.to_string(),
                r.io_errors.to_string(),
                fnum(r.trials_with_data_loss as f64 / r.trials.max(1) as f64, 2),
            ]);
        }
        t
    }
}

/// One sag trial: write a handful of requests, sag mid-stream, verify.
/// Returns `(data_lost, io_errors)`.
fn sag_trial(floor: Millivolts, seed: u64) -> (bool, u64) {
    let trial = base_trial();
    let root = DetRng::new(seed);
    let mut rng = root.fork("brownout");
    let mut ssd = Ssd::new(trial.ssd, root.fork("ssd"));
    let wss = 8 * GIB / 4096;

    // A few acknowledged writes, tracked for verification.
    let mut acked: Vec<HostCommand> = Vec::new();
    for id in 0..6u64 {
        let sectors = SectorCount::new(rng.between(1, 128));
        let lba = Lba::new(rng.below(wss - sectors.get()));
        let cmd = HostCommand::write(id, 0, lba, sectors, rng.next_u64());
        ssd.submit(cmd);
        loop {
            if ssd
                .drain_completions()
                .iter()
                .any(|c| c.request_id == id && c.acked())
            {
                break;
            }
            let next = ssd
                .next_event()
                .unwrap_or(ssd.now() + SimDuration::from_millis(1));
            ssd.advance_to(next.max(ssd.now() + SimDuration::from_micros(1)));
        }
        acked.push(cmd);
    }
    // One more command in flight when the sag begins.
    let inflight = HostCommand::write(
        99,
        0,
        Lba::new(rng.below(wss - 128)),
        SectorCount::new(128),
        1,
    );
    ssd.submit(inflight);

    let event = BrownoutEvent {
        start: ssd.now(),
        floor,
        sag: SimDuration::from_millis(2),
        recovery: SimDuration::from_millis(2),
    };
    ssd.apply_brownout(&event);
    let io_errors = ssd
        .drain_completions()
        .iter()
        .filter(|c| !c.acked())
        .count() as u64;

    // Settle and verify every acknowledged write.
    if ssd.is_operational() {
        ssd.quiesce();
    }
    let mut lost = false;
    for cmd in &acked {
        for i in 0..cmd.sectors.get() {
            let expected = cmd.sector_content(i);
            match ssd.verify_read(Lba::new(cmd.lba.index() + i)) {
                VerifiedContent::Written(d) if d == expected => {}
                _ => {
                    lost = true;
                    break;
                }
            }
        }
    }
    (lost, io_errors)
}

impl core::fmt::Display for BrownoutReport {
    /// Renders the report as its aligned table.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.table().render())
    }
}

/// Runs the sag-depth sweep.
pub fn run(scale: ExperimentScale, seed: u64) -> BrownoutReport {
    let floors = [4_600u32, 4_495, 3_500, 2_000];
    let trials = (scale.faults_per_point / 4).max(8) as u64;
    let rows = floors
        .iter()
        .map(|&floor_mv| {
            let severity = BrownoutEvent {
                start: pfault_sim::SimTime::ZERO,
                floor: Millivolts::new(floor_mv),
                sag: SimDuration::from_millis(2),
                recovery: SimDuration::from_millis(2),
            }
            .severity();
            let mut with_loss = 0;
            let mut io_errors = 0;
            for i in 0..trials {
                let (lost, errs) = sag_trial(
                    Millivolts::new(floor_mv),
                    seed ^ (u64::from(floor_mv) << 13) ^ i,
                );
                if lost {
                    with_loss += 1;
                }
                io_errors += errs;
            }
            BrownoutRow {
                floor_mv,
                severity,
                trials,
                trials_with_data_loss: with_loss,
                io_errors,
            }
        })
        .collect();
    BrownoutReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_and_render() {
        let r = BrownoutReport {
            rows: vec![BrownoutRow {
                floor_mv: 3_500,
                severity: BrownoutSeverity::ControllerReset,
                trials: 8,
                trials_with_data_loss: 8,
                io_errors: 8,
            }],
        };
        assert_eq!(r.at(3_500).unwrap().trials, 8);
        assert!(r.at(9_999).is_none());
        assert!(r.to_string().contains("ControllerReset"));
    }
}
