//! Extension J — recovery storms: power cuts during recovery itself.
//!
//! The paper's harness power-cycles drives thousands of times, and some
//! drives needed several cycles before they mounted again — which means
//! real outages land while the firmware is still *recovering* from the
//! previous one. This experiment sweeps the probability that another cut
//! strikes mid-recovery. The device runs the mechanistic recovery
//! pipeline (journal scan → mapping rebuild → dirty-page verify →
//! bad-block retirement) on worn media with a nonzero transient
//! mount-failure rate, so a storm exercises every terminal state:
//! resumed mounts, read-only degradation (spares exhausted or late
//! stages repeatedly dying after the map was rebuilt), and bricked
//! devices (retries exhausted before any usable map existed).
//!
//! Expected shape: interruptions and resumed mounts grow with the cut
//! rate, and read-only devices appear as a distinct terminal class
//! alongside bricks — degraded-but-readable is the common outcome, a
//! device that never returns the rare one.

use serde::{Deserialize, Serialize};

use crate::experiments::{base_trial, campaign_at, ExperimentScale};
use crate::report::Table;

/// One swept point: a cut-during-recovery probability.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StormRow {
    /// Probability that a mount attempt is struck by another cut.
    pub cut_rate: f64,
    /// Faults injected at this point.
    pub faults: u64,
    /// Recovery stages interrupted mid-flight by storm cuts (probe
    /// counter, over trials that eventually produced an outcome).
    pub interrupted_stages: u64,
    /// Mounts that resumed a previously interrupted recovery session.
    pub resumed_mounts: u64,
    /// Trials whose device came back degraded to read-only mode.
    pub read_only_devices: u64,
    /// Trials whose device never came back.
    pub bricked_devices: u64,
}

/// Full recovery-storm report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StormReport {
    /// One row per swept cut rate.
    pub rows: Vec<StormRow>,
}

impl StormReport {
    /// Total read-only degradations across all points.
    pub fn total_read_only(&self) -> u64 {
        self.rows.iter().map(|r| r.read_only_devices).sum()
    }

    /// Total resumed mounts across all points.
    pub fn total_resumed(&self) -> u64 {
        self.rows.iter().map(|r| r.resumed_mounts).sum()
    }

    /// Total mid-stage interruptions across all points.
    pub fn total_interrupted(&self) -> u64 {
        self.rows.iter().map(|r| r.interrupted_stages).sum()
    }

    /// Renders the table.
    pub fn table(&self) -> Table {
        let mut t = Table::new([
            "cut rate",
            "faults",
            "interrupted",
            "resumed",
            "read-only",
            "bricked",
        ]);
        for r in &self.rows {
            t.push_row([
                format!("{:.2}", r.cut_rate),
                r.faults.to_string(),
                r.interrupted_stages.to_string(),
                r.resumed_mounts.to_string(),
                r.read_only_devices.to_string(),
                r.bricked_devices.to_string(),
            ]);
        }
        t
    }
}

impl core::fmt::Display for StormReport {
    /// Renders the report as its aligned table.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.table().render())
    }
}

/// The storm device: end-of-life media (so the verify stage finds real
/// suspects), the full four-stage pipeline, a transient mount-failure
/// rate, and an empty spare pool for retirement to exhaust. The retry
/// ladder stays off here on purpose: its final rung reads at a fully
/// shifted reference (drift errors scaled to zero), so any ladder at all
/// rescues every wear-marginal page and retirement would never trigger —
/// the ladder-vs-retirement interplay is covered by the device tests.
fn storm_trial(cut_rate: f64) -> crate::platform::TrialConfig {
    let mut trial = base_trial();
    trial.ssd.baseline_wear = 2_900;
    trial.ssd.recovery_verify = true;
    trial.ssd.ftl.retire_bad_blocks = true;
    trial.ssd.ftl.spare_blocks = 0;
    trial.ssd.mount_failure_rate = 0.25;
    trial.ssd.mount_retry_limit = 3;
    trial.obs = true;
    trial.with_recovery_storm(cut_rate, 3)
}

/// Runs the storm sweep at the given scale.
pub fn run(scale: ExperimentScale, seed: u64) -> StormReport {
    let rates = [0.0, 0.5, 0.9];
    let rows = rates
        .iter()
        .map(|&cut_rate| {
            let report = super::run_point(campaign_at(storm_trial(cut_rate), scale), seed, scale);
            StormRow {
                cut_rate,
                faults: report.faults,
                interrupted_stages: report.obs.totals.counter("recovery.stage-interrupted"),
                resumed_mounts: report.obs.totals.counter("recovery.resumed"),
                read_only_devices: report.counts.read_only_devices,
                bricked_devices: report.counts.bricked_devices,
            }
        })
        .collect();
    StormReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentScale {
        ExperimentScale {
            faults_per_point: 6,
            requests_per_trial: 10,
            threads: 2,
        }
    }

    #[test]
    fn same_seed_storm_campaigns_are_byte_identical() {
        // Satellite: the whole storm — cuts during recovery, resumes,
        // degradations — replays bit-exactly from the seed.
        let a = run(tiny(), 4242);
        let b = run(tiny(), 4242);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "same-seed storm reports must be byte-identical"
        );
    }

    #[test]
    fn storm_produces_interruptions_and_degradations() {
        let report = run(tiny(), 7);
        let calm = &report.rows[0];
        // Rate 0.0 never interrupts a stage mid-flight; it can still
        // resume, because a *transiently failed* mount also checkpoints
        // its session and the next attempt picks it up.
        assert_eq!(calm.interrupted_stages, 0, "rate 0.0 never interrupts");
        assert!(
            report.total_interrupted() > 0,
            "storm rates must interrupt at least one recovery: {report}"
        );
        assert!(
            report.total_resumed() > 0,
            "interrupted recoveries must resume: {report}"
        );
        assert!(
            report.total_read_only() > 0,
            "worn media with a tiny spare pool must degrade at least one device: {report}"
        );
    }

    #[test]
    fn report_helpers() {
        let r = StormReport {
            rows: vec![StormRow {
                cut_rate: 0.5,
                faults: 10,
                interrupted_stages: 3,
                resumed_mounts: 3,
                read_only_devices: 2,
                bricked_devices: 1,
            }],
        };
        assert_eq!(r.total_read_only(), 2);
        assert_eq!(r.total_resumed(), 3);
        assert_eq!(r.total_interrupted(), 3);
        assert!(r.to_string().contains("read-only"));
    }
}
