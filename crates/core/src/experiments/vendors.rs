//! Table I — the three vendor drives under the same campaign.
//!
//! The paper examines six physical drives of three models; here each
//! Table I preset runs the default full-write campaign. Expected shape:
//! all three lose data (the paper found no immune consumer drive); the
//! TLC drive's stronger LDPC helps with raw-bit-error damage but not with
//! volatile-state loss.

use serde::{Deserialize, Serialize};

use pfault_sim::storage::GIB;
use pfault_ssd::VendorPreset;
use pfault_workload::WorkloadSpec;

use crate::experiments::{campaign_at, ExperimentScale};
use crate::platform::TrialConfig;
use crate::report::{fnum, Table};

/// One drive's results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VendorRow {
    /// The Table I preset.
    pub preset: VendorPreset,
    /// Display label.
    pub label: String,
    /// Faults injected.
    pub faults: u64,
    /// Data failures (excluding FWA).
    pub data_failures: u64,
    /// False write-acknowledges.
    pub fwa: u64,
    /// IO errors.
    pub io_errors: u64,
    /// Data loss per fault.
    pub data_loss_per_fault: f64,
}

/// Full Table I report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VendorReport {
    /// One row per drive.
    pub rows: Vec<VendorRow>,
}

impl VendorReport {
    /// Row for one preset.
    pub fn at(&self, preset: VendorPreset) -> Option<&VendorRow> {
        self.rows.iter().find(|r| r.preset == preset)
    }

    /// Renders the table.
    pub fn table(&self) -> Table {
        let mut t = Table::new([
            "drive",
            "faults",
            "data failures",
            "FWA",
            "IO errors",
            "loss/fault",
        ]);
        for r in &self.rows {
            t.push_row([
                r.label.clone(),
                r.faults.to_string(),
                r.data_failures.to_string(),
                r.fwa.to_string(),
                r.io_errors.to_string(),
                fnum(r.data_loss_per_fault, 2),
            ]);
        }
        t
    }
}

impl core::fmt::Display for VendorReport {
    /// Renders the report as its aligned table.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.table().render())
    }
}

/// Runs the campaign on every Table I drive.
pub fn run(scale: ExperimentScale, seed: u64) -> VendorReport {
    let rows = VendorPreset::all()
        .iter()
        .enumerate()
        .map(|(i, &preset)| {
            let mut trial = TrialConfig::paper_default();
            trial.ssd = preset.config();
            trial.workload = WorkloadSpec::builder()
                .wss_bytes(64 * GIB)
                .write_fraction(1.0)
                .build();
            let report =
                super::run_point(campaign_at(trial, scale), seed ^ ((i as u64 + 11) << 24), scale);
            VendorRow {
                preset,
                label: preset.label().to_string(),
                faults: report.faults,
                data_failures: report.counts.data_failures,
                fwa: report.counts.fwa,
                io_errors: report.counts.io_errors,
                data_loss_per_fault: report.data_loss_per_fault(),
            }
        })
        .collect();
    VendorReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_preset() {
        let r = VendorReport {
            rows: vec![VendorRow {
                preset: VendorPreset::SsdB,
                label: VendorPreset::SsdB.label().to_string(),
                faults: 5,
                data_failures: 7,
                fwa: 3,
                io_errors: 5,
                data_loss_per_fault: 2.0,
            }],
        };
        assert_eq!(r.at(VendorPreset::SsdB).unwrap().data_failures, 7);
        assert!(r.at(VendorPreset::SsdA).is_none());
        assert!(r.to_string().contains("TLC"));
    }
}
