//! Extension M — application-level consequences of device faults.
//!
//! The paper's oracle stops at request-level checksums. This experiment
//! stacks `pfault-kv`'s WAL'd store on the device, pulls the plug
//! mid-workload, and asks the question users actually face: does a torn
//! FTL journal *surface* as an application error, get *masked* by WAL
//! replay and checkpoint rollback, or *silently poison* the recovered
//! state — acknowledged data served wrong with no error anywhere?
//!
//! The sweep crosses the three vendor presets with the write cache
//! on/off and an early/late cut phase, cycling the production-shaped
//! workloads (WAL burst, checkpoint storm, multi-tenant mix). Every
//! point runs *paired* firmware arms at identical seeds: the
//! CRC-verifying firmware discards a torn journal batch whole, the
//! half-applying firmware (`verify_batch_crc = false`) applies the torn
//! prefix. The store's eager-seal checkpoint makes the difference
//! observable end to end — a half-applied checkpoint extent can anchor
//! recovery on a new seal over stale value sectors.
//!
//! Every trial is a pure function of `(config, seed)` with integer-only
//! tallies, so the report is byte-identical across the serial, striped,
//! and work-stealing engines — asserted at run time by re-reducing one
//! point on two engines.

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use pfault_kv::{run_kv_trial, KvTrialConfig, KvTrialOutcome, KvWorkloadKind};
use pfault_obs::{Metrics, ProbeEvent};
use pfault_sim::checksum::mix64;
use pfault_ssd::VendorPreset;

use crate::experiments::{EngineArg, ExperimentScale};
use crate::report::Table;

/// Integer tally of one firmware arm across a point's trials.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KvArmTally {
    /// Oracle-counted surfaced divergences (errors the app saw).
    pub surfaced: u64,
    /// Trials fully masked by WAL replay / checkpoint rollback.
    pub masked: u64,
    /// Oracle-counted silent-poison divergences (wrong data, no error).
    pub silent_poison: u64,
    /// Operations acknowledged durable before the cut.
    pub acked_ops: u64,
    /// WAL records replayed during recovery.
    pub replayed: u64,
    /// Torn journal pages the device recorded at the cut.
    pub torn_batches: u64,
    /// Host-side mount retries spent during recovery.
    pub mount_retries: u64,
    /// Trials that came back read-only.
    pub read_only: u64,
    /// Trials whose store never came back.
    pub failed: u64,
}

impl KvArmTally {
    fn absorb(&mut self, o: &KvTrialOutcome) {
        self.surfaced += o.surfaced;
        self.masked += o.masked;
        self.silent_poison += o.silent_poison;
        self.acked_ops += o.acked_ops;
        self.replayed += o.replay.replayed;
        self.torn_batches += o.journal_torn.len() as u64;
        self.mount_retries += o.mount_retries;
        self.read_only += u64::from(o.read_only);
        self.failed += u64::from(o.failed);
    }

    fn merge(&mut self, other: &KvArmTally) {
        self.surfaced += other.surfaced;
        self.masked += other.masked;
        self.silent_poison += other.silent_poison;
        self.acked_ops += other.acked_ops;
        self.replayed += other.replayed;
        self.torn_batches += other.torn_batches;
        self.mount_retries += other.mount_retries;
        self.read_only += other.read_only;
        self.failed += other.failed;
    }
}

/// Everything accumulated for one swept point: both firmware arms plus
/// the obs-pipeline counters derived from the half-applying arm's
/// application probe stream (kept separate so the two can cross-check).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KvPointAgg {
    /// Paired trials absorbed.
    pub trials: u64,
    /// The half-applying firmware (`verify_batch_crc = false`).
    pub loose: KvArmTally,
    /// The CRC-verifying firmware (discard-whole).
    pub strict: KvArmTally,
    /// `app.outcome` probe events seen (one per trial).
    pub obs_outcomes: u64,
    /// Surfaced count summed from `AppOutcome` probe payloads.
    pub obs_surfaced: u64,
    /// Masked count summed from `AppOutcome` probe payloads.
    pub obs_masked: u64,
    /// Silent-poison count summed from `AppOutcome` probe payloads.
    pub obs_poison: u64,
}

impl KvPointAgg {
    fn merge(&mut self, other: &KvPointAgg) {
        self.trials += other.trials;
        self.loose.merge(&other.loose);
        self.strict.merge(&other.strict);
        self.obs_outcomes += other.obs_outcomes;
        self.obs_surfaced += other.obs_surfaced;
        self.obs_masked += other.obs_masked;
        self.obs_poison += other.obs_poison;
    }
}

/// One swept point of the KV experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KvRow {
    /// Vendor preset ("A", "B", "C").
    pub vendor: String,
    /// Write cache enabled.
    pub cache: bool,
    /// Cut phase in ‰ of the op stream.
    pub phase: u64,
    /// Workload label ("wal-burst", "ckpt-storm", "multi-tenant").
    pub workload: String,
    /// Paired trials merged into this row.
    pub trials: u64,
    /// Half-applying firmware tally.
    pub loose: KvArmTally,
    /// CRC-verifying firmware tally.
    pub strict: KvArmTally,
}

/// Full Extension M report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KvReport {
    /// One row per (vendor, cache, phase) point.
    pub rows: Vec<KvRow>,
    /// Application-layer failure tallies in the campaign-wide
    /// [`crate::analyzer::FailureCounts`] shape (checkpoint v5 fields),
    /// summed over both firmware arms.
    pub counts: crate::analyzer::FailureCounts,
}

impl KvReport {
    /// Sweep-wide total of `f` over the half-applying arm.
    pub fn loose_total(&self, f: fn(&KvArmTally) -> u64) -> u64 {
        self.rows.iter().map(|r| f(&r.loose)).sum()
    }

    /// Sweep-wide total of `f` over the CRC-verifying arm.
    pub fn strict_total(&self, f: fn(&KvArmTally) -> u64) -> u64 {
        self.rows.iter().map(|r| f(&r.strict)).sum()
    }

    /// Renders the table.
    pub fn table(&self) -> Table {
        let mut t = Table::new([
            "vendor",
            "cache",
            "phase",
            "workload",
            "acked",
            "torn",
            "surf/mask/poison (crc off)",
            "surf/mask/poison (crc on)",
        ]);
        for r in &self.rows {
            t.push_row([
                r.vendor.clone(),
                if r.cache { "on" } else { "off" }.to_string(),
                format!("{}%.", r.phase),
                r.workload.clone(),
                r.loose.acked_ops.to_string(),
                format!("{}+{}", r.loose.torn_batches, r.strict.torn_batches),
                format!(
                    "{}/{}/{}",
                    r.loose.surfaced, r.loose.masked, r.loose.silent_poison
                ),
                format!(
                    "{}/{}/{}",
                    r.strict.surfaced, r.strict.masked, r.strict.silent_poison
                ),
            ]);
        }
        t
    }
}

impl core::fmt::Display for KvReport {
    /// Renders the report as its aligned table.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.table().render())
    }
}

fn vendor_label(preset: VendorPreset) -> &'static str {
    match preset {
        VendorPreset::SsdA => "A",
        VendorPreset::SsdB => "B",
        VendorPreset::SsdC => "C",
    }
}

/// One paired trial: both firmware arms at the same seed, the
/// half-applying arm's probe stream folded through the obs [`Metrics`]
/// pipeline.
fn run_trial(loose: &KvTrialConfig, strict: &KvTrialConfig, seed: u64) -> KvPointAgg {
    let lo = run_kv_trial(loose, seed);
    let st = run_kv_trial(strict, seed);
    let metrics = Metrics::from_records(&lo.probes);
    let mut agg = KvPointAgg {
        trials: 1,
        obs_outcomes: metrics.counter("app.outcome"),
        ..KvPointAgg::default()
    };
    for r in &lo.probes {
        if let ProbeEvent::AppOutcome {
            surfaced,
            masked,
            silent_poison,
        } = r.event
        {
            agg.obs_surfaced += surfaced;
            agg.obs_masked += masked;
            agg.obs_poison += silent_poison;
        }
    }
    agg.loose.absorb(&lo);
    agg.strict.absorb(&st);
    agg
}

/// Reduces `trials` paired trials of one point on the chosen engine. All
/// three engines absorb results in canonical trial order, so the
/// aggregate is byte-identical regardless of engine or thread count.
pub fn run_point(
    loose: &KvTrialConfig,
    strict: &KvTrialConfig,
    point_seed: u64,
    trials: u64,
    threads: usize,
    engine: EngineArg,
) -> KvPointAgg {
    let engine = match engine {
        EngineArg::Auto => {
            if threads > 1 {
                EngineArg::Stealing
            } else {
                EngineArg::Serial
            }
        }
        e => e,
    };
    match engine {
        EngineArg::Serial | EngineArg::Auto => {
            let mut acc = KvPointAgg::default();
            for i in 0..trials {
                acc.merge(&run_trial(loose, strict, mix64(point_seed, i)));
            }
            acc
        }
        EngineArg::Striped => {
            let threads = threads.clamp(1, trials.max(1) as usize);
            let mut slots: Vec<Option<KvPointAgg>> = vec![None; trials as usize];
            std::thread::scope(|scope| {
                let chunks: Vec<(usize, &mut [Option<KvPointAgg>])> = slots
                    .chunks_mut(trials.div_ceil(threads as u64) as usize)
                    .enumerate()
                    .collect();
                for (stripe, chunk) in chunks {
                    let base = stripe as u64 * trials.div_ceil(threads as u64);
                    scope.spawn(move || {
                        for (off, slot) in chunk.iter_mut().enumerate() {
                            let i = base + off as u64;
                            *slot = Some(run_trial(loose, strict, mix64(point_seed, i)));
                        }
                    });
                }
            });
            let mut acc = KvPointAgg::default();
            for slot in slots {
                acc.merge(&slot.expect("every stripe fills its slots"));
            }
            acc
        }
        EngineArg::Stealing => {
            let (acc, _stats) = crate::scheduler::run_work_stealing(
                trials,
                threads,
                crate::scheduler::DEFAULT_CHUNK,
                |i| run_trial(loose, strict, mix64(point_seed, i)),
                KvPointAgg::default(),
                |acc: &mut KvPointAgg, _i, t: KvPointAgg| acc.merge(&t),
            );
            acc
        }
    }
}

/// The swept grid: vendor × cache × cut phase, workloads cycled across
/// points. The early phase cuts while the first checkpoint generations
/// are still settling (unwritten region sectors surface as detectable
/// corruption); the late phase cuts deep into steady-state compaction
/// (stale-but-clean region sectors are the silent-poison window). Both
/// phases sit past the first compaction, because a tear can only
/// poison once a previous generation's sectors are present to go
/// stale.
const PHASES: [u64; 2] = [250, 850];

fn point_configs(
    preset: VendorPreset,
    cache: bool,
    phase: u64,
    kind: KvWorkloadKind,
) -> (KvTrialConfig, KvTrialConfig) {
    let loose = KvTrialConfig::standard(preset, cache, false, kind, phase);
    let strict = KvTrialConfig::standard(preset, cache, true, kind, phase);
    (loose, strict)
}

/// Runs the Extension M sweep at the given scale with the given engine.
pub fn run(scale: ExperimentScale, seed: u64, engine: EngineArg) -> KvReport {
    let trials = (scale.faults_per_point as u64 / 5).max(6);
    let kinds = KvWorkloadKind::all();
    let mut rows = Vec::new();
    let mut counts = crate::analyzer::FailureCounts::default();
    let mut point = 0u64;
    for &preset in &[VendorPreset::SsdA, VendorPreset::SsdB, VendorPreset::SsdC] {
        for &cache in &[true, false] {
            for &phase in &PHASES {
                let kind = kinds[point as usize % kinds.len()];
                let (loose, strict) = point_configs(preset, cache, phase, kind);
                let point_seed = mix64(seed, 0x4B56_4150 ^ point);
                let agg = run_point(&loose, &strict, point_seed, trials, scale.threads, engine);
                counts.app_surfaced += agg.loose.surfaced + agg.strict.surfaced;
                counts.app_masked += agg.loose.masked + agg.strict.masked;
                counts.app_silent_poison += agg.loose.silent_poison + agg.strict.silent_poison;
                counts.read_only_devices += agg.loose.read_only + agg.strict.read_only;
                rows.push(KvRow {
                    vendor: vendor_label(preset).to_string(),
                    cache,
                    phase,
                    workload: kind.label().to_string(),
                    trials: agg.trials,
                    loose: agg.loose,
                    strict: agg.strict,
                });
                point += 1;
            }
        }
    }
    KvReport { rows, counts }
}

/// Self-checks for an explicit `--exp kv` run. Returns the list of
/// violated expectations (empty = the run vouches for itself).
pub fn check(report: &KvReport, scale: ExperimentScale, seed: u64) -> Vec<String> {
    let mut checks = Vec::new();

    // Every divergence class must actually occur somewhere in the sweep:
    // an oracle that never fires is not evidence of safety.
    if report.loose_total(|t| t.surfaced) + report.strict_total(|t| t.surfaced) == 0 {
        checks.push("kv smoke failed: no divergence ever surfaced as an app error".into());
    }
    if report.loose_total(|t| t.masked) + report.strict_total(|t| t.masked) == 0 {
        checks.push("kv smoke failed: no outage was ever masked by WAL replay".into());
    }
    if report.loose_total(|t| t.silent_poison) == 0 {
        checks.push("kv smoke failed: half-apply firmware never silently poisoned".into());
    }

    // The headline inequality, at equal seeds: half-apply must poison
    // strictly more than discard-whole across the sweep.
    let loose_poison = report.loose_total(|t| t.silent_poison);
    let strict_poison = report.strict_total(|t| t.silent_poison);
    if loose_poison <= strict_poison {
        checks.push(format!(
            "kv smoke failed: half-apply poisoned {loose_poison} times, \
             not strictly more than discard-whole's {strict_poison}"
        ));
    }

    // Torn journal pages are the mechanism; a sweep that never tore one
    // proves nothing about either firmware.
    if report.loose_total(|t| t.torn_batches) == 0 {
        checks.push("kv smoke failed: no journal batch was ever torn".into());
    }

    // Engine independence, re-proven on this run's first point: the
    // serial and work-stealing reductions must agree bit-for-bit.
    let trials = (scale.faults_per_point as u64 / 5).max(6);
    let kinds = KvWorkloadKind::all();
    let (loose, strict) = point_configs(VendorPreset::SsdA, true, PHASES[0], kinds[0]);
    let point_seed = mix64(seed, 0x4B56_4150);
    let serial = run_point(&loose, &strict, point_seed, trials, 1, EngineArg::Serial);
    let stealing = run_point(&loose, &strict, point_seed, trials, 2, EngineArg::Stealing);
    if serial != stealing {
        checks.push("kv smoke failed: serial and stealing engines diverged".into());
    }
    // And the obs pipeline must agree with the oracle tallies: exactly
    // one `app.outcome` probe per trial, payloads summing to the counts.
    if serial.obs_outcomes != serial.trials
        || serial.obs_surfaced != serial.loose.surfaced
        || serial.obs_masked != serial.loose.masked
        || serial.obs_poison != serial.loose.silent_poison
    {
        checks.push("kv smoke failed: probe-derived counters diverge from oracle tallies".into());
    }

    checks
}

/// Renders the human-readable section.
pub fn render(report: &KvReport) -> String {
    let mut text = String::new();
    let _ = writeln!(
        text,
        "== Extension M: application-level masking vs silent poison =="
    );
    let _ = writeln!(text, "{}", report.table().render());
    let _ = writeln!(
        text,
        "app-layer outcomes: {} surfaced, {} masked, {} silently poisoned \
         (half-apply {} vs discard-whole {})",
        report.counts.app_surfaced,
        report.counts.app_masked,
        report.counts.app_silent_poison,
        report.loose_total(|t| t.silent_poison),
        report.strict_total(|t| t.silent_poison),
    );
    let _ = writeln!(
        text,
        "(paired arms share seeds; a torn checkpoint extent half-applied can anchor\n\
         recovery on a fresh seal over stale value sectors — discarding the torn\n\
         batch whole reverts the seal and WAL replay repairs the difference)\n"
    );
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentScale {
        ExperimentScale {
            faults_per_point: 30,
            requests_per_trial: 10,
            threads: 2,
        }
    }

    #[test]
    fn same_seed_kv_reports_are_byte_identical_across_engines() {
        // Satellite: serial, striped, and stealing engines — and plain
        // reruns — must all produce byte-identical reports.
        let a = run(tiny(), 7, EngineArg::Serial);
        let b = run(tiny(), 7, EngineArg::Striped);
        let c = run(tiny(), 7, EngineArg::Stealing);
        let d = run(tiny(), 7, EngineArg::Serial);
        let json = |r: &KvReport| serde_json::to_string(r).expect("serializes");
        assert_eq!(json(&a), json(&b), "serial vs striped");
        assert_eq!(json(&a), json(&c), "serial vs stealing");
        assert_eq!(json(&a), json(&d), "rerun");
    }

    #[test]
    fn kv_sweep_finds_every_class_and_self_checks_pass() {
        let report = run(tiny(), 7, EngineArg::Auto);
        let failures = check(&report, tiny(), 7);
        assert!(failures.is_empty(), "kv self-checks must pass: {failures:?}");
        // The v5 checkpoint fields carry real application data.
        assert!(report.counts.app_masked > 0);
        assert!(report.counts.app_silent_poison > 0);
    }

    #[test]
    fn report_renders_with_totals() {
        let report = run(tiny(), 7, EngineArg::Serial);
        let text = render(&report);
        assert!(text.contains("Extension M"));
        assert!(text.contains("silently poisoned"));
    }
}
