//! The unified Experiment API.
//!
//! Every runnable experiment — the paper figures, the extensions, and
//! the operational modes (raw campaign, fault-space sweep) — implements
//! [`Experiment`] and registers in [`registry`]. Drivers like the
//! `repro` binary dispatch by name instead of hand-rolling a match, and
//! `--list-exps` is just a walk over the registry.
//!
//! An experiment receives an [`ExperimentCtx`] (scale, seed, CLI
//! options) and returns an [`ExperimentReport`]: the human-readable
//! text, a stable JSON key/value for machine-readable output, and any
//! self-check failures. Self-checks are *recorded* unconditionally but
//! *enforced* by the driver only when the experiment was selected
//! explicitly — `--exp recovery-storm` must prove the storm pipeline
//! fired, while the same experiment inside `--exp all` is informational.

use std::fmt::Write as _;
use std::path::PathBuf;

use serde_json::Value;

use crate::campaign::{Campaign, CampaignConfig, ProgressSignal};
use crate::error::PlatformError;
use crate::plan::PlanSpec;
use crate::platform::{TestPlatform, Watchdog};
use crate::sweep::{SweepConfig, Sweeper, ViolationKind};

use super::{
    access_pattern, brownout, cache_ablation, fleet, flush, injector_ablation, interval, iops,
    kv, plan, psu, recovery, repeated, request_size, request_type, sequence, storm, vendors,
    wear, wss, ExperimentScale,
};

/// Which campaign engine `--exp campaign` drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineArg {
    /// Serial for one thread, work-stealing otherwise
    /// ([`Campaign::run_auto`]).
    #[default]
    Auto,
    /// Single-threaded ([`Campaign::run_checked`]); the only engine that
    /// honours checkpoints.
    Serial,
    /// Statically striped threads ([`Campaign::run_parallel`]).
    Striped,
    /// Work-stealing scheduler ([`Campaign::run_stealing`]).
    Stealing,
}

impl EngineArg {
    /// Parses a `--engine` value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "auto" => Some(EngineArg::Auto),
            "serial" => Some(EngineArg::Serial),
            "striped" => Some(EngineArg::Striped),
            "stealing" => Some(EngineArg::Stealing),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            EngineArg::Auto => "auto",
            EngineArg::Serial => "serial",
            EngineArg::Striped => "striped",
            EngineArg::Stealing => "stealing",
        }
    }
}

/// Driver-provided options. Most apply only to the operational modes
/// (`campaign`, `sweep`); figure experiments ignore them.
#[derive(Debug, Clone)]
pub struct ExperimentOpts {
    /// Overrides how the campaign is sized: a fixed trial count
    /// (`fixed:N`, the classic `--trials` spelling) or an adaptive
    /// confidence-driven plan (`ci:EPS[:CONF]`). `None` falls back to
    /// [`ExperimentScale::faults_per_point`].
    pub plan: Option<PlanSpec>,
    /// Extra attempts per failing trial.
    pub retries: u32,
    /// Checkpoint file for campaign mode.
    pub checkpoint: Option<PathBuf>,
    /// Trials between checkpoint writes.
    pub checkpoint_every: u64,
    /// Resume from the checkpoint instead of starting fresh.
    pub resume: bool,
    /// Watchdog ceiling on simulated milliseconds.
    pub watchdog_ms: Option<u64>,
    /// Watchdog ceiling on event-loop iterations.
    pub watchdog_events: Option<u64>,
    /// Shrink the first sweep violation to a minimal reproducer.
    pub minimize: bool,
    /// Seed the apply-before-verify CRC bug for the sweep to find.
    pub inject_crc_bug: bool,
    /// Write per-failure-class probe telemetry here (enables obs).
    pub metrics_path: Option<PathBuf>,
    /// Write one representative probe trace (JSONL) here (enables obs).
    pub trace_path: Option<PathBuf>,
    /// Worker threads for campaign mode (`None` = 1).
    pub threads: Option<usize>,
    /// Campaign engine selection.
    pub engine: EngineArg,
    /// Warm-up requests per trial configuration
    /// ([`crate::platform::TrialConfig::warmup_requests`]).
    pub warmup: Option<usize>,
    /// Serve warm-up snapshots from the memoized cache (default true).
    pub snapshot_cache: bool,
}

impl Default for ExperimentOpts {
    fn default() -> Self {
        ExperimentOpts {
            plan: None,
            retries: 0,
            checkpoint: None,
            checkpoint_every: 25,
            resume: false,
            watchdog_ms: None,
            watchdog_events: None,
            minimize: false,
            inject_crc_bug: false,
            metrics_path: None,
            trace_path: None,
            threads: None,
            engine: EngineArg::Auto,
            warmup: None,
            snapshot_cache: true,
        }
    }
}

/// Everything an experiment run receives.
#[derive(Debug, Clone)]
pub struct ExperimentCtx {
    /// Fault/request budget per swept point.
    pub scale: ExperimentScale,
    /// Root seed; every trial seed derives from it.
    pub seed: u64,
    /// Driver options.
    pub opts: ExperimentOpts,
}

/// What one experiment produced.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Human-readable output, ready to print.
    pub text: String,
    /// Stable key for the machine-readable JSON document.
    pub json_key: &'static str,
    /// Machine-readable report.
    pub json: Value,
    /// Self-check failures. Empty means the experiment vouches for its
    /// own result; the driver turns non-empty into a nonzero exit when
    /// the experiment was selected explicitly.
    pub check_failures: Vec<String>,
}

/// A runnable experiment. Implementations are registered in
/// [`registry`] and dispatched by [`find`].
pub trait Experiment: Sync {
    /// CLI name (`--exp NAME`).
    fn name(&self) -> &'static str;
    /// One-line description for `--list-exps`.
    fn describe(&self) -> &'static str;
    /// Whether `--exp all` includes this experiment. Operational modes
    /// (campaign, sweep) opt out.
    fn in_all(&self) -> bool {
        true
    }
    /// Runs the experiment.
    fn run(&self, ctx: &ExperimentCtx) -> Result<ExperimentReport, PlatformError>;
}

/// Adapter: a figure/extension experiment that cannot fail is a plain
/// function from context to report.
struct FnExperiment {
    name: &'static str,
    describe: &'static str,
    run: fn(&ExperimentCtx) -> ExperimentReport,
}

impl Experiment for FnExperiment {
    fn name(&self) -> &'static str {
        self.name
    }
    fn describe(&self) -> &'static str {
        self.describe
    }
    fn run(&self, ctx: &ExperimentCtx) -> Result<ExperimentReport, PlatformError> {
        Ok((self.run)(ctx))
    }
}

fn json_of<T: serde::Serialize>(report: &T) -> Value {
    serde_json::to_value(report).expect("reports serialize")
}

fn clean(text: String, json_key: &'static str, json: Value) -> ExperimentReport {
    ExperimentReport {
        text,
        json_key,
        json,
        check_failures: Vec::new(),
    }
}

fn run_fig4(_ctx: &ExperimentCtx) -> ExperimentReport {
    let report = psu::run();
    let mut text = String::new();
    let _ = writeln!(text, "== Fig 4: PSU discharge ==");
    let _ = writeln!(text, "{}", report.table().render());
    let _ = writeln!(text, "Fig 4a series (no load):");
    let _ = writeln!(text, "{}", psu::PsuReport::curve_table(&report.unloaded).render());
    let _ = writeln!(text, "Fig 4b series (one SSD):");
    let _ = writeln!(text, "{}", psu::PsuReport::curve_table(&report.loaded).render());
    clean(text, "fig4", json_of(&report))
}

fn run_interval(ctx: &ExperimentCtx) -> ExperimentReport {
    let report = interval::run(ctx.scale, ctx.seed, true);
    let mut text = String::new();
    let _ = writeln!(text, "== §IV-A: interval after completion (cache enabled) ==");
    let _ = writeln!(text, "{}", report.table().render());
    if let Some(max) = report.max_delay_with_failure_ms() {
        let _ = writeln!(text, "max delay with observed failure: {max} ms (paper: ~700 ms)\n");
    }
    clean(text, "interval", json_of(&report))
}

fn run_interval_nocache(ctx: &ExperimentCtx) -> ExperimentReport {
    let report = interval::run(ctx.scale, ctx.seed ^ 1, false);
    let mut text = String::new();
    let _ = writeln!(text, "== §IV-A: interval after completion (cache DISABLED) ==");
    let _ = writeln!(text, "{}", report.table().render());
    if let Some(max) = report.max_delay_with_failure_ms() {
        let _ = writeln!(
            text,
            "max delay with observed failure: {max} ms (failures persist without cache)\n"
        );
    }
    clean(text, "interval_nocache", json_of(&report))
}

fn run_fig5(ctx: &ExperimentCtx) -> ExperimentReport {
    let report = request_type::run(ctx.scale, ctx.seed);
    let mut text = String::new();
    let _ = writeln!(text, "== Fig 5: request type (read %) ==");
    let _ = writeln!(text, "{}", report.table().render());
    let _ = writeln!(text, "{}", report.chart().render(50));
    clean(text, "fig5", json_of(&report))
}

fn run_fig6(ctx: &ExperimentCtx) -> ExperimentReport {
    let points: Option<&[u64]> = if ctx.scale == ExperimentScale::paper() {
        None
    } else {
        Some(&[1, 20, 50, 90])
    };
    let report = wss::run(ctx.scale, ctx.seed, points);
    let mut text = String::new();
    let _ = writeln!(text, "== Fig 6: working-set size ==");
    let _ = writeln!(text, "{}", report.table().render());
    let _ = writeln!(
        text,
        "max/min per-fault spread: {:.2} (paper: flat)\n",
        report.spread_ratio()
    );
    clean(text, "fig6", json_of(&report))
}

fn run_pattern(ctx: &ExperimentCtx) -> ExperimentReport {
    let report = access_pattern::run(ctx.scale, ctx.seed);
    let mut text = String::new();
    let _ = writeln!(text, "== §IV-D: access pattern ==");
    let _ = writeln!(text, "{}", report.table().render());
    let _ = writeln!(
        text,
        "sequential excess: {:+.1}% (paper: ~+14%)\n",
        report.sequential_excess_pct()
    );
    clean(text, "pattern", json_of(&report))
}

fn run_fig7(ctx: &ExperimentCtx) -> ExperimentReport {
    let report = request_size::run(ctx.scale, ctx.seed);
    let mut text = String::new();
    let _ = writeln!(text, "== Fig 7: request size ==");
    let _ = writeln!(text, "{}", report.table().render());
    let _ = writeln!(text, "{}", report.chart().render(50));
    clean(text, "fig7", json_of(&report))
}

fn run_fig8(ctx: &ExperimentCtx) -> ExperimentReport {
    let report = iops::run(ctx.scale, ctx.seed);
    let mut text = String::new();
    let _ = writeln!(text, "== Fig 8: requested IOPS ==");
    let _ = writeln!(text, "{}", report.table().render());
    let _ = writeln!(
        text,
        "saturation: {:.0} responded IOPS (paper: ~6900)\n",
        report.saturation_iops()
    );
    clean(text, "fig8", json_of(&report))
}

fn run_fig9(ctx: &ExperimentCtx) -> ExperimentReport {
    let report = sequence::run(ctx.scale, ctx.seed);
    let mut text = String::new();
    let _ = writeln!(text, "== Fig 9: access sequences ==");
    let _ = writeln!(text, "{}", report.table().render());
    let _ = writeln!(text, "{}", report.chart().render(50));
    clean(text, "fig9", json_of(&report))
}

fn run_table1(ctx: &ExperimentCtx) -> ExperimentReport {
    let report = vendors::run(ctx.scale, ctx.seed);
    let mut text = String::new();
    let _ = writeln!(text, "== Table I: vendor drives ==");
    let _ = writeln!(text, "{}", report.table().render());
    clean(text, "table1", json_of(&report))
}

fn run_ablation_injector(ctx: &ExperimentCtx) -> ExperimentReport {
    let report = injector_ablation::run(ctx.scale, ctx.seed);
    let mut text = String::new();
    let _ = writeln!(text, "== Ablation: discharge ramp vs transistor cut ==");
    let _ = writeln!(text, "{}", report.table().render());
    clean(text, "ablation_injector", json_of(&report))
}

fn run_ablation_cache(ctx: &ExperimentCtx) -> ExperimentReport {
    let report = cache_ablation::run(ctx.scale, ctx.seed);
    let mut text = String::new();
    let _ = writeln!(text, "== Ablation: cache on/off/supercap ==");
    let _ = writeln!(text, "{}", report.table().render());
    clean(text, "ablation_cache", json_of(&report))
}

fn run_brownout(ctx: &ExperimentCtx) -> ExperimentReport {
    let report = brownout::run(ctx.scale, ctx.seed);
    let mut text = String::new();
    let _ = writeln!(text, "== Extension: transient sag (brownout) depth sweep ==");
    let _ = writeln!(text, "{}", report.table().render());
    clean(text, "brownout", json_of(&report))
}

fn run_wear(ctx: &ExperimentCtx) -> ExperimentReport {
    let report = wear::run(ctx.scale, ctx.seed);
    let mut text = String::new();
    let _ = writeln!(text, "== Extension: device age (P/E cycles) vs fault damage ==");
    let _ = writeln!(text, "{}", report.table().render());
    clean(text, "wear", json_of(&report))
}

fn run_flush(ctx: &ExperimentCtx) -> ExperimentReport {
    let report = flush::run(ctx.scale, ctx.seed);
    let mut text = String::new();
    let _ = writeln!(text, "== Extension: FLUSH barrier frequency ==");
    let _ = writeln!(text, "{}", report.table().render());
    clean(text, "flush", json_of(&report))
}

fn run_recovery(ctx: &ExperimentCtx) -> ExperimentReport {
    let report = recovery::run(ctx.scale, ctx.seed);
    let mut text = String::new();
    let _ = writeln!(text, "== Extension: recovery policy (journal replay vs full scan) ==");
    let _ = writeln!(text, "{}", report.table().render());
    let _ = writeln!(
        text,
        "full-scan recovery reduces loss by {:.0}%\n",
        report.scan_reduction_pct()
    );
    clean(text, "recovery", json_of(&report))
}

fn run_repeated(ctx: &ExperimentCtx) -> ExperimentReport {
    let report = repeated::run(ctx.scale, ctx.seed);
    let mut text = String::new();
    let _ = writeln!(text, "== Extension: consecutive outages on one device ==");
    let _ = writeln!(text, "{}", report.table().render());
    let _ = writeln!(
        text,
        "mean fresh loss per cycle {:.1}; requests that had survived an \
         earlier outage and were newly lost later: {}\n",
        report.mean_fresh_lost(),
        report.total_old_newly_lost()
    );
    clean(text, "repeated", json_of(&report))
}

/// Extension J with its storm self-checks: an explicit run must prove
/// the mechanistic pipeline fired end to end.
struct StormExperiment;

impl Experiment for StormExperiment {
    fn name(&self) -> &'static str {
        "recovery-storm"
    }
    fn describe(&self) -> &'static str {
        "Extension J — power cuts during recovery itself (self-checking)"
    }
    fn run(&self, ctx: &ExperimentCtx) -> Result<ExperimentReport, PlatformError> {
        let report = storm::run(ctx.scale, ctx.seed);
        let mut text = String::new();
        let _ = writeln!(text, "== Extension J: power cuts during recovery itself ==");
        let _ = writeln!(text, "{}", report.table().render());
        let _ = writeln!(
            text,
            "interrupted stages {}, resumed mounts {}, read-only devices {}\n",
            report.total_interrupted(),
            report.total_resumed(),
            report.total_read_only()
        );
        let mut checks = Vec::new();
        if report.total_interrupted() == 0 {
            checks.push("recovery-storm smoke failed: no recovery stage was interrupted".into());
        }
        if report.total_resumed() == 0 {
            checks.push("recovery-storm smoke failed: no interrupted recovery resumed".into());
        }
        if report.total_read_only() == 0 {
            checks.push("recovery-storm smoke failed: no device degraded to read-only".into());
        }
        if report
            .rows
            .first()
            .is_some_and(|calm| calm.interrupted_stages != 0)
        {
            checks.push("recovery-storm smoke failed: cut rate 0.0 must never interrupt".into());
        }
        Ok(ExperimentReport {
            text,
            json_key: "recovery_storm",
            json: json_of(&report),
            check_failures: checks,
        })
    }
}

/// Extension L with its fleet self-checks: an explicit run must prove
/// that correlated cuts degrade MTTDL versus the independent baseline,
/// that degraded reads and rebuild interruptions actually happened, and
/// that the engines agree bit-for-bit.
struct FleetExperiment;

impl Experiment for FleetExperiment {
    fn name(&self) -> &'static str {
        "fleet"
    }
    fn describe(&self) -> &'static str {
        "Extension L — correlated outages vs erasure-coded fleets (self-checking; honours --engine)"
    }
    fn run(&self, ctx: &ExperimentCtx) -> Result<ExperimentReport, PlatformError> {
        let report = fleet::run(ctx.scale, ctx.seed, ctx.opts.engine);
        let checks = fleet::check(&report, ctx.scale, ctx.seed);
        Ok(ExperimentReport {
            text: fleet::render(&report),
            json_key: "fleet",
            json: json_of(&report),
            check_failures: checks,
        })
    }
}

/// Extension M with its application-layer self-checks: an explicit run
/// must prove that every divergence class (surfaced, masked, silent
/// poison) occurred, that the half-applying firmware poisoned strictly
/// more than the CRC-verifying firmware at equal seeds, that journal
/// batches actually tore, and that the engines agree bit-for-bit.
struct KvExperiment;

impl Experiment for KvExperiment {
    fn name(&self) -> &'static str {
        "kv"
    }
    fn describe(&self) -> &'static str {
        "Extension M — WAL'd KV store above the device: masking vs silent poison (self-checking)"
    }
    fn run(&self, ctx: &ExperimentCtx) -> Result<ExperimentReport, PlatformError> {
        let report = kv::run(ctx.scale, ctx.seed, ctx.opts.engine);
        let checks = kv::check(&report, ctx.scale, ctx.seed);
        Ok(ExperimentReport {
            text: kv::render(&report),
            json_key: "kv",
            json: json_of(&report),
            check_failures: checks,
        })
    }
}

/// The ROADMAP item 3 deliverable with its self-checks: an explicit run
/// must prove that confidence-driven stopping matches a fixed-N
/// campaign's interval half-width at ≥10x fewer trials on a
/// low-failure-rate point, that same-seed PlanReports are byte-equal
/// across the serial/striped/stealing engines and across
/// checkpoint/resume, and that splitting levels are deterministic and
/// strictly ascending.
struct PlanExperiment;

impl Experiment for PlanExperiment {
    fn name(&self) -> &'static str {
        "plan"
    }
    fn describe(&self) -> &'static str {
        "Extension P — adaptive planner: CI stopping at ≥10x fewer trials (self-checking)"
    }
    fn run(&self, ctx: &ExperimentCtx) -> Result<ExperimentReport, PlatformError> {
        let report = plan::run(ctx.scale, ctx.seed)?;
        let checks = plan::check(&report);
        Ok(ExperimentReport {
            text: plan::render(&report),
            json_key: "plan",
            json: json_of(&report),
            check_failures: checks,
        })
    }
}

/// One raw fault-injection campaign with the resilience controls:
/// watchdog budgets, deterministic retries, checkpoint/resume, engine
/// selection, warm-up snapshots, and obs export.
struct CampaignExperiment;

impl Experiment for CampaignExperiment {
    fn name(&self) -> &'static str {
        "campaign"
    }
    fn describe(&self) -> &'static str {
        "one raw campaign: watchdog, retries, checkpoint/resume, --engine/--threads/--warmup"
    }
    fn in_all(&self) -> bool {
        false
    }
    fn run(&self, ctx: &ExperimentCtx) -> Result<ExperimentReport, PlatformError> {
        let o = &ctx.opts;
        let spec = o
            .plan
            .unwrap_or_else(|| PlanSpec::fixed(ctx.scale.faults_per_point as u64));
        spec.validate()?;
        let mut config = CampaignConfig::paper_default();
        config.requests_per_trial = ctx.scale.requests_per_trial;
        if let Some(warmup) = o.warmup {
            config.trial.warmup_requests = warmup;
        }
        if o.metrics_path.is_some() || o.trace_path.is_some() {
            config.trial.obs = true;
        }
        if o.watchdog_ms.is_some() || o.watchdog_events.is_some() {
            config.trial.watchdog = Watchdog {
                max_sim_time_us: o.watchdog_ms.map(|ms| ms * 1_000),
                max_events: o.watchdog_events,
            };
        }
        if o.resume && o.checkpoint.is_none() {
            return Err(PlatformError::InvalidConfig(
                "--resume needs --checkpoint FILE to resume from".into(),
            ));
        }
        let threads = o.threads.unwrap_or(1);
        let mut builder = Campaign::builder(config)
            .plan(spec)
            .seed(ctx.seed)
            .retries(o.retries)
            .threads(threads)
            .snapshot_cache(o.snapshot_cache);
        if let Some(path) = &o.checkpoint {
            builder = builder.checkpoint(path, o.checkpoint_every);
        }
        let campaign = builder.build();
        let adaptive = !matches!(spec, PlanSpec::Fixed { .. });
        let report = if o.resume {
            match &o.checkpoint {
                Some(path) if adaptive => {
                    campaign
                        .resume_planned_observed(path, &mut |_| ProgressSignal::Continue)?
                        .report
                }
                Some(path) => campaign.resume_from(path)?,
                None => unreachable!("checked above"),
            }
        } else if adaptive {
            // Adaptive plans size themselves round by round; the planned
            // runner honours `threads` and is byte-identical either way,
            // so the engine flag only picks serial vs scheduled rounds.
            campaign.run_planned()?
        } else {
            match o.engine {
                EngineArg::Auto => campaign.run_auto()?,
                EngineArg::Serial => campaign.run_checked()?,
                EngineArg::Striped => campaign.run_parallel(threads),
                EngineArg::Stealing => campaign.run_stealing(threads),
            }
        };
        let mut text = String::new();
        let mut checks = Vec::new();
        let _ = writeln!(text, "== Campaign: {} fault injections ==", report.faults);
        let _ = writeln!(text, "plan {}", spec.render());
        if let Some(state) = &report.plan {
            let _ = writeln!(text, "planner: {}", state.progress_line());
        }
        let _ = writeln!(
            text,
            "engine {} with {} thread(s); warm-up {} request(s), snapshot cache {}",
            o.engine.name(),
            threads,
            config.trial.warmup_requests,
            if o.snapshot_cache { "on" } else { "off" }
        );
        let _ = writeln!(
            text,
            "requests: {} issued, {} completed",
            report.requests_issued, report.requests_completed
        );
        let _ = writeln!(
            text,
            "failures: {} data, {} FWA, {} IO errors, {} bricked devices",
            report.counts.data_failures,
            report.counts.fwa,
            report.counts.io_errors,
            report.counts.bricked_devices
        );
        let f = &report.failures;
        if f.total_failed() > 0 || f.retries > 0 {
            let _ = writeln!(
                text,
                "trials without an outcome: panicked {:?}, watchdog {:?}, bricked {:?} \
                 ({} retry attempts spent)",
                f.panicked, f.watchdog_expired, f.bricked, f.retries
            );
        } else {
            let _ = writeln!(text, "all trials produced an outcome (no retries needed)");
        }
        if let Some(path) = &o.metrics_path {
            // Per-failure-class probe telemetry. Self-checking: an
            // obs-enabled campaign that observed no trial, or produced an
            // unclassified aggregate, is a bug worth a nonzero exit.
            if report.obs.is_empty() || report.obs.by_class.is_empty() {
                checks.push("obs smoke failed: campaign produced no telemetry".into());
            } else {
                let doc = json_of(&report.obs);
                match serde_json::to_string_pretty(&doc) {
                    Ok(body) => match std::fs::write(path, body) {
                        Ok(()) => {
                            let _ = writeln!(
                                text,
                                "wrote metrics ({} observed trials, classes: {}) to {}",
                                report.obs.trials_observed,
                                report
                                    .obs
                                    .by_class
                                    .keys()
                                    .cloned()
                                    .collect::<Vec<_>>()
                                    .join(", "),
                                path.display()
                            );
                        }
                        Err(e) => checks.push(format!("failed to write {}: {e}", path.display())),
                    },
                    Err(e) => checks.push(format!("metrics did not serialize: {e}")),
                }
            }
        }
        if let Some(path) = &o.trace_path {
            // One representative obs trial (the campaign seed itself)
            // rendered as probe JSONL. Deterministic: same seed, same
            // bytes.
            let platform = TestPlatform::new(config.trial);
            let outcome = platform.run_trial(ctx.seed)?;
            let jsonl = pfault_obs::render_records(&outcome.probe_records);
            // Self-check: every rendered line must parse back, with dense
            // sequence numbers.
            for (i, line) in jsonl.lines().enumerate() {
                match pfault_obs::parse_jsonl_line(line) {
                    Ok(parsed) if parsed.seq == i as u64 => {}
                    Ok(parsed) => {
                        checks.push(format!(
                            "obs smoke failed: line {i} has seq {} (expected {i})",
                            parsed.seq
                        ));
                        break;
                    }
                    Err(e) => {
                        checks.push(format!("obs smoke failed: line {i} does not parse back: {e}"));
                        break;
                    }
                }
            }
            if checks.is_empty() {
                match std::fs::write(path, &jsonl) {
                    Ok(()) => {
                        let _ = writeln!(
                            text,
                            "wrote probe trace ({} events) to {}",
                            outcome.probe_records.len(),
                            path.display()
                        );
                    }
                    Err(e) => checks.push(format!("failed to write {}: {e}", path.display())),
                }
            }
        }
        Ok(ExperimentReport {
            text,
            json_key: "campaign",
            json: json_of(&report),
            check_failures: checks,
        })
    }
}

/// The systematic fault-space sweep with its self-checking exit
/// semantics: a clean sweep must BE clean, a seeded bug must be caught,
/// and nothing may go unverified.
struct SweepExperiment;

impl Experiment for SweepExperiment {
    fn name(&self) -> &'static str {
        "sweep"
    }
    fn describe(&self) -> &'static str {
        "fault-space sweep over every named fault site; --inject-crc-bug, --minimize"
    }
    fn in_all(&self) -> bool {
        false
    }
    fn run(&self, ctx: &ExperimentCtx) -> Result<ExperimentReport, PlatformError> {
        let o = &ctx.opts;
        let mut config = SweepConfig::smoke(ctx.seed);
        if o.inject_crc_bug {
            config.ssd.ftl.verify_batch_crc = false;
        }
        let sweeper = Sweeper::new(config);
        let report = sweeper.run()?;
        let mut text = String::new();
        let mut checks = Vec::new();
        let _ = writeln!(
            text,
            "== Sweep: {} site spans, {} boundary trials ==",
            report.sites_censused, report.trials
        );
        if report.violations.is_empty() {
            let _ = writeln!(text, "no invariant violations (recovery is torn-write safe)");
        }
        for v in &report.violations {
            let _ = writeln!(
                text,
                "violation: {} at {}#{} ({}) t={}us — {}",
                v.kind.name(),
                v.site.name(),
                v.occurrence,
                v.phase.name(),
                v.cut_us,
                v.detail
            );
        }
        if report.failures.total_failed() > 0 {
            let _ = writeln!(
                text,
                "trials without a verdict: {} (ledger {:?})",
                report.failures.total_failed(),
                report.failures
            );
            checks.push("sweep smoke failed: some boundary trials produced no verdict".into());
        }
        if o.inject_crc_bug {
            let caught = report
                .violations
                .iter()
                .any(|v| v.kind == ViolationKind::TornBatchHalfApplied);
            if !caught {
                checks.push("sweep smoke failed: seeded CRC bug was not caught".into());
            }
        } else if !report.violations.is_empty() {
            checks.push("sweep smoke failed: baseline firmware must sweep clean".into());
        }
        if o.minimize {
            if let Some(kind) = report.violations.first().map(|v| v.kind) {
                match sweeper.minimize(kind)? {
                    Some(repro) => {
                        let _ = writeln!(text, "minimal repro ({} ops):", repro.ops.len());
                        for op in &repro.ops {
                            let _ = writeln!(text, "  {op:?}");
                        }
                        let v = &repro.violation;
                        let _ = writeln!(
                            text,
                            "  fault: {} occurrence {} ({}) at t={}us -> {}",
                            v.site.name(),
                            v.occurrence,
                            v.phase.name(),
                            v.cut_us,
                            v.kind.name()
                        );
                        if o.inject_crc_bug && repro.ops.len() > 3 {
                            checks.push(
                                "sweep smoke failed: repro did not shrink below 4 ops".into(),
                            );
                        }
                    }
                    None => {
                        checks.push("minimizer could not reproduce the violation".into());
                    }
                }
            } else {
                let _ = writeln!(text, "nothing to minimize: sweep found no violations");
            }
        }
        let json = serde_json::json!({
            "sites_censused": report.sites_censused,
            "trials": report.trials,
            "failed_trials": report.failures.total_failed(),
            "violations": report.violations.iter().map(|v| serde_json::json!({
                "kind": v.kind.name(),
                "site": v.site.name(),
                "occurrence": v.occurrence,
                "phase": v.phase.name(),
                "cut_us": v.cut_us,
                "detail": v.detail,
            })).collect::<Vec<_>>(),
        });
        Ok(ExperimentReport {
            text,
            json_key: "sweep",
            json,
            check_failures: checks,
        })
    }
}

/// Every registered experiment, in `--exp all` presentation order
/// (operational modes last; they are excluded from `all`).
static REGISTRY: &[&dyn Experiment] = &[
    &FnExperiment {
        name: "fig4",
        describe: "Fig 4 — PSU discharge curves",
        run: run_fig4,
    },
    &FnExperiment {
        name: "interval",
        describe: "§IV-A — failure interval after completion (cache enabled)",
        run: run_interval,
    },
    &FnExperiment {
        name: "interval-nocache",
        describe: "§IV-A — failure interval with the write cache disabled",
        run: run_interval_nocache,
    },
    &FnExperiment {
        name: "fig5",
        describe: "Fig 5 — request type (read %) sweep",
        run: run_fig5,
    },
    &FnExperiment {
        name: "fig6",
        describe: "Fig 6 — working-set size sweep (paper: flat)",
        run: run_fig6,
    },
    &FnExperiment {
        name: "pattern",
        describe: "§IV-D — sequential vs random access",
        run: run_pattern,
    },
    &FnExperiment {
        name: "fig7",
        describe: "Fig 7 — request size sweep",
        run: run_fig7,
    },
    &FnExperiment {
        name: "fig8",
        describe: "Fig 8 — requested vs responded IOPS saturation",
        run: run_fig8,
    },
    &FnExperiment {
        name: "fig9",
        describe: "Fig 9 — access sequences (RAR/RAW/WAR/WAW)",
        run: run_fig9,
    },
    &FnExperiment {
        name: "table1",
        describe: "Table I — the three vendor drives",
        run: run_table1,
    },
    &FnExperiment {
        name: "ablation-injector",
        describe: "ablation — discharge ramp vs ideal transistor cut",
        run: run_ablation_injector,
    },
    &FnExperiment {
        name: "ablation-cache",
        describe: "ablation — cache on/off/supercap",
        run: run_ablation_cache,
    },
    &FnExperiment {
        name: "brownout",
        describe: "extension — transient sag (brownout) depth sweep",
        run: run_brownout,
    },
    &FnExperiment {
        name: "wear",
        describe: "extension — device age (P/E cycles) vs fault damage",
        run: run_wear,
    },
    &FnExperiment {
        name: "flush",
        describe: "extension — FLUSH barrier frequency vs residual loss",
        run: run_flush,
    },
    &FnExperiment {
        name: "recovery",
        describe: "extension — journal replay vs full-scan recovery",
        run: run_recovery,
    },
    &FnExperiment {
        name: "repeated",
        describe: "extension — consecutive outages on one device",
        run: run_repeated,
    },
    &StormExperiment,
    &FleetExperiment,
    &KvExperiment,
    &PlanExperiment,
    &CampaignExperiment,
    &SweepExperiment,
];

/// All registered experiments in presentation order.
pub fn registry() -> &'static [&'static dyn Experiment] {
    REGISTRY
}

/// Looks an experiment up by its CLI name.
pub fn find(name: &str) -> Option<&'static dyn Experiment> {
    registry().iter().copied().find(|e| e.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ctx() -> ExperimentCtx {
        ExperimentCtx {
            scale: ExperimentScale {
                faults_per_point: 3,
                requests_per_trial: 15,
                threads: 2,
            },
            seed: 20180429,
            opts: ExperimentOpts::default(),
        }
    }

    #[test]
    fn registry_names_are_unique_and_findable() {
        let mut names: Vec<&str> = registry().iter().map(|e| e.name()).collect();
        assert!(names.len() >= 20, "all experiments registered: {names:?}");
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate experiment names");
        for e in registry() {
            assert!(find(e.name()).is_some());
            assert!(!e.describe().is_empty());
        }
        assert!(find("no-such-experiment").is_none());
    }

    #[test]
    fn operational_modes_are_excluded_from_all() {
        for name in ["campaign", "sweep"] {
            let e = find(name).expect("registered");
            assert!(!e.in_all(), "{name} must not run under --exp all");
        }
        assert!(find("fig8").expect("registered").in_all());
    }

    #[test]
    fn campaign_experiment_runs_with_engine_and_warmup() {
        let mut ctx = tiny_ctx();
        ctx.opts.plan = Some(PlanSpec::fixed(3));
        ctx.opts.threads = Some(2);
        ctx.opts.engine = EngineArg::Stealing;
        ctx.opts.warmup = Some(8);
        let report = find("campaign")
            .expect("registered")
            .run(&ctx)
            .expect("campaign runs");
        assert_eq!(report.json_key, "campaign");
        assert!(report.text.contains("engine stealing with 2 thread(s)"));
        assert!(report.text.contains("warm-up 8 request(s)"));
        assert!(report.check_failures.is_empty(), "{:?}", report.check_failures);
        let faults = report
            .json
            .as_object()
            .and_then(|o| o.get("faults"))
            .and_then(|v| v.as_u64());
        assert_eq!(faults, Some(3));
    }

    #[test]
    fn campaign_engines_agree_through_the_registry() {
        let exp = find("campaign").expect("registered");
        let mut serial_ctx = tiny_ctx();
        serial_ctx.opts.plan = Some(PlanSpec::fixed(4));
        serial_ctx.opts.engine = EngineArg::Serial;
        let mut stealing_ctx = serial_ctx.clone();
        stealing_ctx.opts.engine = EngineArg::Stealing;
        stealing_ctx.opts.threads = Some(3);
        let a = exp.run(&serial_ctx).expect("serial");
        let b = exp.run(&stealing_ctx).expect("stealing");
        assert_eq!(a.json, b.json, "engine choice must not change the report");
    }

    #[test]
    fn resume_without_checkpoint_is_invalid_config() {
        let mut ctx = tiny_ctx();
        ctx.opts.resume = true;
        match find("campaign").expect("registered").run(&ctx) {
            Err(PlatformError::InvalidConfig(why)) => {
                assert!(why.contains("--checkpoint"), "{why}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }
}
