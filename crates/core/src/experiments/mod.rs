//! Pre-configured experiments — one per paper table/figure.
//!
//! Each submodule sweeps the parameter its figure varies, runs a
//! [`crate::campaign::Campaign`] per point, and returns a typed report
//! with a [`crate::report::Table`] rendering. The `repro` binary in
//! `pfault-bench` prints these tables; `EXPERIMENTS.md` records them
//! against the paper's numbers.
//!
//! | module | paper result |
//! |--------|--------------|
//! | [`psu`] | Fig 4 — PSU discharge curves |
//! | [`interval`] | §IV-A — failures up to ~700 ms after completion |
//! | [`request_type`] | Fig 5 — read/write mix |
//! | [`wss`] | Fig 6 — working-set size (no effect) |
//! | [`access_pattern`] | §IV-D — sequential ≈ +14 % vs random |
//! | [`request_size`] | Fig 7 — small requests fail more, FWA-dominated |
//! | [`iops`] | Fig 8 — responded-IOPS saturation near 6 900 |
//! | [`sequence`] | Fig 9 — RAR/RAW/WAR/WAW |
//! | [`vendors`] | Table I — the three drives |
//! | [`injector_ablation`] | ours — discharge ramp vs transistor cut |
//! | [`cache_ablation`] | ours + §IV-A — cache on/off/supercap |
//! | [`brownout`] | ours — transient sag depth sweep |
//! | [`wear`] | ours — device age (P/E cycles) vs fault damage |
//! | [`flush`] | ours — FLUSH barrier frequency vs residual loss |
//! | [`recovery`] | ours — journal-replay vs full-scan recovery |
//! | [`repeated`] | ours — consecutive outages on one device |
//! | [`storm`] | ours — cuts during recovery; read-only degradation |
//! | [`fleet`] | ours — correlated outages vs erasure-coded fleets |
//! | [`kv`] | ours — app-level masking vs silent poison above the device |
//! | [`plan`] | ours — adaptive planner: CI stopping at ≥10x fewer trials |

pub mod access_pattern;
pub mod brownout;
pub mod cache_ablation;
pub mod fleet;
pub mod flush;
pub mod injector_ablation;
pub mod interval;
pub mod iops;
pub mod kv;
pub mod plan;
pub mod psu;
pub mod recovery;
pub mod registry;
pub mod repeated;
pub mod request_size;
pub mod request_type;
pub mod sequence;
pub mod storm;
pub mod vendors;
pub mod wear;
pub mod wss;

pub use registry::{
    find, registry as all, EngineArg, Experiment, ExperimentCtx, ExperimentOpts, ExperimentReport,
};

use crate::campaign::CampaignConfig;
use crate::platform::TrialConfig;

/// How big to run an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentScale {
    /// Fault injections per swept point.
    pub faults_per_point: usize,
    /// Requests submitted per fault.
    pub requests_per_trial: usize,
    /// Worker threads for the campaign runner.
    pub threads: usize,
}

impl ExperimentScale {
    /// Paper-sized: hundreds of faults per point (minutes of CPU).
    pub fn paper() -> Self {
        ExperimentScale {
            faults_per_point: 300,
            requests_per_trial: 80,
            threads: 8,
        }
    }

    /// Quick: enough to see every shape, small enough for tests/CI.
    pub fn quick() -> Self {
        ExperimentScale {
            faults_per_point: 40,
            requests_per_trial: 40,
            threads: 4,
        }
    }
}

/// Builds a campaign config from a trial template at the given scale.
pub(crate) fn campaign_at(trial: TrialConfig, scale: ExperimentScale) -> CampaignConfig {
    CampaignConfig {
        trial,
        trials: scale.faults_per_point,
        requests_per_trial: scale.requests_per_trial,
    }
}

/// Runs one swept point: a builder-first campaign on the scale's thread
/// count over the work-stealing engine. Every engine reduces in
/// canonical trial order, so this is byte-identical to a serial run of
/// the same seed.
pub(crate) fn run_point(
    config: CampaignConfig,
    seed: u64,
    scale: ExperimentScale,
) -> crate::campaign::CampaignReport {
    crate::campaign::Campaign::builder(config)
        .seed(seed)
        .threads(scale.threads)
        .build()
        .run_stealing(scale.threads)
}

/// The common trial template all experiments start from (SSD A, ATX rig),
/// with a geometry shrunk to keep allocator bookkeeping cheap — block
/// state is sparse either way.
pub(crate) fn base_trial() -> TrialConfig {
    let mut trial = TrialConfig::paper_default();
    trial.ssd.geometry = pfault_flash::FlashGeometry::new(1 << 15, 256);
    trial.ssd.ftl = pfault_ftl::FtlConfig::for_geometry(trial.ssd.geometry);
    trial
}
