//! Fig 5 — impact of request type (read/write mix).
//!
//! The paper sweeps the read percentage over {0, 20, 50, 80, 100} with
//! random 4 KiB–1 MiB requests and ≥300 faults per point. Expected shape:
//! data failures and FWA fall as the read share rises, reaching **zero**
//! at 100 % read; IO errors persist at every mix (the device still
//! vanishes mid-request). At full-write the paper sees about two data
//! failures per fault.

use serde::{Deserialize, Serialize};

use pfault_sim::storage::GIB;
use pfault_workload::WorkloadSpec;

use crate::experiments::{base_trial, campaign_at, ExperimentScale};
use crate::report::{fnum, Table};

/// One swept point of Fig 5.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RequestTypeRow {
    /// Read percentage (paper x-axis).
    pub read_pct: u32,
    /// Faults injected.
    pub faults: u64,
    /// Data failures (excluding FWA).
    pub data_failures: u64,
    /// False write-acknowledges.
    pub fwa: u64,
    /// IO errors.
    pub io_errors: u64,
    /// Data failures per fault (right-hand axis).
    pub data_failure_per_fault: f64,
}

/// Full Fig 5 report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RequestTypeReport {
    /// One row per read percentage.
    pub rows: Vec<RequestTypeRow>,
}

impl RequestTypeReport {
    /// Renders the paper-style table.
    pub fn table(&self) -> Table {
        let mut t = Table::new([
            "read %",
            "faults",
            "data failures",
            "FWA",
            "IO errors",
            "data failure/fault",
        ]);
        for r in &self.rows {
            t.push_row([
                r.read_pct.to_string(),
                r.faults.to_string(),
                r.data_failures.to_string(),
                r.fwa.to_string(),
                r.io_errors.to_string(),
                fnum(r.data_failure_per_fault, 2),
            ]);
        }
        t
    }

    /// Row at a given read percentage.
    pub fn at(&self, read_pct: u32) -> Option<&RequestTypeRow> {
        self.rows.iter().find(|r| r.read_pct == read_pct)
    }
}

impl RequestTypeReport {
    /// Renders the Fig 5-style grouped bar chart.
    pub fn chart(&self) -> crate::chart::BarChart {
        let mut c = crate::chart::BarChart::new(
            "Fig 5 — failures vs read percentage",
            ["data failures", "FWA", "IO errors"],
        );
        for r in &self.rows {
            c.push(
                format!("{}%", r.read_pct),
                [r.data_failures as f64, r.fwa as f64, r.io_errors as f64],
            );
        }
        c
    }
}

impl core::fmt::Display for RequestTypeReport {
    /// Renders the report as its aligned table.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.table().render())
    }
}

/// Runs the Fig 5 sweep.
pub fn run(scale: ExperimentScale, seed: u64) -> RequestTypeReport {
    let rows = [0u32, 20, 50, 80, 100]
        .iter()
        .map(|&read_pct| {
            let mut trial = base_trial();
            trial.workload = WorkloadSpec::builder()
                .wss_bytes(64 * GIB)
                .write_fraction(1.0 - f64::from(read_pct) / 100.0)
                .build();
            let report =
                super::run_point(campaign_at(trial, scale), seed ^ u64::from(read_pct), scale);
            RequestTypeRow {
                read_pct,
                faults: report.faults,
                data_failures: report.counts.data_failures,
                fwa: report.counts.fwa,
                io_errors: report.counts.io_errors,
                data_failure_per_fault: report.data_failures_per_fault(),
            }
        })
        .collect();
    RequestTypeReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RequestTypeReport {
        RequestTypeReport {
            rows: vec![
                RequestTypeRow {
                    read_pct: 0,
                    faults: 10,
                    data_failures: 20,
                    fwa: 5,
                    io_errors: 10,
                    data_failure_per_fault: 2.0,
                },
                RequestTypeRow {
                    read_pct: 100,
                    faults: 10,
                    data_failures: 0,
                    fwa: 0,
                    io_errors: 10,
                    data_failure_per_fault: 0.0,
                },
            ],
        }
    }

    #[test]
    fn lookup_and_render() {
        let r = report();
        assert_eq!(r.at(0).unwrap().data_failures, 20);
        assert_eq!(r.at(100).unwrap().data_failures, 0);
        assert!(r.at(50).is_none());
        let text = r.to_string();
        assert!(text.contains("read %"));
        assert!(text.lines().count() >= 4);
    }
}
