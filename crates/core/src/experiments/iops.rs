//! Fig 8 — impact of requested IOPS.
//!
//! Open-loop 4 KiB random writes at requested rates
//! {1200, 2400, 6000, 12000, 20000, 25000, 30000}. Expected shape: the
//! responded IOPS tracks the requested rate until the controller
//! front-end saturates (the paper observes ≈6 900 random-write IOPS), and
//! data failures grow with the *responded* rate, flattening past the
//! knee.
//!
//! Substitution note: the paper states 4 KiB–1 MiB request sizes for this
//! figure, but a SATA device cannot answer 6 900 IOPS of ~0.5 MiB average
//! requests (≈3.5 GB/s); the saturation number only makes sense for small
//! commands, so this sweep uses 4 KiB requests (recorded in
//! EXPERIMENTS.md).

use serde::{Deserialize, Serialize};

use pfault_sim::storage::{GIB, KIB};
use pfault_workload::{ArrivalModel, SizeSpec, WorkloadSpec};

use crate::experiments::{base_trial, campaign_at, ExperimentScale};
use crate::report::{fnum, Table};

/// One swept IOPS point.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct IopsRow {
    /// Requested IOPS (paper x-axis).
    pub requested_iops: u64,
    /// Mean responded IOPS across trials.
    pub responded_iops: f64,
    /// Faults injected.
    pub faults: u64,
    /// Data failures + FWA.
    pub data_loss: u64,
}

/// Full Fig 8 report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IopsReport {
    /// One row per requested rate.
    pub rows: Vec<IopsRow>,
}

impl IopsReport {
    /// Renders the paper-style table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(["requested IOPS", "responded IOPS", "faults", "data loss"]);
        for r in &self.rows {
            t.push_row([
                r.requested_iops.to_string(),
                fnum(r.responded_iops, 0),
                r.faults.to_string(),
                r.data_loss.to_string(),
            ]);
        }
        t
    }

    /// The highest responded IOPS observed (the saturation plateau).
    pub fn saturation_iops(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| r.responded_iops)
            .fold(0.0, f64::max)
    }
}

impl core::fmt::Display for IopsReport {
    /// Renders the report as its aligned table.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.table().render())
    }
}

/// Runs the Fig 8 sweep.
pub fn run(scale: ExperimentScale, seed: u64) -> IopsReport {
    let rows = [1_200u64, 2_400, 6_000, 12_000, 20_000, 25_000, 30_000]
        .iter()
        .map(|&requested_iops| {
            let mut trial = base_trial();
            trial.workload = WorkloadSpec::builder()
                .wss_bytes(16 * GIB)
                .write_fraction(1.0)
                .size(SizeSpec::FixedBytes(4 * KIB))
                .arrival(ArrivalModel::OpenLoop {
                    iops: requested_iops as f64,
                })
                .build();
            // More requests per trial so the rate estimate is stable even
            // at 30 k requested.
            let mut config = campaign_at(trial, scale);
            config.requests_per_trial = (scale.requests_per_trial * 4).max(120);
            let report = super::run_point(config, seed ^ requested_iops, scale);
            IopsRow {
                requested_iops,
                responded_iops: report.responded_iops.mean(),
                faults: report.faults,
                data_loss: report.counts.total_data_loss(),
            }
        })
        .collect();
    IopsReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturation_is_max_of_responded() {
        let r = IopsReport {
            rows: vec![
                IopsRow {
                    requested_iops: 1200,
                    responded_iops: 1201.0,
                    faults: 5,
                    data_loss: 10,
                },
                IopsRow {
                    requested_iops: 30_000,
                    responded_iops: 6_890.0,
                    faults: 5,
                    data_loss: 40,
                },
            ],
        };
        assert_eq!(r.saturation_iops(), 6_890.0);
        assert!(r.to_string().contains("requested IOPS"));
    }
}
