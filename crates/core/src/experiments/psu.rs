//! Fig 4 — PSU output voltage during the discharge phase.
//!
//! Pure power-model experiment (no device): samples both calibrated
//! discharge curves and reports the paper's landmark instants — the 4.5 V
//! host-loss crossing (≈40 ms loaded) and the full-discharge times
//! (≈900 ms loaded, ≈1400 ms unloaded).

use serde::{Deserialize, Serialize};

use pfault_power::psu::{PsuModel, DISCHARGED_MV, HOST_LOSS_MV};
use pfault_sim::SimDuration;

use crate::report::{fnum, Table};

/// One sampled point of a discharge curve.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Time since the cut, ms.
    pub t_ms: f64,
    /// Rail voltage, volts.
    pub volts: f64,
}

/// One curve (loaded or unloaded).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DischargeCurve {
    /// `true` when one SSD loads the supply (Fig 4b).
    pub loaded: bool,
    /// Sampled points.
    pub points: Vec<CurvePoint>,
    /// 4.5 V crossing, ms.
    pub host_loss_ms: f64,
    /// Full-discharge (< 0.5 V) time, ms.
    pub discharged_ms: f64,
}

/// Full Fig 4 report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PsuReport {
    /// Fig 4a — no load.
    pub unloaded: DischargeCurve,
    /// Fig 4b — one SSD.
    pub loaded: DischargeCurve,
}

impl PsuReport {
    /// Renders the landmark table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(["condition", "4.5V crossing (ms)", "discharged (ms)"]);
        for c in [&self.unloaded, &self.loaded] {
            t.push_row([
                if c.loaded {
                    "one SSD (Fig 4b)"
                } else {
                    "no load (Fig 4a)"
                }
                .to_string(),
                fnum(c.host_loss_ms, 1),
                fnum(c.discharged_ms, 1),
            ]);
        }
        t
    }

    /// Renders one curve as a two-column series table.
    pub fn curve_table(curve: &DischargeCurve) -> Table {
        let mut t = Table::new(["t (ms)", "V"]);
        for p in &curve.points {
            t.push_row([fnum(p.t_ms, 0), fnum(p.volts, 2)]);
        }
        t
    }
}

fn sample(model: PsuModel, loaded: bool) -> DischargeCurve {
    let points = model
        .discharge_trace(SimDuration::from_millis(100))
        .into_iter()
        .map(|(t, v)| CurvePoint {
            t_ms: t.as_millis_f64(),
            volts: v.as_volts(),
        })
        .collect();
    DischargeCurve {
        loaded,
        points,
        host_loss_ms: model.time_to_voltage(HOST_LOSS_MV).as_millis_f64(),
        discharged_ms: model.time_to_voltage(DISCHARGED_MV).as_millis_f64(),
    }
}

/// Produces both Fig 4 curves.
pub fn run() -> PsuReport {
    PsuReport {
        unloaded: sample(PsuModel::atx_unloaded(), false),
        loaded: sample(PsuModel::atx_loaded(), true),
    }
}

impl core::fmt::Display for PsuReport {
    /// Renders the report as its aligned table.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.table().render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_and_tables() {
        let r = run();
        assert!(r.loaded.loaded);
        assert!(!r.unloaded.loaded);
        assert!(r.loaded.points.len() >= 9);
        assert!(r.unloaded.discharged_ms > r.loaded.discharged_ms);
        assert!(r.to_string().contains("Fig 4"));
        let series = PsuReport::curve_table(&r.loaded);
        assert_eq!(series.len(), r.loaded.points.len());
    }
}
