//! §IV-A — impact of the interval between request completion and the
//! power fault.
//!
//! A marker write is issued on top of light background traffic; after its
//! ACK the platform idles for a controlled delay, then commands the fault.
//! Sweeping the delay shows the post-completion vulnerability window: the
//! paper observes corrupted requests up to **≈700 ms** after the ACK
//! (volatile cache + volatile mapping), and the same failures with the
//! device's internal cache disabled.

use serde::{Deserialize, Serialize};

use pfault_power::FaultInjector;
use pfault_sim::storage::GIB;
use pfault_sim::{DetRng, Lba, SectorCount, SimDuration};
use pfault_ssd::device::{HostCommand, Ssd, VerifiedContent};
use pfault_ssd::CacheConfig;

use crate::experiments::{base_trial, ExperimentScale};
use crate::report::{fnum, Table};

/// One swept delay point.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct IntervalRow {
    /// Delay between the marker's ACK and the fault command, ms.
    pub delay_ms: u64,
    /// Trials run at this delay.
    pub trials: u64,
    /// Trials in which the marker request was corrupted or reverted.
    pub marker_failures: u64,
}

impl IntervalRow {
    /// Failure probability at this delay.
    pub fn failure_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.marker_failures as f64 / self.trials as f64
        }
    }
}

/// Full §IV-A report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IntervalReport {
    /// Whether the device cache was enabled in this run.
    pub cache_enabled: bool,
    /// One row per delay.
    pub rows: Vec<IntervalRow>,
}

impl IntervalReport {
    /// Largest delay at which any marker failure was observed (the
    /// paper's ≈700 ms number), if any failure occurred at all.
    pub fn max_delay_with_failure_ms(&self) -> Option<u64> {
        self.rows
            .iter()
            .filter(|r| r.marker_failures > 0)
            .map(|r| r.delay_ms)
            .max()
    }

    /// Renders the paper-style table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(["delay after ACK (ms)", "trials", "failures", "rate"]);
        for r in &self.rows {
            t.push_row([
                r.delay_ms.to_string(),
                r.trials.to_string(),
                r.marker_failures.to_string(),
                fnum(r.failure_rate(), 2),
            ]);
        }
        t
    }
}

impl core::fmt::Display for IntervalReport {
    /// Renders the report as its aligned table.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.table().render())
    }
}

/// Runs one marker trial; returns whether the marker request failed.
fn marker_trial(delay: SimDuration, cache_enabled: bool, seed: u64) -> bool {
    let mut trial = base_trial();
    if !cache_enabled {
        trial.ssd.cache = CacheConfig::disabled();
    }
    let root = DetRng::new(seed);
    let mut rng = root.fork("interval");
    let mut ssd = Ssd::new(trial.ssd, root.fork("ssd"));
    let wss_sectors = 8 * GIB / 4096;

    // Background traffic: a handful of random writes so the journal and
    // cache are in a realistic state.
    let background = 8u64;
    for id in 0..background {
        let sectors = SectorCount::new(rng.between(1, 256));
        let lba = Lba::new(rng.below(wss_sectors - sectors.get()));
        ssd.submit(HostCommand::write(id, 0, lba, sectors, rng.next_u64()));
        // Serial submission: wait for the ACK.
        loop {
            let comps = ssd.drain_completions();
            if comps.iter().any(|c| c.request_id == id && c.acked()) {
                break;
            }
            let next = ssd
                .next_event()
                .unwrap_or(ssd.now() + SimDuration::from_millis(1));
            ssd.advance_to(next.max(ssd.now() + SimDuration::from_micros(1)));
        }
    }

    // The marker request.
    let marker_id = background;
    let marker_sectors = SectorCount::new(rng.between(1, 256));
    let marker_lba = Lba::new(rng.below(wss_sectors - marker_sectors.get()));
    let marker_tag = rng.next_u64();
    let marker = HostCommand::write(marker_id, 0, marker_lba, marker_sectors, marker_tag);
    ssd.submit(marker);
    let ack_time = loop {
        let comps = ssd.drain_completions();
        if let Some(c) = comps.iter().find(|c| c.request_id == marker_id) {
            assert!(c.acked(), "marker must complete before the fault");
            break c.time;
        }
        let next = ssd
            .next_event()
            .unwrap_or(ssd.now() + SimDuration::from_millis(1));
        ssd.advance_to(next.max(ssd.now() + SimDuration::from_micros(1)));
    };

    // Idle until ACK + delay, then inject. (The event loop above may have
    // stepped slightly past the ACK instant; never command in the past.)
    let injector = FaultInjector::arduino_atx_loaded();
    let timeline = injector.timeline((ack_time + delay).max(ssd.now()));
    ssd.advance_to(timeline.commanded);
    ssd.power_fail(&timeline);
    ssd.power_on_recover(timeline.discharged + SimDuration::from_secs(1))
        .expect("recovery remounts");

    // Verify the marker.
    (0..marker_sectors.get()).any(|i| {
        let expected = marker.sector_content(i);
        match ssd.verify_read(Lba::new(marker_lba.index() + i)) {
            VerifiedContent::Written(d) => d != expected,
            VerifiedContent::Unwritten | VerifiedContent::Unreadable => true,
        }
    })
}

/// Runs the §IV-A sweep. Delays default to 0–1000 ms in 100 ms steps.
pub fn run(scale: ExperimentScale, seed: u64, cache_enabled: bool) -> IntervalReport {
    let delays: Vec<u64> = (0..=10).map(|i| i * 100).collect();
    let trials_per_delay = (scale.faults_per_point / 4).max(8);
    let rows = delays
        .iter()
        .map(|&delay_ms| {
            let failures = (0..trials_per_delay)
                .filter(|&i| {
                    marker_trial(
                        SimDuration::from_millis(delay_ms),
                        cache_enabled,
                        seed ^ (delay_ms << 10) ^ i as u64,
                    )
                })
                .count() as u64;
            IntervalRow {
                delay_ms,
                trials: trials_per_delay as u64,
                marker_failures: failures,
            }
        })
        .collect();
    IntervalReport {
        cache_enabled,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_delay_and_rates() {
        let r = IntervalReport {
            cache_enabled: true,
            rows: vec![
                IntervalRow {
                    delay_ms: 0,
                    trials: 10,
                    marker_failures: 10,
                },
                IntervalRow {
                    delay_ms: 500,
                    trials: 10,
                    marker_failures: 3,
                },
                IntervalRow {
                    delay_ms: 900,
                    trials: 10,
                    marker_failures: 0,
                },
            ],
        };
        assert_eq!(r.max_delay_with_failure_ms(), Some(500));
        assert!((r.rows[1].failure_rate() - 0.3).abs() < 1e-12);
        assert_eq!(
            IntervalRow {
                delay_ms: 0,
                trials: 0,
                marker_failures: 0
            }
            .failure_rate(),
            0.0
        );
        let none = IntervalReport {
            cache_enabled: false,
            rows: vec![],
        };
        assert_eq!(none.max_delay_with_failure_ms(), None);
        assert!(r.to_string().contains("delay after ACK"));
    }
}
