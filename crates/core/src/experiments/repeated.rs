//! Extension — repeated outages on a single device.
//!
//! The paper's testbed injects thousands of faults into the *same*
//! physical drives, power-cycling between injections. This experiment
//! checks that behaviour over consecutive cycles on one simulated device:
//! each cycle writes a batch of requests, suffers an outage, recovers, and
//! verifies every batch written so far. Per-cycle loss should stay flat
//! (damage does not compound while the drive is young), and data that
//! survived one outage must keep surviving later ones.

use serde::{Deserialize, Serialize};

use pfault_power::FaultInjector;
use pfault_sim::storage::GIB;
use pfault_sim::{DetRng, Lba, SectorCount, SimDuration};
use pfault_ssd::device::{HostCommand, Ssd, VerifiedContent};

use crate::experiments::{base_trial, ExperimentScale};
use crate::report::Table;

/// Results of one outage cycle.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CycleRow {
    /// Cycle index (0-based).
    pub cycle: u64,
    /// Requests written in this cycle.
    pub written: u64,
    /// This cycle's requests lost to this cycle's outage.
    pub fresh_lost: u64,
    /// Requests from *earlier* cycles (verified intact before) that a
    /// later outage newly damaged.
    pub old_newly_lost: u64,
}

/// Full repeated-outage report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RepeatedReport {
    /// Devices exercised.
    pub devices: u64,
    /// Aggregated per-cycle rows (summed over devices).
    pub rows: Vec<CycleRow>,
}

impl RepeatedReport {
    /// Total requests from earlier cycles newly damaged by later faults.
    pub fn total_old_newly_lost(&self) -> u64 {
        self.rows.iter().map(|r| r.old_newly_lost).sum()
    }

    /// Mean fresh loss per cycle.
    pub fn mean_fresh_lost(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows.iter().map(|r| r.fresh_lost).sum::<u64>() as f64 / self.rows.len() as f64
    }

    /// Renders the table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(["cycle", "written", "fresh lost", "old newly lost"]);
        for r in &self.rows {
            t.push_row([
                r.cycle.to_string(),
                r.written.to_string(),
                r.fresh_lost.to_string(),
                r.old_newly_lost.to_string(),
            ]);
        }
        t
    }
}

impl core::fmt::Display for RepeatedReport {
    /// Renders the report as its aligned table.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.table().render())
    }
}

/// Exercises one device over `cycles` outages; returns per-cycle
/// `(written, fresh_lost, old_newly_lost)`.
fn device_run(cycles: u64, writes_per_cycle: u64, seed: u64) -> Vec<(u64, u64, u64)> {
    let trial = base_trial();
    let root = DetRng::new(seed);
    let mut rng = root.fork("repeated");
    let mut ssd = Ssd::new(trial.ssd, root.fork("ssd"));
    let wss = 32 * GIB / 4096;
    let injector = FaultInjector::arduino_atx_loaded();

    // Per request: command + whether it was verified intact last time.
    let mut survivors: Vec<HostCommand> = Vec::new();
    let mut next_id = 0u64;
    let mut out = Vec::new();

    let verify = |ssd: &mut Ssd, cmd: &HostCommand| -> bool {
        (0..cmd.sectors.get()).all(|i| {
            matches!(
                ssd.verify_read(Lba::new(cmd.lba.index() + i)),
                VerifiedContent::Written(d) if d == cmd.sector_content(i)
            )
        })
    };

    for _cycle in 0..cycles {
        let mut fresh: Vec<HostCommand> = Vec::new();
        for _ in 0..writes_per_cycle {
            let sectors = SectorCount::new(rng.between(1, 128));
            let lba = Lba::new(rng.below(wss - sectors.get()));
            let cmd = HostCommand::write(next_id, 0, lba, sectors, rng.next_u64());
            next_id += 1;
            ssd.submit(cmd);
            loop {
                if ssd
                    .drain_completions()
                    .iter()
                    .any(|c| c.request_id == cmd.request_id)
                {
                    break;
                }
                let next = ssd
                    .next_event()
                    .unwrap_or(ssd.now() + SimDuration::from_millis(1));
                ssd.advance_to(next.max(ssd.now() + SimDuration::from_micros(1)));
            }
            fresh.push(cmd);
        }

        let timeline = injector.timeline(ssd.now());
        ssd.power_fail(&timeline);
        ssd.power_on_recover(timeline.discharged + SimDuration::from_secs(1))
            .expect("recovery remounts");

        // Overwritten sectors belong to the newest writer; drop older
        // commands that were superseded before verifying.
        let mut owner = std::collections::HashMap::new();
        for cmd in survivors.iter().chain(&fresh) {
            for i in 0..cmd.sectors.get() {
                owner.insert(cmd.lba.index() + i, cmd.request_id);
            }
        }
        let owns_everything = |cmd: &HostCommand| {
            (0..cmd.sectors.get()).all(|i| owner[&(cmd.lba.index() + i)] == cmd.request_id)
        };

        let mut fresh_lost = 0;
        let mut next_survivors = Vec::new();
        for cmd in &fresh {
            if !owns_everything(cmd) {
                continue;
            }
            if verify(&mut ssd, cmd) {
                next_survivors.push(*cmd);
            } else {
                fresh_lost += 1;
            }
        }
        let mut old_newly_lost = 0;
        for cmd in &survivors {
            if !owns_everything(cmd) {
                continue;
            }
            if verify(&mut ssd, cmd) {
                next_survivors.push(*cmd);
            } else {
                old_newly_lost += 1;
            }
        }
        survivors = next_survivors;
        out.push((fresh.len() as u64, fresh_lost, old_newly_lost));
    }
    out
}

/// Runs the repeated-outage study over several independent devices.
pub fn run(scale: ExperimentScale, seed: u64) -> RepeatedReport {
    let cycles = 8u64;
    let devices = (scale.faults_per_point as u64 / cycles).max(3);
    let writes_per_cycle = (scale.requests_per_trial as u64 / 2).max(10);
    let mut rows: Vec<CycleRow> = (0..cycles)
        .map(|cycle| CycleRow {
            cycle,
            written: 0,
            fresh_lost: 0,
            old_newly_lost: 0,
        })
        .collect();
    for d in 0..devices {
        let per_cycle = device_run(cycles, writes_per_cycle, seed ^ (d << 21));
        for (cycle, (written, fresh, old)) in per_cycle.into_iter().enumerate() {
            rows[cycle].written += written;
            rows[cycle].fresh_lost += fresh;
            rows[cycle].old_newly_lost += old;
        }
    }
    RepeatedReport { devices, rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_helpers() {
        let r = RepeatedReport {
            devices: 2,
            rows: vec![
                CycleRow {
                    cycle: 0,
                    written: 20,
                    fresh_lost: 4,
                    old_newly_lost: 0,
                },
                CycleRow {
                    cycle: 1,
                    written: 20,
                    fresh_lost: 6,
                    old_newly_lost: 1,
                },
            ],
        };
        assert_eq!(r.total_old_newly_lost(), 1);
        assert!((r.mean_fresh_lost() - 5.0).abs() < 1e-12);
        assert!(r.to_string().contains("fresh lost"));
    }
}
