//! Extension L — fleet-scale correlated outages over erasure-coded
//! stripes.
//!
//! The paper's single-device pathologies (FWA, torn journals, bricked
//! mounts) meet the operator's standard defence: m+k erasure coding
//! declustered over a fleet. This experiment sweeps PSU-group size,
//! parity depth k, and outage *correlation* — a rack-level cut drops a
//! whole PSU group at one jittered instant, versus the same victim
//! count cut one device at a time with recovery and rebuild between —
//! and reports availability, durability, and mechanistic MTTDL per
//! point.
//!
//! Expected shape: independent cuts stay within parity (each outage
//! reverts at most one chunk per stripe, and the idle time between cuts
//! flushes the other victims' caches), while correlated cuts revert
//! several chunks of the same stripe at once and push it past k — so
//! correlated points show strictly worse durability and finite MTTDL.
//! Deeper parity buys the correlated case back some margin; a tight
//! rebuild-bandwidth budget lets a second outage land on stripes still
//! degraded from the first.
//!
//! Every trial is a pure function of `(config, seed)` with integer-only
//! tallies, so the report is byte-identical across the serial, striped,
//! and work-stealing engines — asserted at run time by re-reducing one
//! point on two engines.

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use pfault_fleet::{FleetConfig, FleetSim, FleetTally};
use pfault_obs::Metrics;
use pfault_sim::checksum::mix64;

use crate::experiments::{EngineArg, ExperimentScale};
use crate::report::Table;

/// Everything accumulated for one swept point: the fleet tally plus the
/// obs-pipeline counters derived from the probe stream (kept separate
/// so the two can cross-check each other).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PointAgg {
    /// Merged integer tally across the point's trials.
    pub tally: FleetTally,
    /// `fleet.outage` probe events, via [`Metrics`].
    pub obs_outages: u64,
    /// `fleet.degraded-read` probe events, via [`Metrics`].
    pub obs_degraded: u64,
    /// `fleet.stripe-lost` probe events, via [`Metrics`].
    pub obs_lost: u64,
    /// `fleet.rebuild-interrupted` probe events, via [`Metrics`].
    pub obs_interrupted: u64,
}

impl PointAgg {
    fn merge(&mut self, other: &PointAgg) {
        self.tally.merge(&other.tally);
        self.obs_outages += other.obs_outages;
        self.obs_degraded += other.obs_degraded;
        self.obs_lost += other.obs_lost;
        self.obs_interrupted += other.obs_interrupted;
    }
}

/// One swept point of the fleet experiment.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FleetRow {
    /// Devices sharing one PSU (victims per outage event).
    pub psu_group: usize,
    /// Parity chunks k (stripe survives up to k unrecoverable chunks).
    pub parity: usize,
    /// Rack-level correlated cuts, or the same victim count cut
    /// independently.
    pub correlated: bool,
    /// Trials merged into this row.
    pub trials: u64,
    /// Total device cuts across the row's trials.
    pub devices_cut: u64,
    /// Fraction of stripe scans that found the stripe readable.
    pub availability: f64,
    /// Fraction of stripes never lost.
    pub durability: f64,
    /// Mean fleet-hours between data-loss events (`None`: no loss ever
    /// observed — MTTDL unbounded, not zero).
    pub mttdl_hours: Option<f64>,
    /// Stripe-loss events (scans that found > k chunks unrecoverable).
    pub stripes_lost: u64,
    /// Reads served through erasure-coded reconstruction.
    pub degraded_reads: u64,
    /// Rebuild passes interrupted by an exhausted bandwidth budget.
    pub rebuilds_interrupted: u64,
    /// Lost-stripe chunks attributed to FWA staleness.
    pub loss_fwa: u64,
    /// Lost-stripe chunks attributed to torn writes.
    pub loss_torn: u64,
    /// Lost-stripe chunks attributed to bricked/wiped devices.
    pub loss_missing: u64,
}

/// Full fleet report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetReport {
    /// One row per (psu_group, parity, correlation) point.
    pub rows: Vec<FleetRow>,
    /// Fleet-layer failure tallies in the campaign-wide
    /// [`crate::analyzer::FailureCounts`] shape (checkpoint v4 fields).
    pub counts: crate::analyzer::FailureCounts,
}

impl FleetReport {
    /// Rows for correlated points.
    pub fn correlated_rows(&self) -> impl Iterator<Item = &FleetRow> {
        self.rows.iter().filter(|r| r.correlated)
    }

    /// The independent twin of a correlated row, when present.
    pub fn independent_twin(&self, row: &FleetRow) -> Option<&FleetRow> {
        self.rows
            .iter()
            .find(|r| !r.correlated && r.psu_group == row.psu_group && r.parity == row.parity)
    }

    /// Renders the table.
    pub fn table(&self) -> Table {
        let mut t = Table::new([
            "psu group",
            "k",
            "mode",
            "cut",
            "avail",
            "durability",
            "MTTDL (h)",
            "lost",
            "degraded",
            "interrupted",
            "fwa",
            "torn",
            "missing",
        ]);
        for r in &self.rows {
            t.push_row([
                r.psu_group.to_string(),
                r.parity.to_string(),
                if r.correlated { "corr" } else { "indep" }.to_string(),
                r.devices_cut.to_string(),
                format!("{:.4}", r.availability),
                format!("{:.4}", r.durability),
                match r.mttdl_hours {
                    Some(h) => format!("{h:.0}"),
                    None => "unbounded".to_string(),
                },
                r.stripes_lost.to_string(),
                r.degraded_reads.to_string(),
                r.rebuilds_interrupted.to_string(),
                r.loss_fwa.to_string(),
                r.loss_torn.to_string(),
                r.loss_missing.to_string(),
            ]);
        }
        t
    }
}

impl core::fmt::Display for FleetReport {
    /// Renders the report as its aligned table.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.table().render())
    }
}

/// The swept fleet: 8 devices, 3 data chunks, parity and PSU grouping
/// varied per point. The rebuild budget is deliberately tight enough
/// that a correlated 4-device cut leaves work for the next gap.
fn point_config(psu_group: usize, parity: usize, correlated: bool) -> FleetConfig {
    let mut c = FleetConfig::small();
    c.parity_chunks = parity;
    c.psu_group = psu_group;
    c.correlated = correlated;
    c.rebuild_budget_sectors = 24;
    c
}

/// One trial of one point, with its probe stream folded through the
/// obs [`Metrics`] pipeline.
fn run_trial(config: &FleetConfig, seed: u64) -> PointAgg {
    let r = FleetSim::run(config, seed);
    let m = Metrics::from_records(&r.probes);
    PointAgg {
        tally: r.tally,
        obs_outages: m.counter("fleet.outage"),
        obs_degraded: m.counter("fleet.degraded-read"),
        obs_lost: m.counter("fleet.stripe-lost"),
        obs_interrupted: m.counter("fleet.rebuild-interrupted"),
    }
}

/// Reduces `trials` trials of one point on the chosen engine. All three
/// engines absorb results in canonical trial order, so the aggregate is
/// byte-identical regardless of engine or thread count.
pub fn run_point(
    config: &FleetConfig,
    point_seed: u64,
    trials: u64,
    threads: usize,
    engine: EngineArg,
) -> PointAgg {
    let engine = match engine {
        EngineArg::Auto => {
            if threads > 1 {
                EngineArg::Stealing
            } else {
                EngineArg::Serial
            }
        }
        e => e,
    };
    match engine {
        EngineArg::Serial | EngineArg::Auto => {
            let mut acc = PointAgg::default();
            for i in 0..trials {
                acc.merge(&run_trial(config, mix64(point_seed, i)));
            }
            acc
        }
        EngineArg::Striped => {
            let threads = threads.clamp(1, trials.max(1) as usize);
            let mut slots: Vec<Option<PointAgg>> = vec![None; trials as usize];
            std::thread::scope(|scope| {
                let chunks: Vec<(usize, &mut [Option<PointAgg>])> = slots
                    .chunks_mut(trials.div_ceil(threads as u64) as usize)
                    .enumerate()
                    .collect();
                for (stripe, chunk) in chunks {
                    let base = stripe as u64 * trials.div_ceil(threads as u64);
                    scope.spawn(move || {
                        for (off, slot) in chunk.iter_mut().enumerate() {
                            let i = base + off as u64;
                            *slot = Some(run_trial(config, mix64(point_seed, i)));
                        }
                    });
                }
            });
            let mut acc = PointAgg::default();
            for slot in slots {
                acc.merge(&slot.expect("every stripe fills its slots"));
            }
            acc
        }
        EngineArg::Stealing => {
            let (acc, _stats) = crate::scheduler::run_work_stealing(
                trials,
                threads,
                crate::scheduler::DEFAULT_CHUNK,
                |i| run_trial(config, mix64(point_seed, i)),
                PointAgg::default(),
                |acc: &mut PointAgg, _i, t: PointAgg| acc.merge(&t),
            );
            acc
        }
    }
}

/// Runs the fleet sweep at the given scale with the given engine.
pub fn run(scale: ExperimentScale, seed: u64, engine: EngineArg) -> FleetReport {
    let trials = (scale.faults_per_point as u64 / 10).max(2);
    let mut rows = Vec::new();
    let mut counts = crate::analyzer::FailureCounts::default();
    let mut point = 0u64;
    for &parity in &[1usize, 2] {
        for &psu_group in &[1usize, 4] {
            for &correlated in &[true, false] {
                let config = point_config(psu_group, parity, correlated);
                let point_seed = mix64(seed, 0x464C_5054 ^ point);
                let agg = run_point(&config, point_seed, trials, scale.threads, engine);
                let t = &agg.tally;
                rows.push(FleetRow {
                    psu_group,
                    parity,
                    correlated,
                    trials,
                    devices_cut: t.devices_cut,
                    availability: t.availability(),
                    durability: t.durability(),
                    mttdl_hours: t.mttdl_hours(),
                    stripes_lost: t.stripe_loss_events,
                    degraded_reads: t.degraded_reads,
                    rebuilds_interrupted: t.rebuilds_interrupted,
                    loss_fwa: t.loss_chunks_stale,
                    loss_torn: t.loss_chunks_garbled,
                    loss_missing: t.loss_chunks_missing,
                });
                counts.stripes_lost += t.stripe_loss_events;
                counts.degraded_reads += t.degraded_reads;
                counts.rebuilds_interrupted += t.rebuilds_interrupted;
                point += 1;
            }
        }
    }
    FleetReport { rows, counts }
}

/// Self-checks for an explicit `--exp fleet` run. Returns the list of
/// violated expectations (empty = the run vouches for itself).
pub fn check(report: &FleetReport, scale: ExperimentScale, seed: u64) -> Vec<String> {
    let mut checks = Vec::new();

    // The headline: every correlated point with a real PSU group must be
    // strictly worse than its independent twin.
    for corr in report.correlated_rows() {
        if corr.psu_group <= 1 {
            continue;
        }
        match report.independent_twin(corr) {
            None => checks.push(format!(
                "fleet smoke failed: correlated point (group {}, k {}) has no independent twin",
                corr.psu_group, corr.parity
            )),
            Some(indep) => {
                if corr.devices_cut != indep.devices_cut {
                    checks.push(format!(
                        "fleet smoke failed: unfair comparison — correlated cut {} devices, \
                         independent {}",
                        corr.devices_cut, indep.devices_cut
                    ));
                }
                if corr.stripes_lost <= indep.stripes_lost {
                    checks.push(format!(
                        "fleet smoke failed: correlated (group {}, k {}) lost {} stripes, \
                         not more than independent's {}",
                        corr.psu_group, corr.parity, corr.stripes_lost, indep.stripes_lost
                    ));
                }
                let worse = match (corr.mttdl_hours, indep.mttdl_hours) {
                    (Some(c), Some(i)) => c < i,
                    (Some(_), None) => true,
                    (None, _) => false,
                };
                if !worse {
                    checks.push(format!(
                        "fleet smoke failed: correlated MTTDL {:?} not below independent {:?} \
                         (group {}, k {})",
                        corr.mttdl_hours, indep.mttdl_hours, corr.psu_group, corr.parity
                    ));
                }
            }
        }
    }

    let total = |f: fn(&FleetRow) -> u64| report.rows.iter().map(f).sum::<u64>();
    if total(|r| r.degraded_reads) == 0 {
        checks.push("fleet smoke failed: no read ever needed RS reconstruction".into());
    }
    if total(|r| r.rebuilds_interrupted) == 0 {
        checks.push("fleet smoke failed: no rebuild was ever interrupted mid-pass".into());
    }
    if report
        .correlated_rows()
        .all(|r| r.loss_fwa + r.loss_torn + r.loss_missing == 0)
    {
        checks.push(
            "fleet smoke failed: no stripe loss was attributed to a device-level cause".into(),
        );
    }

    // Engine independence, re-proven on this run's first point: the
    // serial and work-stealing reductions must agree bit-for-bit.
    let trials = (scale.faults_per_point as u64 / 10).max(2);
    let config = point_config(1, 1, true);
    let point_seed = mix64(seed, 0x464C_5054);
    let serial = run_point(&config, point_seed, trials, 1, EngineArg::Serial);
    let stealing = run_point(&config, point_seed, trials, 2, EngineArg::Stealing);
    if serial != stealing {
        checks.push("fleet smoke failed: serial and stealing engines diverged".into());
    }
    // And the obs pipeline must agree with the integer tallies.
    if serial.obs_degraded != serial.tally.degraded_reads
        || serial.obs_lost != serial.tally.stripe_loss_events
        || serial.obs_interrupted != serial.tally.rebuilds_interrupted
    {
        checks.push("fleet smoke failed: probe-derived counters diverge from tallies".into());
    }

    checks
}

/// Renders the human-readable section.
pub fn render(report: &FleetReport) -> String {
    let mut text = String::new();
    let _ = writeln!(
        text,
        "== Extension L: correlated outages vs erasure-coded fleets =="
    );
    let _ = writeln!(text, "{}", report.table().render());
    let _ = writeln!(
        text,
        "stripe-loss events {}, degraded reads {}, rebuilds interrupted {}",
        report.counts.stripes_lost, report.counts.degraded_reads,
        report.counts.rebuilds_interrupted
    );
    let _ = writeln!(
        text,
        "(correlated rack-level cuts revert several chunks of one stripe at once;\n\
         the same victim count cut independently stays within parity)\n"
    );
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentScale {
        ExperimentScale {
            faults_per_point: 6,
            requests_per_trial: 10,
            threads: 2,
        }
    }

    #[test]
    fn same_seed_fleet_reports_are_byte_identical_across_engines() {
        // Satellite: serial, striped, and stealing engines — and plain
        // reruns — must all produce byte-identical reports.
        let a = run(tiny(), 777, EngineArg::Serial);
        let b = run(tiny(), 777, EngineArg::Striped);
        let c = run(tiny(), 777, EngineArg::Stealing);
        let d = run(tiny(), 777, EngineArg::Serial);
        let json = |r: &FleetReport| serde_json::to_string(r).expect("serializes");
        assert_eq!(json(&a), json(&b), "serial vs striped");
        assert_eq!(json(&a), json(&c), "serial vs stealing");
        assert_eq!(json(&a), json(&d), "rerun");
    }

    #[test]
    fn correlated_points_degrade_mttdl_and_self_checks_pass() {
        let report = run(tiny(), 42, EngineArg::Auto);
        let failures = check(&report, tiny(), 42);
        assert!(
            failures.is_empty(),
            "fleet self-checks must pass: {failures:?}"
        );
        // The v4 checkpoint fields carry real fleet data.
        assert!(report.counts.stripes_lost > 0);
        assert!(report.counts.degraded_reads > 0);
    }

    #[test]
    fn report_renders_with_unbounded_mttdl() {
        let report = run(tiny(), 99, EngineArg::Serial);
        let text = render(&report);
        assert!(text.contains("Extension L"));
        assert!(
            text.contains("unbounded"),
            "independent single-cut points never lose data: {text}"
        );
    }
}
