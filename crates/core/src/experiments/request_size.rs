//! Fig 7 — impact of request size.
//!
//! Fixed-size full-write workloads at {4, 16, 64, 256, 1024} KiB. Expected
//! shape: small requests fail far more often per fault (more distinct
//! requests resident in the volatile window at any instant), and at 4 KiB
//! most failures are **FWA** — single-sector requests either apply fully
//! or revert fully, and reverts classify as FWA.

use serde::{Deserialize, Serialize};

use pfault_sim::storage::{GIB, KIB};
use pfault_workload::{SizeSpec, WorkloadSpec};

use crate::experiments::{base_trial, campaign_at, ExperimentScale};
use crate::report::{fnum, Table};

/// One swept size point.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RequestSizeRow {
    /// Request size in KiB (paper x-axis).
    pub size_kib: u64,
    /// Faults injected.
    pub faults: u64,
    /// Data failures (excluding FWA).
    pub data_failures: u64,
    /// False write-acknowledges.
    pub fwa: u64,
    /// Total data loss per fault.
    pub data_loss_per_fault: f64,
}

/// Full Fig 7 report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RequestSizeReport {
    /// One row per size.
    pub rows: Vec<RequestSizeRow>,
}

impl RequestSizeReport {
    /// Renders the paper-style table.
    pub fn table(&self) -> Table {
        let mut t = Table::new([
            "size (KiB)",
            "faults",
            "data failures",
            "FWA",
            "data loss/fault",
        ]);
        for r in &self.rows {
            t.push_row([
                r.size_kib.to_string(),
                r.faults.to_string(),
                r.data_failures.to_string(),
                r.fwa.to_string(),
                fnum(r.data_loss_per_fault, 2),
            ]);
        }
        t
    }

    /// Row at a given size.
    pub fn at(&self, size_kib: u64) -> Option<&RequestSizeRow> {
        self.rows.iter().find(|r| r.size_kib == size_kib)
    }
}

impl RequestSizeReport {
    /// Renders the Fig 7-style grouped bar chart.
    pub fn chart(&self) -> crate::chart::BarChart {
        let mut c = crate::chart::BarChart::new(
            "Fig 7 — failures vs request size",
            ["data failures", "FWA"],
        );
        for r in &self.rows {
            c.push(
                format!("{} KiB", r.size_kib),
                [r.data_failures as f64, r.fwa as f64],
            );
        }
        c
    }
}

impl core::fmt::Display for RequestSizeReport {
    /// Renders the report as its aligned table.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.table().render())
    }
}

/// Runs the Fig 7 sweep.
pub fn run(scale: ExperimentScale, seed: u64) -> RequestSizeReport {
    let rows = [4u64, 16, 64, 256, 1024]
        .iter()
        .map(|&size_kib| {
            let mut trial = base_trial();
            trial.workload = WorkloadSpec::builder()
                .wss_bytes(64 * GIB)
                .write_fraction(1.0)
                .size(SizeSpec::FixedBytes(size_kib * KIB))
                .build();
            let report = super::run_point(campaign_at(trial, scale), seed ^ (size_kib << 4), scale);
            RequestSizeRow {
                size_kib,
                faults: report.faults,
                data_failures: report.counts.data_failures,
                fwa: report.counts.fwa,
                data_loss_per_fault: report.data_loss_per_fault(),
            }
        })
        .collect();
    RequestSizeReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_and_render() {
        let r = RequestSizeReport {
            rows: vec![
                RequestSizeRow {
                    size_kib: 4,
                    faults: 5,
                    data_failures: 0,
                    fwa: 100,
                    data_loss_per_fault: 20.0,
                },
                RequestSizeRow {
                    size_kib: 1024,
                    faults: 5,
                    data_failures: 5,
                    fwa: 10,
                    data_loss_per_fault: 3.0,
                },
            ],
        };
        assert_eq!(r.at(4).unwrap().fwa, 100);
        assert!(r.at(8).is_none());
        assert!(r.to_string().contains("size (KiB)"));
    }
}
