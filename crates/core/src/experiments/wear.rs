//! Extension — device age vs power-fault damage.
//!
//! The field studies the paper cites (§II: Meza et al. \[19\], Schroeder et
//! al. \[22\]) show NAND reliability degrading with program/erase cycles.
//! This extension runs the default fault campaign on drives pre-aged to
//! increasing wear levels: as the raw bit-error floor rises toward the
//! ECC's correction strength, the same power fault corrupts more —
//! marginal pages that a fresh drive would read back cleanly tip over
//! after the fault's added disturbance.

use serde::{Deserialize, Serialize};

use pfault_sim::storage::GIB;
use pfault_workload::WorkloadSpec;

use crate::experiments::{base_trial, campaign_at, ExperimentScale};
use crate::report::{fnum, Table};

/// One wear level's results.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct WearRow {
    /// Pre-aged program/erase cycles.
    pub cycles: u32,
    /// Faults injected.
    pub faults: u64,
    /// Data failures (excluding FWA).
    pub data_failures: u64,
    /// Total data loss per fault.
    pub data_loss_per_fault: f64,
}

/// Full wear report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WearReport {
    /// One row per wear level.
    pub rows: Vec<WearRow>,
}

impl WearReport {
    /// Row at a given cycle count.
    pub fn at(&self, cycles: u32) -> Option<&WearRow> {
        self.rows.iter().find(|r| r.cycles == cycles)
    }

    /// Renders the table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(["P/E cycles", "faults", "data failures", "loss/fault"]);
        for r in &self.rows {
            t.push_row([
                r.cycles.to_string(),
                r.faults.to_string(),
                r.data_failures.to_string(),
                fnum(r.data_loss_per_fault, 2),
            ]);
        }
        t
    }
}

impl core::fmt::Display for WearReport {
    /// Renders the report as its aligned table.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.table().render())
    }
}

/// Runs the wear sweep (fresh → near end-of-life).
pub fn run(scale: ExperimentScale, seed: u64) -> WearReport {
    let rows = [0u32, 1_000, 2_000, 2_800]
        .iter()
        .map(|&cycles| {
            let mut trial = base_trial();
            trial.ssd.baseline_wear = cycles;
            trial.workload = WorkloadSpec::builder()
                .wss_bytes(64 * GIB)
                .write_fraction(1.0)
                .build();
            let report =
                super::run_point(campaign_at(trial, scale), seed ^ (u64::from(cycles) << 5), scale);
            WearRow {
                cycles,
                faults: report.faults,
                data_failures: report.counts.data_failures,
                data_loss_per_fault: report.data_loss_per_fault(),
            }
        })
        .collect();
    WearReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_cycles() {
        let r = WearReport {
            rows: vec![
                WearRow {
                    cycles: 0,
                    faults: 5,
                    data_failures: 5,
                    data_loss_per_fault: 3.0,
                },
                WearRow {
                    cycles: 2_800,
                    faults: 5,
                    data_failures: 300,
                    data_loss_per_fault: 80.0,
                },
            ],
        };
        assert_eq!(r.at(0).unwrap().data_loss_per_fault, 3.0);
        assert!(r.at(500).is_none());
        assert!(r.to_string().contains("P/E cycles"));
    }
}
