//! Ablation — internal cache on / off / supercap.
//!
//! §IV-A reports that disabling the internal cache does **not** eliminate
//! failures (the mapping table is still volatile); §I notes that high-end
//! devices add supercapacitors. This ablation quantifies all three
//! configurations on the same workload. Expected shape: cache-off reduces
//! FWA sharply but data loss persists; supercap eliminates loss.

use serde::{Deserialize, Serialize};

use pfault_sim::storage::GIB;
use pfault_ssd::CacheConfig;
use pfault_workload::WorkloadSpec;

use crate::experiments::{base_trial, campaign_at, ExperimentScale};
use crate::report::{fnum, Table};

/// The three configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheVariant {
    /// Write-back cache enabled (consumer default).
    Enabled,
    /// Cache disabled: ACK waits for NAND.
    Disabled,
    /// Cache enabled plus supercap power-loss protection.
    Supercap,
}

/// One variant's results.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CacheRow {
    /// Configuration.
    pub variant: CacheVariant,
    /// Faults injected.
    pub faults: u64,
    /// Data failures (excluding FWA).
    pub data_failures: u64,
    /// False write-acknowledges.
    pub fwa: u64,
    /// Total data loss per fault.
    pub data_loss_per_fault: f64,
}

/// Full ablation report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheAblationReport {
    /// One row per variant.
    pub rows: Vec<CacheRow>,
}

impl CacheAblationReport {
    /// Row for one variant.
    pub fn at(&self, variant: CacheVariant) -> Option<&CacheRow> {
        self.rows.iter().find(|r| r.variant == variant)
    }

    /// Renders the table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(["cache", "faults", "data failures", "FWA", "data loss/fault"]);
        for r in &self.rows {
            t.push_row([
                format!("{:?}", r.variant).to_lowercase(),
                r.faults.to_string(),
                r.data_failures.to_string(),
                r.fwa.to_string(),
                fnum(r.data_loss_per_fault, 2),
            ]);
        }
        t
    }
}

impl core::fmt::Display for CacheAblationReport {
    /// Renders the report as its aligned table.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.table().render())
    }
}

/// Runs all three variants.
pub fn run(scale: ExperimentScale, seed: u64) -> CacheAblationReport {
    let rows = [
        CacheVariant::Enabled,
        CacheVariant::Disabled,
        CacheVariant::Supercap,
    ]
    .iter()
    .enumerate()
    .map(|(i, &variant)| {
        let mut trial = base_trial();
        trial.workload = WorkloadSpec::builder()
            .wss_bytes(64 * GIB)
            .write_fraction(1.0)
            .build();
        match variant {
            CacheVariant::Enabled => {}
            CacheVariant::Disabled => trial.ssd.cache = CacheConfig::disabled(),
            CacheVariant::Supercap => trial.ssd.supercap = true,
        }
        let report =
            super::run_point(campaign_at(trial, scale), seed ^ ((i as u64 + 3) << 20), scale);
        CacheRow {
            variant,
            faults: report.faults,
            data_failures: report.counts.data_failures,
            fwa: report.counts.fwa,
            data_loss_per_fault: report.data_loss_per_fault(),
        }
    })
    .collect();
    CacheAblationReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_variant() {
        let r = CacheAblationReport {
            rows: vec![CacheRow {
                variant: CacheVariant::Supercap,
                faults: 5,
                data_failures: 0,
                fwa: 0,
                data_loss_per_fault: 0.0,
            }],
        };
        assert_eq!(
            r.at(CacheVariant::Supercap).unwrap().data_loss_per_fault,
            0.0
        );
        assert!(r.at(CacheVariant::Enabled).is_none());
        assert!(r.to_string().contains("supercap"));
    }
}
