//! Ablation — PSU discharge ramp vs high-speed transistor cut.
//!
//! The paper's methodological claim (§III-A2) is that prior rigs \[12, 18\]
//! cut power in microseconds, which is not what data-centre outages look
//! like: a real PSU ramps down over hundreds of milliseconds, during which
//! the oblivious firmware keeps flushing. This ablation runs the same
//! campaign under both rigs. Expected shape: the instant cut interrupts
//! more in-flight programs (it grants zero grace) and strands more dirty
//! data, while the discharge ramp still loses plenty — the ramp is *not*
//! protective, just different.

use serde::{Deserialize, Serialize};

use pfault_power::FaultInjector;
use pfault_sim::storage::GIB;
use pfault_workload::WorkloadSpec;

use crate::experiments::{base_trial, campaign_at, ExperimentScale};
use crate::report::{fnum, Table};

/// One rig's results.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct InjectorRow {
    /// `true` for the ATX discharge rig, `false` for the transistor cut.
    pub discharge_ramp: bool,
    /// Faults injected.
    pub faults: u64,
    /// Total data loss (data failures + FWA).
    pub data_loss: u64,
    /// Programs interrupted mid-operation.
    pub interrupted_programs: u64,
    /// Paired-page collateral corruptions.
    pub paired_corruptions: u64,
    /// Data loss per fault.
    pub data_loss_per_fault: f64,
}

/// Full ablation report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InjectorAblationReport {
    /// The paper's rig.
    pub atx: InjectorRow,
    /// The prior-work rig.
    pub transistor: InjectorRow,
}

impl InjectorAblationReport {
    /// Renders the table.
    pub fn table(&self) -> Table {
        let mut t = Table::new([
            "injector",
            "faults",
            "data loss",
            "interrupted programs",
            "paired corruptions",
            "loss/fault",
        ]);
        for r in [&self.atx, &self.transistor] {
            t.push_row([
                if r.discharge_ramp {
                    "ATX discharge"
                } else {
                    "transistor cut"
                }
                .to_string(),
                r.faults.to_string(),
                r.data_loss.to_string(),
                r.interrupted_programs.to_string(),
                r.paired_corruptions.to_string(),
                fnum(r.data_loss_per_fault, 2),
            ]);
        }
        t
    }
}

fn run_rig(
    injector: FaultInjector,
    discharge_ramp: bool,
    scale: ExperimentScale,
    seed: u64,
) -> InjectorRow {
    let mut trial = base_trial();
    trial.injector = injector;
    trial.workload = WorkloadSpec::builder()
        .wss_bytes(64 * GIB)
        .write_fraction(1.0)
        .build();
    let report = super::run_point(campaign_at(trial, scale), seed, scale);
    InjectorRow {
        discharge_ramp,
        faults: report.faults,
        data_loss: report.counts.total_data_loss(),
        interrupted_programs: report.interrupted_programs,
        paired_corruptions: report.paired_corruptions,
        data_loss_per_fault: report.data_loss_per_fault(),
    }
}

impl core::fmt::Display for InjectorAblationReport {
    /// Renders the report as its aligned table.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.table().render())
    }
}

/// Runs both rigs.
pub fn run(scale: ExperimentScale, seed: u64) -> InjectorAblationReport {
    InjectorAblationReport {
        atx: run_rig(FaultInjector::arduino_atx_loaded(), true, scale, seed),
        transistor: run_rig(FaultInjector::transistor(), false, scale, seed ^ 0x7A7),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_lists_both_rigs() {
        let row = |ramp: bool| InjectorRow {
            discharge_ramp: ramp,
            faults: 5,
            data_loss: 10,
            interrupted_programs: 40,
            paired_corruptions: 20,
            data_loss_per_fault: 2.0,
        };
        let r = InjectorAblationReport {
            atx: row(true),
            transistor: row(false),
        };
        let text = r.to_string();
        assert!(text.contains("ATX discharge"));
        assert!(text.contains("transistor cut"));
    }
}
