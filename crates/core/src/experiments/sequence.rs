//! Fig 9 — impact of access sequences (RAR / RAW / WAR / WAW).
//!
//! Requests come in same-address pairs. Expected shape: WAW suffers by far
//! the most data failures (two writes, and the second endangers the
//! first's already-acknowledged data via paired pages and mapping churn);
//! RAW and WAR see moderate loss plus FWA; RAR loses **no** data — only
//! IO errors.

use serde::{Deserialize, Serialize};

use pfault_sim::storage::GIB;
use pfault_workload::{SequenceMode, WorkloadSpec};

use crate::experiments::{base_trial, campaign_at, ExperimentScale};
use crate::report::{fnum, Table};

/// One sequence mode's results.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SequenceRow {
    /// The access sequence.
    pub mode: SequenceMode,
    /// Faults injected.
    pub faults: u64,
    /// Data failures (excluding FWA).
    pub data_failures: u64,
    /// False write-acknowledges.
    pub fwa: u64,
    /// IO errors.
    pub io_errors: u64,
    /// Data failures per fault.
    pub data_failure_per_fault: f64,
}

/// Full Fig 9 report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SequenceReport {
    /// One row per mode, in the paper's x-axis order (RAW WAR RAR WAW).
    pub rows: Vec<SequenceRow>,
}

impl SequenceReport {
    /// Renders the paper-style table.
    pub fn table(&self) -> Table {
        let mut t = Table::new([
            "sequence",
            "faults",
            "data failures",
            "FWA",
            "IO errors",
            "data failure/fault",
        ]);
        for r in &self.rows {
            t.push_row([
                format!("{:?}", r.mode).to_uppercase(),
                r.faults.to_string(),
                r.data_failures.to_string(),
                r.fwa.to_string(),
                r.io_errors.to_string(),
                fnum(r.data_failure_per_fault, 2),
            ]);
        }
        t
    }

    /// Row for a given mode.
    pub fn at(&self, mode: SequenceMode) -> Option<&SequenceRow> {
        self.rows.iter().find(|r| r.mode == mode)
    }
}

impl SequenceReport {
    /// Renders the Fig 9-style grouped bar chart.
    pub fn chart(&self) -> crate::chart::BarChart {
        let mut c = crate::chart::BarChart::new(
            "Fig 9 — failures vs access sequence",
            ["data failures", "FWA", "IO errors"],
        );
        for r in &self.rows {
            c.push(
                format!("{:?}", r.mode).to_uppercase(),
                [r.data_failures as f64, r.fwa as f64, r.io_errors as f64],
            );
        }
        c
    }
}

impl core::fmt::Display for SequenceReport {
    /// Renders the report as its aligned table.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.table().render())
    }
}

/// Runs the Fig 9 sweep.
pub fn run(scale: ExperimentScale, seed: u64) -> SequenceReport {
    let rows = SequenceMode::all()
        .iter()
        .enumerate()
        .map(|(i, &mode)| {
            let mut trial = base_trial();
            trial.workload = WorkloadSpec::builder()
                .wss_bytes(64 * GIB)
                .sequence(mode)
                .build();
            let report =
                super::run_point(campaign_at(trial, scale), seed ^ ((i as u64 + 1) << 16), scale);
            SequenceRow {
                mode,
                faults: report.faults,
                data_failures: report.counts.data_failures,
                fwa: report.counts.fwa,
                io_errors: report.counts.io_errors,
                data_failure_per_fault: report.data_failures_per_fault(),
            }
        })
        .collect();
    SequenceReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_mode() {
        let r = SequenceReport {
            rows: vec![SequenceRow {
                mode: SequenceMode::Waw,
                faults: 5,
                data_failures: 10,
                fwa: 2,
                io_errors: 5,
                data_failure_per_fault: 2.0,
            }],
        };
        assert_eq!(r.at(SequenceMode::Waw).unwrap().data_failures, 10);
        assert!(r.at(SequenceMode::Rar).is_none());
        assert!(r.to_string().contains("WAW"));
    }
}
