//! Extension — FLUSH barrier frequency vs data loss.
//!
//! The paper's designer-facing conclusion (§V) is that power-fault loss
//! comes from volatile device state. The host-side mitigation is the
//! FLUSH barrier (fsync): data acknowledged before a completed FLUSH is
//! durable. This extension sweeps how often the workload issues a FLUSH
//! and measures the residual loss — the exposure shrinks to the writes
//! issued since the last completed barrier, at a throughput cost.

use serde::{Deserialize, Serialize};

use pfault_sim::storage::GIB;
use pfault_workload::WorkloadSpec;

use crate::experiments::{base_trial, campaign_at, ExperimentScale};
use crate::report::{fnum, Table};

/// One flush-frequency point.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FlushRow {
    /// Writes between FLUSH barriers (`None` = never flush).
    pub flush_every: Option<u64>,
    /// Faults injected.
    pub faults: u64,
    /// Total data loss (data failures + FWA).
    pub data_loss: u64,
    /// Data loss per fault.
    pub data_loss_per_fault: f64,
    /// Mean responded IOPS (the cost side of the trade-off).
    pub responded_iops: f64,
}

/// Full flush-frequency report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlushReport {
    /// One row per frequency, from never to every write.
    pub rows: Vec<FlushRow>,
}

impl FlushReport {
    /// Row for a given frequency.
    pub fn at(&self, flush_every: Option<u64>) -> Option<&FlushRow> {
        self.rows.iter().find(|r| r.flush_every == flush_every)
    }

    /// Renders the table.
    pub fn table(&self) -> Table {
        let mut t = Table::new([
            "flush every",
            "faults",
            "data loss",
            "loss/fault",
            "responded IOPS",
        ]);
        for r in &self.rows {
            t.push_row([
                r.flush_every.map_or("never".to_string(), |n| n.to_string()),
                r.faults.to_string(),
                r.data_loss.to_string(),
                fnum(r.data_loss_per_fault, 2),
                fnum(r.responded_iops, 0),
            ]);
        }
        t
    }
}

impl core::fmt::Display for FlushReport {
    /// Renders the report as its aligned table.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.table().render())
    }
}

/// Runs the flush-frequency sweep.
pub fn run(scale: ExperimentScale, seed: u64) -> FlushReport {
    let rows = [None, Some(16u64), Some(4), Some(1)]
        .iter()
        .map(|&flush_every| {
            let mut trial = base_trial();
            trial.flush_every = flush_every;
            trial.workload = WorkloadSpec::builder()
                .wss_bytes(64 * GIB)
                .write_fraction(1.0)
                .build();
            let salt = flush_every.unwrap_or(0) + 1;
            let report = super::run_point(campaign_at(trial, scale), seed ^ (salt << 9), scale);
            FlushRow {
                flush_every,
                faults: report.faults,
                data_loss: report.counts.total_data_loss(),
                data_loss_per_fault: report.data_loss_per_fault(),
                responded_iops: report.responded_iops.mean(),
            }
        })
        .collect();
    FlushReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_handles_never_and_numeric() {
        let r = FlushReport {
            rows: vec![
                FlushRow {
                    flush_every: None,
                    faults: 5,
                    data_loss: 20,
                    data_loss_per_fault: 4.0,
                    responded_iops: 800.0,
                },
                FlushRow {
                    flush_every: Some(1),
                    faults: 5,
                    data_loss: 4,
                    data_loss_per_fault: 0.8,
                    responded_iops: 300.0,
                },
            ],
        };
        assert_eq!(r.at(None).unwrap().data_loss, 20);
        assert_eq!(r.at(Some(1)).unwrap().data_loss, 4);
        assert!(r.at(Some(7)).is_none());
        assert!(r.to_string().contains("never"));
    }
}
