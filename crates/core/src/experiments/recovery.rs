//! Extension — recovery-policy ablation (journal replay vs full OOB scan).
//!
//! The drives the paper studies lose cleanly-programmed data whenever its
//! mapping had not committed. Firmware that instead scans every block's
//! OOB metadata on boot can re-adopt such pages and shrink the loss to
//! genuinely-destroyed data (cache-resident writes and interrupted
//! programs) — at the cost of a much slower power-on. This ablation
//! quantifies the difference on the same workload.

use serde::{Deserialize, Serialize};

use pfault_ftl::RecoveryPolicy;
use pfault_sim::storage::GIB;
use pfault_workload::WorkloadSpec;

use crate::experiments::{base_trial, campaign_at, ExperimentScale};
use crate::report::{fnum, Table};

/// One policy's results.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RecoveryRow {
    /// The reconstruction strategy.
    pub policy: RecoveryPolicy,
    /// Faults injected.
    pub faults: u64,
    /// Data failures (excluding FWA).
    pub data_failures: u64,
    /// False write-acknowledges.
    pub fwa: u64,
    /// Total loss per fault.
    pub data_loss_per_fault: f64,
}

/// Full recovery-policy report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Journal-replay results (the consumer-drive behaviour).
    pub journal: RecoveryRow,
    /// Full-scan results.
    pub scan: RecoveryRow,
}

impl RecoveryReport {
    /// Loss reduction of the scan policy, percent.
    pub fn scan_reduction_pct(&self) -> f64 {
        if self.journal.data_loss_per_fault <= 0.0 {
            return 0.0;
        }
        (1.0 - self.scan.data_loss_per_fault / self.journal.data_loss_per_fault) * 100.0
    }

    /// Renders the table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(["recovery", "faults", "data failures", "FWA", "loss/fault"]);
        for r in [&self.journal, &self.scan] {
            t.push_row([
                format!("{:?}", r.policy),
                r.faults.to_string(),
                r.data_failures.to_string(),
                r.fwa.to_string(),
                fnum(r.data_loss_per_fault, 2),
            ]);
        }
        t
    }
}

fn run_policy(policy: RecoveryPolicy, scale: ExperimentScale, seed: u64) -> RecoveryRow {
    let mut trial = base_trial();
    trial.ssd.ftl.recovery_policy = policy;
    trial.workload = WorkloadSpec::builder()
        .wss_bytes(64 * GIB)
        .write_fraction(1.0)
        .build();
    let report = super::run_point(campaign_at(trial, scale), seed, scale);
    RecoveryRow {
        policy,
        faults: report.faults,
        data_failures: report.counts.data_failures,
        fwa: report.counts.fwa,
        data_loss_per_fault: report.data_loss_per_fault(),
    }
}

impl core::fmt::Display for RecoveryReport {
    /// Renders the report as its aligned table.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.table().render())
    }
}

/// Runs both policies on identical campaigns.
pub fn run(scale: ExperimentScale, seed: u64) -> RecoveryReport {
    RecoveryReport {
        journal: run_policy(RecoveryPolicy::JournalReplay, scale, seed),
        scan: run_policy(RecoveryPolicy::FullScan, scale, seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_percentage() {
        let r = RecoveryReport {
            journal: RecoveryRow {
                policy: RecoveryPolicy::JournalReplay,
                faults: 10,
                data_failures: 10,
                fwa: 30,
                data_loss_per_fault: 4.0,
            },
            scan: RecoveryRow {
                policy: RecoveryPolicy::FullScan,
                faults: 10,
                data_failures: 10,
                fwa: 20,
                data_loss_per_fault: 3.0,
            },
        };
        assert!((r.scan_reduction_pct() - 25.0).abs() < 1e-9);
        assert!(r.to_string().contains("JournalReplay"));
    }
}
