//! Plain-text table rendering for experiment reports.
//!
//! Every experiment prints its results as an aligned text table (the
//! `repro` binary's output and the EXPERIMENTS.md source material).

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cells[i], width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Formats a float with `digits` decimals (report cells).
pub fn fnum(value: f64, digits: usize) -> String {
    format!("{value:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["metric", "value"]);
        t.push_row(["faults", "300"]);
        t.push_row(["data failures", "612"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("metric"));
        assert!(lines[2].ends_with("300"));
        assert!(lines[3].ends_with("612"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["only one"]);
    }

    #[test]
    fn fnum_formats() {
        assert_eq!(fnum(1.23456, 2), "1.23");
        assert_eq!(fnum(2.0, 0), "2");
    }
}
