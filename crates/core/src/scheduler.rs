//! Work-stealing trial scheduler.
//!
//! The striped scheduler ([`crate::campaign::Campaign::run_parallel`])
//! hands worker *w* trials `w, w+T, w+2T, …` up front. That is fair on
//! average but stalls on skew: one slow stripe (a retried trial, a
//! recovery storm, a watchdog-budget trial) leaves the other workers
//! idle at the tail. This module replaces static striping with classic
//! work stealing: trial indices are chunked into batches on a shared
//! injector queue, each worker drains its own deque and refills from the
//! injector, and a worker that runs dry steals half of a victim's deque.
//!
//! Results are *not* reduced here in arrival order. Workers emit
//! `(trial index, result)` pairs and the caller's accumulator absorbs
//! them in canonical index order (a small reorder buffer bridges the
//! gap), so a work-stealing run is byte-identical to a serial fold no
//! matter how the OS schedules the threads — including order-sensitive
//! aggregates like Welford mean/variance accumulators.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// Default trials per injector batch. Small enough that a 6-trial smoke
/// campaign still spreads over workers, big enough that injector-lock
/// traffic stays negligible against millisecond-scale trials.
pub const DEFAULT_CHUNK: u64 = 4;

/// What one worker did during a work-stealing run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerStats {
    /// Worker id (`0..threads`).
    pub worker: usize,
    /// Trials this worker executed.
    pub trials_run: u64,
    /// Successful steal operations (each moves ≥ 1 trial).
    pub steals: u64,
    /// Trials acquired by stealing from a victim.
    pub stolen_trials: u64,
    /// Batches this worker pulled from the shared injector.
    pub injector_batches: u64,
    /// Wall-clock time spent inside trial bodies, in microseconds.
    pub busy_us: u64,
    /// Wall-clock lifetime of the worker, in microseconds.
    pub elapsed_us: u64,
}

impl WorkerStats {
    fn new(worker: usize) -> Self {
        WorkerStats {
            worker,
            trials_run: 0,
            steals: 0,
            stolen_trials: 0,
            injector_batches: 0,
            busy_us: 0,
            elapsed_us: 0,
        }
    }

    /// Fraction of the worker's lifetime spent inside trial bodies.
    pub fn utilization(&self) -> f64 {
        if self.elapsed_us == 0 {
            return 0.0;
        }
        self.busy_us as f64 / self.elapsed_us as f64
    }
}

/// Aggregate scheduling telemetry for one work-stealing run. Lives
/// outside [`crate::campaign::CampaignReport`] on purpose: reports
/// describe *what the trials measured* and must be engine-independent;
/// this describes *how the engine ran them*.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedulerStats {
    /// Worker threads used (after clamping to the trial count).
    pub threads: usize,
    /// Trials per injector batch.
    pub chunk: u64,
    /// Total trials scheduled.
    pub trials: u64,
    /// Per-worker breakdown.
    pub workers: Vec<WorkerStats>,
}

impl SchedulerStats {
    /// Successful steals across all workers.
    pub fn total_steals(&self) -> u64 {
        self.workers.iter().map(|w| w.steals).sum()
    }

    /// Mean per-worker utilization (busy time over lifetime).
    pub fn mean_utilization(&self) -> f64 {
        if self.workers.is_empty() {
            return 0.0;
        }
        self.workers.iter().map(WorkerStats::utilization).sum::<f64>() / self.workers.len() as f64
    }
}

/// Shared scheduler state: the injector of unclaimed batches plus one
/// deque per worker.
struct Shared {
    injector: Mutex<VecDeque<(u64, u64)>>,
    deques: Vec<Mutex<VecDeque<u64>>>,
    /// Trials handed to some worker so far. When this reaches `trials`
    /// an idle worker can exit; below that, an empty-looking system may
    /// just have a batch in transit between queues.
    started: AtomicU64,
    trials: u64,
}

impl Shared {
    fn new(trials: u64, threads: usize, chunk: u64) -> Self {
        let mut injector = VecDeque::new();
        let mut lo = 0u64;
        while lo < trials {
            let hi = (lo + chunk).min(trials);
            injector.push_back((lo, hi));
            lo = hi;
        }
        Shared {
            injector: Mutex::new(injector),
            deques: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            started: AtomicU64::new(0),
            trials,
        }
    }

    /// Claims the next trial for worker `me`: own deque first, then a
    /// fresh injector batch, then half of a victim's deque (victims are
    /// scanned in a fixed ring order — determinism of the *results* never
    /// depends on who wins a steal race, only the stats do).
    fn find_work(&self, me: usize, stats: &mut WorkerStats) -> Option<u64> {
        if let Some(i) = self.deques[me].lock().expect("worker deque lock").pop_front() {
            self.started.fetch_add(1, Ordering::AcqRel);
            return Some(i);
        }
        if let Some((lo, hi)) = self
            .injector
            .lock()
            .expect("injector lock")
            .pop_front()
        {
            stats.injector_batches += 1;
            let mut own = self.deques[me].lock().expect("worker deque lock");
            own.extend(lo..hi);
            let first = own.pop_front();
            drop(own);
            if let Some(i) = first {
                self.started.fetch_add(1, Ordering::AcqRel);
                return Some(i);
            }
        }
        let n = self.deques.len();
        for offset in 1..n {
            let victim = (me + offset) % n;
            let mut vd = self.deques[victim].lock().expect("victim deque lock");
            let len = vd.len();
            if len == 0 {
                continue;
            }
            // Steal the back half: the victim keeps the front it is
            // about to work through, minimizing contention on re-steal.
            let take = len.div_ceil(2);
            let mut stolen: Vec<u64> = Vec::with_capacity(take);
            for _ in 0..take {
                if let Some(i) = vd.pop_back() {
                    stolen.push(i);
                }
            }
            drop(vd);
            stolen.reverse(); // restore ascending order
            stats.steals += 1;
            stats.stolen_trials += stolen.len() as u64;
            let mut own = self.deques[me].lock().expect("worker deque lock");
            own.extend(stolen);
            let first = own.pop_front();
            drop(own);
            if let Some(i) = first {
                self.started.fetch_add(1, Ordering::AcqRel);
                return Some(i);
            }
        }
        None
    }

    fn all_started(&self) -> bool {
        self.started.load(Ordering::Acquire) >= self.trials
    }
}

fn worker_loop<T, W>(
    shared: &Shared,
    me: usize,
    work: &W,
    tx: &mpsc::Sender<(u64, T)>,
) -> WorkerStats
where
    W: Fn(u64) -> T + Sync,
{
    let born = Instant::now();
    let mut busy = std::time::Duration::ZERO;
    let mut stats = WorkerStats::new(me);
    loop {
        match shared.find_work(me, &mut stats) {
            Some(index) => {
                let t0 = Instant::now();
                let out = work(index);
                busy += t0.elapsed();
                stats.trials_run += 1;
                if tx.send((index, out)).is_err() {
                    break; // receiver gone: the run is being torn down
                }
            }
            None if shared.all_started() => break,
            // A batch is in transit between the injector and a deque;
            // it will land in a moment.
            None => std::thread::yield_now(),
        }
    }
    stats.busy_us = busy.as_micros() as u64;
    stats.elapsed_us = born.elapsed().as_micros() as u64;
    stats
}

/// Runs `work(0..trials)` over `threads` work-stealing workers and folds
/// the results into `acc` in **canonical index order** — `absorb` sees
/// `(0, t0)`, `(1, t1)`, … exactly as a serial loop would, regardless of
/// completion order. Threads are clamped to `1..=trials`.
pub fn run_work_stealing<T, R, W, A>(
    trials: u64,
    threads: usize,
    chunk: u64,
    work: W,
    acc: R,
    mut absorb: A,
) -> (R, SchedulerStats)
where
    T: Send,
    W: Fn(u64) -> T + Sync,
    A: FnMut(&mut R, u64, T),
{
    let threads = threads.clamp(1, trials.max(1) as usize);
    let chunk = chunk.max(1);
    let shared = Shared::new(trials, threads, chunk);
    let (tx, rx) = mpsc::channel::<(u64, T)>();
    let mut acc = acc;
    let mut workers: Vec<WorkerStats> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|me| {
                let tx = tx.clone();
                let shared = &shared;
                let work = &work;
                scope.spawn(move || worker_loop(shared, me, work, &tx))
            })
            .collect();
        drop(tx);
        // Canonical-order reduction with a reorder buffer. The buffer
        // stays small: it only holds results ahead of the lowest
        // still-running trial index.
        let mut buffer: BTreeMap<u64, T> = BTreeMap::new();
        let mut next = 0u64;
        for (index, out) in rx.iter() {
            buffer.insert(index, out);
            while let Some(out) = buffer.remove(&next) {
                absorb(&mut acc, next, out);
                next += 1;
            }
        }
        for (index, out) in buffer {
            absorb(&mut acc, index, out);
        }
        for handle in handles {
            workers.push(handle.join().expect("worker thread panicked"));
        }
    });
    workers.sort_by_key(|w| w.worker);
    (
        acc,
        SchedulerStats {
            threads,
            chunk,
            trials,
            workers,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn serial_fold(trials: u64, work: impl Fn(u64) -> u64) -> Vec<(u64, u64)> {
        (0..trials).map(|i| (i, work(i))).collect()
    }

    #[test]
    fn reduction_is_in_canonical_order() {
        let work = |i: u64| {
            // Skew: early trials are much slower, so late indices finish
            // first and exercise the reorder buffer.
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            i * 3 + 1
        };
        let (seen, stats) = run_work_stealing(
            32,
            4,
            DEFAULT_CHUNK,
            work,
            Vec::new(),
            |acc: &mut Vec<(u64, u64)>, i, out| acc.push((i, out)),
        );
        assert_eq!(seen, serial_fold(32, |i| i * 3 + 1));
        assert_eq!(stats.threads, 4);
        assert_eq!(stats.workers.iter().map(|w| w.trials_run).sum::<u64>(), 32);
        assert_eq!(stats.trials, 32);
    }

    #[test]
    fn threads_clamp_to_trial_count() {
        let (seen, stats) = run_work_stealing(
            3,
            16,
            DEFAULT_CHUNK,
            |i| i,
            Vec::new(),
            |acc: &mut Vec<(u64, u64)>, i, out| acc.push((i, out)),
        );
        assert_eq!(stats.threads, 3, "16 threads over 3 trials is 3 workers");
        assert_eq!(seen, vec![(0, 0), (1, 1), (2, 2)]);
    }

    #[test]
    fn zero_trials_complete_immediately() {
        let (seen, stats) = run_work_stealing(
            0,
            4,
            DEFAULT_CHUNK,
            |i| i,
            Vec::new(),
            |acc: &mut Vec<(u64, u64)>, i, out| acc.push((i, out)),
        );
        assert!(seen.is_empty());
        assert_eq!(stats.threads, 1);
        assert_eq!(stats.total_steals(), 0);
    }

    #[test]
    fn skewed_work_triggers_steals() {
        // One giant chunk of slow trials at the front: the worker that
        // grabs it becomes a steal target for everyone else.
        let (seen, stats) = run_work_stealing(
            24,
            4,
            12,
            |i| {
                if i < 12 {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                i
            },
            0u64,
            |acc: &mut u64, _i, out| *acc += out,
        );
        assert_eq!(seen, (0..24).sum::<u64>());
        assert!(
            stats.total_steals() > 0,
            "a 12-trial slow chunk against chunk-starved peers must be stolen from: {stats:?}"
        );
    }

    #[test]
    fn utilization_is_a_fraction() {
        let (_, stats) = run_work_stealing(
            8,
            2,
            2,
            |i| {
                std::thread::sleep(std::time::Duration::from_millis(2));
                i
            },
            (),
            |_: &mut (), _, _| {},
        );
        for w in &stats.workers {
            let u = w.utilization();
            assert!((0.0..=1.0).contains(&u), "utilization {u} out of range");
        }
        assert!(stats.mean_utilization() > 0.0);
    }
}
