//! The Analyzer: post-recovery failure classification (§III-B).
//!
//! After every fault injection the platform powers the device back up and
//! verifies every tracked request by reading its target range and
//! comparing checksums, exactly as the paper's Analyzer does with the
//! `completed` / `notApplied` flags:
//!
//! | `completed` | `notApplied` | verdict |
//! |-------------|--------------|---------|
//! | 1 | 1 | **FWA** — ACKed, but the range still holds its pre-issue content |
//! | 1 | 0, checksum mismatch | **data failure** |
//! | 0 | — | **IO error** — issued while the device was unavailable |
//!
//! A sector whose post-fault content is neither the written data nor the
//! pre-issue data (garbage, uncorrectable, or a partially-applied range)
//! is a data failure; a range that *fully* reverted is an FWA.

use serde::{Deserialize, Serialize};

use pfault_sim::Lba;
use pfault_ssd::device::{Ssd, VerifiedContent};

use crate::oracle::Oracle;
use crate::record::RequestRecord;

/// Failure classification of one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailureKind {
    /// The request's data is intact (or the request was a completed read).
    None,
    /// Completed, but reads back wrong (garbage / unreadable / partially
    /// applied).
    DataFailure,
    /// Completed, but the whole range still holds pre-issue content.
    FalseWriteAck,
    /// Never completed: issued while the device was unavailable.
    IoError,
}

/// Verdict for one request, with per-sector tallies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestVerdict {
    /// Request identifier.
    pub request_id: u64,
    /// Classification.
    pub kind: FailureKind,
    /// Sectors whose expectation this request still owns (not
    /// superseded by a later write) and that were therefore checked.
    pub sectors_checked: u64,
    /// Checked sectors that read back as the written data.
    pub sectors_intact: u64,
    /// Checked sectors that reverted to pre-issue content.
    pub sectors_reverted: u64,
    /// Checked sectors that read back as garbage or unreadable.
    pub sectors_garbage: u64,
}

/// Classifies one request after recovery.
///
/// Write requests are verified sector-by-sector against the oracle;
/// sectors overwritten by a *later acknowledged* request are skipped (the
/// later writer owns their expectation). Reads cannot lose data: a
/// completed read is [`FailureKind::None`], an incomplete one an
/// [`FailureKind::IoError`].
pub fn classify_request(record: &RequestRecord, oracle: &Oracle, ssd: &mut Ssd) -> RequestVerdict {
    let id = record.packet.id;
    if !record.completed() {
        return RequestVerdict {
            request_id: id,
            kind: FailureKind::IoError,
            sectors_checked: 0,
            sectors_intact: 0,
            sectors_reverted: 0,
            sectors_garbage: 0,
        };
    }
    if !record.packet.is_write {
        return RequestVerdict {
            request_id: id,
            kind: FailureKind::None,
            sectors_checked: 0,
            sectors_intact: 0,
            sectors_reverted: 0,
            sectors_garbage: 0,
        };
    }

    let mut checked = 0;
    let mut intact = 0;
    let mut reverted = 0;
    let mut garbage = 0;
    for (i, lba) in record.packet.lbas().enumerate() {
        let owns = oracle.expected(lba).is_some_and(|v| v.writer == id);
        if !owns {
            continue; // superseded by a later acknowledged write
        }
        checked += 1;
        let expected = pfault_flash::array::PageData::from_tag(record.packet.sector_tag(i as u64));
        let prior = record.pre_issue[i];
        match ssd.verify_read(lba) {
            VerifiedContent::Written(d) if d == expected => intact += 1,
            VerifiedContent::Written(d) if Some(d) == prior => reverted += 1,
            VerifiedContent::Unwritten if prior.is_none() => reverted += 1,
            _ => garbage += 1,
        }
    }

    let kind = if garbage > 0 {
        FailureKind::DataFailure
    } else if reverted > 0 && intact == 0 {
        FailureKind::FalseWriteAck
    } else if reverted > 0 {
        // Partially applied: checksum of the range matches neither the
        // written nor the pre-issue data.
        FailureKind::DataFailure
    } else {
        FailureKind::None
    };
    RequestVerdict {
        request_id: id,
        kind,
        sectors_checked: checked,
        sectors_intact: intact,
        sectors_reverted: reverted,
        sectors_garbage: garbage,
    }
}

/// Aggregated failure counts for one trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FailureCounts {
    /// Requests classified as data failures (excluding FWA).
    pub data_failures: u64,
    /// Requests classified as FWA.
    pub fwa: u64,
    /// Requests classified as IO errors.
    pub io_errors: u64,
    /// Requests verified intact.
    pub intact: u64,
    /// Trials whose device never mounted again after the fault — the
    /// per-request verdicts above do not exist for these, so the device
    /// loss itself is tallied as a first-class failure.
    pub bricked_devices: u64,
    /// Trials whose device came back from recovery degraded to read-only
    /// mode (spare blocks exhausted or late recovery stages kept dying).
    /// The per-request verdicts exist — reads still serve — but the
    /// write path is gone, so the degradation is tallied separately.
    pub read_only_devices: u64,
    /// Fleet-layer stripes declared unrecoverable (more than k chunks
    /// down after per-device mechanistic recovery). Zero for
    /// single-device campaigns.
    pub stripes_lost: u64,
    /// Fleet-layer reads that needed erasure-coded reconstruction.
    pub degraded_reads: u64,
    /// Fleet-layer rebuild passes interrupted by an exhausted bandwidth
    /// budget (a second outage arriving before repair finished).
    pub rebuilds_interrupted: u64,
    /// Application-layer divergences the KV oracle saw *surfaced* as
    /// errors (failed reads, detectably corrupt keys, lost stores).
    /// Zero for campaigns without an application layer.
    pub app_surfaced: u64,
    /// Application-layer outages fully *masked* by WAL replay and
    /// checkpoint rollback: every acknowledged operation intact.
    pub app_masked: u64,
    /// Application-layer *silent poison*: acknowledged data served wrong
    /// after recovery with no error anywhere — the app-level analogue of
    /// the paper's false write acknowledgment.
    pub app_silent_poison: u64,
}

impl FailureCounts {
    /// Total data-loss events (data failures + FWA) — the paper treats
    /// FWA as "a type of data failure".
    pub fn total_data_loss(&self) -> u64 {
        self.data_failures + self.fwa
    }

    /// Adds one verdict to the tally.
    pub fn add(&mut self, verdict: &RequestVerdict) {
        match verdict.kind {
            FailureKind::None => self.intact += 1,
            FailureKind::DataFailure => self.data_failures += 1,
            FailureKind::FalseWriteAck => self.fwa += 1,
            FailureKind::IoError => self.io_errors += 1,
        }
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &FailureCounts) {
        self.data_failures += other.data_failures;
        self.fwa += other.fwa;
        self.io_errors += other.io_errors;
        self.intact += other.intact;
        self.bricked_devices += other.bricked_devices;
        self.read_only_devices += other.read_only_devices;
        self.stripes_lost += other.stripes_lost;
        self.degraded_reads += other.degraded_reads;
        self.rebuilds_interrupted += other.rebuilds_interrupted;
        self.app_surfaced += other.app_surfaced;
        self.app_masked += other.app_masked;
        self.app_silent_poison += other.app_silent_poison;
    }
}

/// Classifies every record and tallies the counts. Verdicts for sectors
/// whose expectation is owned elsewhere are still returned (kind `None`
/// with zero checked sectors).
pub fn classify_all(
    records: &[RequestRecord],
    oracle: &Oracle,
    ssd: &mut Ssd,
) -> (Vec<RequestVerdict>, FailureCounts) {
    let mut counts = FailureCounts::default();
    let verdicts: Vec<RequestVerdict> = records
        .iter()
        .map(|r| {
            let v = classify_request(r, oracle, ssd);
            counts.add(&v);
            v
        })
        .collect();
    (verdicts, counts)
}

/// Placeholder LBA helper used in doctests.
#[doc(hidden)]
pub fn _lba(i: u64) -> Lba {
    Lba::new(i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfault_flash::array::PageData;
    use pfault_sim::{DetRng, SectorCount, SimTime};
    use pfault_ssd::device::HostCommand;
    use pfault_ssd::vendor::VendorPreset;
    use pfault_workload::DataPacket;

    fn small_ssd() -> Ssd {
        let mut config = VendorPreset::SsdA.config();
        config.geometry = pfault_flash::FlashGeometry::new(256, 64);
        config.ftl = pfault_ftl::FtlConfig::for_geometry(config.geometry);
        Ssd::new(config, DetRng::new(3))
    }

    fn packet(id: u64, lba: u64, sectors: u64, is_write: bool) -> DataPacket {
        DataPacket {
            id,
            lba: Lba::new(lba),
            sectors: SectorCount::new(sectors),
            is_write,
            arrival: SimTime::ZERO,
            payload_tag: id.wrapping_mul(0x9E37),
        }
    }

    /// Writes a packet through the device and quiesces, returning its
    /// completed record and updating the oracle.
    fn write_durably(ssd: &mut Ssd, oracle: &mut Oracle, pkt: DataPacket) -> RequestRecord {
        let pre: Vec<Option<PageData>> = pkt
            .lbas()
            .map(|l| oracle.expected(l).map(|v| v.data))
            .collect();
        let mut rec = RequestRecord::new(pkt, pre, 1, ssd.now());
        ssd.submit(HostCommand::write(
            pkt.id,
            0,
            pkt.lba,
            pkt.sectors,
            pkt.payload_tag,
        ));
        ssd.advance_to(ssd.now() + pfault_sim::SimDuration::from_millis(50));
        let comps = ssd.drain_completions();
        assert!(comps.iter().any(|c| c.acked()));
        rec.note_sub_ack(comps[0].time);
        for (i, lba) in pkt.lbas().enumerate() {
            oracle.acknowledge_write(lba, PageData::from_tag(pkt.sector_tag(i as u64)), pkt.id);
        }
        ssd.quiesce();
        rec
    }

    #[test]
    fn intact_write_classifies_as_none() {
        let mut ssd = small_ssd();
        let mut oracle = Oracle::new();
        let rec = write_durably(&mut ssd, &mut oracle, packet(1, 0, 4, true));
        let v = classify_request(&rec, &oracle, &mut ssd);
        assert_eq!(v.kind, FailureKind::None);
        assert_eq!(v.sectors_checked, 4);
        assert_eq!(v.sectors_intact, 4);
    }

    #[test]
    fn incomplete_request_is_io_error() {
        let mut ssd = small_ssd();
        let oracle = Oracle::new();
        let pkt = packet(1, 0, 4, true);
        let rec = RequestRecord::new(pkt, vec![None; 4], 1, SimTime::ZERO);
        let v = classify_request(&rec, &oracle, &mut ssd);
        assert_eq!(v.kind, FailureKind::IoError);
    }

    #[test]
    fn completed_read_is_never_a_failure() {
        let mut ssd = small_ssd();
        let oracle = Oracle::new();
        let pkt = packet(2, 0, 4, false);
        let mut rec = RequestRecord::new(pkt, vec![None; 4], 1, SimTime::ZERO);
        rec.note_sub_ack(SimTime::from_millis(1));
        let v = classify_request(&rec, &oracle, &mut ssd);
        assert_eq!(v.kind, FailureKind::None);
    }

    #[test]
    fn acked_but_never_written_is_fwa() {
        // ACK recorded in the oracle, but the device never got the data
        // (simulate by not writing at all).
        let mut ssd = small_ssd();
        let mut oracle = Oracle::new();
        let pkt = packet(3, 8, 2, true);
        let pre = vec![None, None];
        let mut rec = RequestRecord::new(pkt, pre, 1, SimTime::ZERO);
        rec.note_sub_ack(SimTime::from_millis(1));
        for (i, lba) in pkt.lbas().enumerate() {
            oracle.acknowledge_write(lba, PageData::from_tag(pkt.sector_tag(i as u64)), pkt.id);
        }
        let v = classify_request(&rec, &oracle, &mut ssd);
        assert_eq!(v.kind, FailureKind::FalseWriteAck);
        assert_eq!(v.sectors_reverted, 2);
    }

    #[test]
    fn partial_apply_is_data_failure() {
        // First durably write sector 0 of the range via another request,
        // then claim a 2-sector request was ACKed but only sector 0 holds
        // its data.
        let mut ssd = small_ssd();
        let mut oracle = Oracle::new();
        // Durable write covering only the first sector, tagged as if it
        // came from the *verified* request.
        let pkt = packet(4, 16, 2, true);
        let first_sector_content = PageData::from_tag(pkt.sector_tag(0));
        // Write the first sector through the device with the same tag.
        ssd.submit(HostCommand {
            request_id: 99,
            sub_id: 0,
            lba: pkt.lba,
            sectors: SectorCount::new(1),
            is_write: true,
            payload_tag: pkt.payload_tag,
            payload_offset: 0,
        });
        ssd.advance_to(SimTime::from_millis(50));
        ssd.drain_completions();
        ssd.quiesce();
        // Oracle believes request 4 wrote both sectors.
        let mut rec = RequestRecord::new(pkt, vec![None, None], 1, SimTime::ZERO);
        rec.note_sub_ack(SimTime::from_millis(1));
        oracle.acknowledge_write(Lba::new(16), first_sector_content, 4);
        oracle.acknowledge_write(Lba::new(17), PageData::from_tag(pkt.sector_tag(1)), 4);
        let v = classify_request(&rec, &oracle, &mut ssd);
        assert_eq!(v.kind, FailureKind::DataFailure, "partial apply: {v:?}");
        assert_eq!(v.sectors_intact, 1);
        assert_eq!(v.sectors_reverted, 1);
    }

    #[test]
    fn superseded_sectors_are_skipped() {
        let mut ssd = small_ssd();
        let mut oracle = Oracle::new();
        let old = write_durably(&mut ssd, &mut oracle, packet(1, 0, 2, true));
        let _new = write_durably(&mut ssd, &mut oracle, packet(2, 0, 2, true));
        let v = classify_request(&old, &oracle, &mut ssd);
        assert_eq!(v.sectors_checked, 0, "new writer owns both sectors");
        assert_eq!(v.kind, FailureKind::None);
    }

    #[test]
    fn counts_tally_and_merge() {
        let mut a = FailureCounts::default();
        a.add(&RequestVerdict {
            request_id: 1,
            kind: FailureKind::DataFailure,
            sectors_checked: 1,
            sectors_intact: 0,
            sectors_reverted: 0,
            sectors_garbage: 1,
        });
        a.add(&RequestVerdict {
            request_id: 2,
            kind: FailureKind::FalseWriteAck,
            sectors_checked: 1,
            sectors_intact: 0,
            sectors_reverted: 1,
            sectors_garbage: 0,
        });
        let mut b = FailureCounts::default();
        b.add(&RequestVerdict {
            request_id: 3,
            kind: FailureKind::IoError,
            sectors_checked: 0,
            sectors_intact: 0,
            sectors_reverted: 0,
            sectors_garbage: 0,
        });
        a.merge(&b);
        assert_eq!(a.data_failures, 1);
        assert_eq!(a.fwa, 1);
        assert_eq!(a.io_errors, 1);
        assert_eq!(a.total_data_loss(), 2);
    }
}
