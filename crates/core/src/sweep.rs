//! Systematic fault-space exploration: the boundary sweeper.
//!
//! Random fault scheduling (the campaign engine) answers the paper's
//! statistical questions — *how often* does a drive lose data per fault —
//! but it cannot answer the engineering question *which instants are
//! dangerous*. The sweeper enumerates those instants deterministically:
//!
//! 1. **Census** — run the workload once, fault-free, with the device's
//!    fault-site recording enabled ([`pfault_ssd::FaultSite`]). Every
//!    durability-relevant operation leaves a [`pfault_ssd::SiteSpan`]
//!    `(site, occurrence, start, end)`.
//! 2. **Expand** — each span yields up to three cut instants, one per
//!    [`Phase`]: `Start` (the operation just began), `Mid` (halfway
//!    through its program window), `End` (the exact completion instant —
//!    the half-open boundary documented on
//!    [`pfault_power::FaultTimeline::brownout_window`] guarantees the
//!    operation *completes* there).
//! 3. **Sweep** — one trial per cut: a fresh same-seed device replays the
//!    identical workload, the rail vanishes at the planned instant
//!    ([`pfault_power::FaultTimeline::at_instant`]), the device recovers,
//!    and the recovery-invariant [oracle](#the-oracle) runs.
//! 4. **Minimize** — a ddmin-style shrinker reduces a failing workload to
//!    a minimal reproducer ([`Sweeper::minimize`]).
//!
//! # The oracle
//!
//! After `power_on_recover`, three invariants must hold:
//!
//! * **Whole-batch replay** — the recovered mapping equals an independent
//!   reference replay of the durable journal over the newest checkpoint,
//!   applying each batch *only if* its stored CRC matches its surviving
//!   entries. A torn batch must be discarded whole; a device that matches
//!   the half-applied reference instead has the classic apply-before-
//!   verify firmware bug ([`ViolationKind::TornBatchHalfApplied`]).
//! * **No phantom data** — every readable, internally-intact sector holds
//!   a content version the host actually issued for that LBA (current or
//!   stale). Intact data that was never written there means the mapping
//!   points into someone else's page.
//! * **Replay idempotence** — a second, idle power cycle immediately
//!   after recovery must rebuild the identical mapping.
//!
//! Trials that end without a verdict (bricked device, watchdog) land on
//! the same [`TrialFailures`] ledger the campaign engine uses, keyed by
//! trial index.
//!
//! Everything is deterministic: same seed + same workload ⇒ identical
//! census, identical violation list, identical minimized reproducer.

use std::collections::BTreeMap;

use pfault_flash::array::PageData;
use pfault_flash::Ppa;
use pfault_ftl::mapping::MappingTable;
use pfault_power::FaultTimeline;
use pfault_sim::{DetRng, Lba, SectorCount, SimDuration, SimTime};
use pfault_ssd::device::{HostCommand, Ssd};
use pfault_ssd::{FaultSite, SiteSpan, SsdConfig, VerifiedContent};

use crate::campaign::TrialFailures;
use crate::error::TrialError;

/// A sorted logical→physical snapshot, as the oracle compares them.
type MappedEntries = Vec<(Lba, Ppa)>;

/// One host operation of an explicit sweep workload. Unlike the campaign
/// generator's stochastic stream, sweep workloads are concrete op lists so
/// the minimizer can delete entries and re-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoOp {
    /// Write `sectors` sectors starting at `lba`, contents derived from
    /// `tag` (the device's standard tag→content scheme).
    Write {
        /// First logical sector.
        lba: u64,
        /// Number of sectors (clamped to ≥ 1).
        sectors: u64,
        /// Payload tag; each sector's content derives from it.
        tag: u64,
    },
    /// Discard the mapping of `sectors` sectors starting at `lba`.
    Trim {
        /// First logical sector.
        lba: u64,
        /// Number of sectors (clamped to ≥ 1).
        sectors: u64,
    },
    /// FLUSH barrier: blocks until everything accepted so far is durable.
    Flush,
}

/// Where inside a recorded span the cut lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// The operation just started (progress ≈ 0).
    Start,
    /// Halfway through the operation's window.
    Mid,
    /// The exact completion instant — the operation finishes (half-open
    /// boundary), so this probes "cut immediately *after*".
    End,
}

impl Phase {
    /// All phases in sweep order.
    pub const ALL: [Phase; 3] = [Phase::Start, Phase::Mid, Phase::End];

    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Start => "start",
            Phase::Mid => "mid",
            Phase::End => "end",
        }
    }
}

/// Which recovery invariant a trial violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// The recovered mapping matches a reference replay that applies torn
    /// batches *partially* — the apply-before-CRC-verify firmware bug.
    TornBatchHalfApplied,
    /// The recovered mapping matches neither the whole-batch reference nor
    /// the half-applied one.
    ReplayDiverged,
    /// A readable, internally-intact sector holds content the host never
    /// wrote to that LBA.
    PhantomData,
    /// Replaying the same durable state twice produced different mappings.
    ReplayNotIdempotent,
    /// The device did not survive an idle second power cycle right after
    /// a successful recovery.
    RecoveryFailed,
}

impl ViolationKind {
    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            ViolationKind::TornBatchHalfApplied => "torn-batch-half-applied",
            ViolationKind::ReplayDiverged => "replay-diverged",
            ViolationKind::PhantomData => "phantom-data",
            ViolationKind::ReplayNotIdempotent => "replay-not-idempotent",
            ViolationKind::RecoveryFailed => "recovery-failed",
        }
    }
}

/// One oracle violation, attributed to the cut that provoked it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The site whose span contained the cut.
    pub site: FaultSite,
    /// Which occurrence of that site (census numbering).
    pub occurrence: u64,
    /// Where inside the span the cut landed.
    pub phase: Phase,
    /// Absolute cut instant, µs of simulated time.
    pub cut_us: u64,
    /// The violated invariant.
    pub kind: ViolationKind,
    /// Human-readable specifics.
    pub detail: String,
}

/// Aggregated result of one sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepReport {
    /// Spans the census recorded.
    pub sites_censused: usize,
    /// Trials executed (≤ 3 per span; degenerate spans collapse).
    pub trials: u64,
    /// All violations, in deterministic census × phase order.
    pub violations: Vec<Violation>,
    /// Trials that ended without a verdict, on the campaign's unified
    /// failure ledger (indices are sweep trial indices).
    pub failures: TrialFailures,
}

/// A minimal failing reproducer found by [`Sweeper::minimize`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinimalRepro {
    /// The shrunk workload (a subsequence of the original ops).
    pub ops: Vec<IoOp>,
    /// The single fault placement that still violates the invariant.
    pub violation: Violation,
}

/// Sweep configuration: a device, a seed, and an explicit workload.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Device under test. The oracle's reference replay mirrors plain
    /// journal recovery, so [`SweepConfig::smoke`] pins
    /// [`pfault_ftl::RecoveryPolicy::JournalReplay`].
    pub ssd: SsdConfig,
    /// Seed for the device RNG; the census and every trial fork from it
    /// identically.
    pub seed: u64,
    /// The workload, as an explicit op list.
    pub ops: Vec<IoOp>,
}

impl SweepConfig {
    /// A small bounded configuration (tiny geometry, six ops) used by
    /// `make sweep-smoke` and the integration tests.
    pub fn smoke(seed: u64) -> SweepConfig {
        let mut ssd = pfault_ssd::VendorPreset::SsdA.config();
        ssd.geometry = pfault_flash::FlashGeometry::new(512, 64);
        ssd.ftl = pfault_ftl::FtlConfig::for_geometry(ssd.geometry);
        // The reference replay models journal recovery; FullScan's OOB
        // adoption would legitimately diverge from it.
        ssd.ftl.recovery_policy = pfault_ftl::RecoveryPolicy::JournalReplay;
        // The sweep's baseline is *correct* firmware: torn batches are
        // CRC-checked and discarded whole. (The workspace default is
        // `false` — the paper's drives half-apply, and the campaign
        // statistics model that — so the sweeper pins it explicitly;
        // flipping it back off is the seeded bug the sweeper must catch.)
        ssd.ftl.verify_batch_crc = true;
        SweepConfig {
            ssd,
            seed,
            ops: vec![
                IoOp::Write {
                    lba: 0,
                    sectors: 8,
                    tag: 0xA1,
                },
                IoOp::Write {
                    lba: 64,
                    sectors: 4,
                    tag: 0xB2,
                },
                IoOp::Flush,
                IoOp::Write {
                    lba: 0,
                    sectors: 8,
                    tag: 0xC3,
                },
                IoOp::Trim {
                    lba: 64,
                    sectors: 4,
                },
                IoOp::Write {
                    lba: 128,
                    sectors: 2,
                    tag: 0xD4,
                },
            ],
        }
    }
}

/// A planned cut: one sweep trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PlannedCut {
    site: FaultSite,
    occurrence: u64,
    phase: Phase,
    at: SimTime,
}

/// The device state a driver run leaves behind.
struct Driven {
    ssd: Ssd,
    /// Every content version the host issued, per logical sector (in
    /// submission order). Input to the no-phantom check.
    issued: BTreeMap<u64, Vec<PageData>>,
}

/// Boundary sweeper over one `(device, seed, workload)` triple.
#[derive(Debug, Clone)]
pub struct Sweeper {
    config: SweepConfig,
}

/// FLUSH barriers use ids far above any data op's index.
const FLUSH_ID_BASE: u64 = 1 << 40;

/// Event-loop budget per driver run; a wedged pipeline becomes
/// [`TrialError::WatchdogExpired`] instead of a hang.
const EVENT_BUDGET: u64 = 10_000_000;

impl Sweeper {
    /// Creates a sweeper.
    pub fn new(config: SweepConfig) -> Self {
        Sweeper { config }
    }

    /// The configuration.
    pub fn config(&self) -> &SweepConfig {
        &self.config
    }

    /// Runs the fault-free census and returns every recorded site span.
    pub fn census(&self) -> Result<Vec<SiteSpan>, TrialError> {
        let driven = self.drive(None, true)?;
        Ok(driven.ssd.site_spans().to_vec())
    }

    /// Runs the full sweep: census, expansion, one trial per cut, oracle.
    pub fn run(&self) -> Result<SweepReport, TrialError> {
        let spans = self.census()?;
        let cuts = Self::expand(&spans);
        let mut report = SweepReport {
            sites_censused: spans.len(),
            trials: 0,
            violations: Vec::new(),
            failures: TrialFailures::default(),
        };
        for (index, cut) in cuts.iter().enumerate() {
            report.trials += 1;
            match self.run_trial(cut.at) {
                Ok(found) => {
                    for (kind, detail) in found {
                        report.violations.push(Violation {
                            site: cut.site,
                            occurrence: cut.occurrence,
                            phase: cut.phase,
                            cut_us: cut.at.as_micros(),
                            kind,
                            detail,
                        });
                    }
                }
                Err(error) => report.failures.record(index as u64, &error),
            }
        }
        Ok(report)
    }

    /// Sweeps until the first violation of `kind` and returns it (trials
    /// after the hit are skipped — the minimizer's fast path).
    pub fn find_first(&self, kind: ViolationKind) -> Result<Option<Violation>, TrialError> {
        let spans = self.census()?;
        for cut in Self::expand(&spans) {
            let Ok(found) = self.run_trial(cut.at) else {
                continue; // bricked trials cannot witness this kind
            };
            if let Some((k, detail)) = found.into_iter().find(|(k, _)| *k == kind) {
                return Ok(Some(Violation {
                    site: cut.site,
                    occurrence: cut.occurrence,
                    phase: cut.phase,
                    cut_us: cut.at.as_micros(),
                    kind: k,
                    detail,
                }));
            }
        }
        Ok(None)
    }

    /// Shrinks the workload to a minimal op subsequence that still
    /// produces a violation of `kind`, ddmin-style: chunks of halving size
    /// are deleted greedily while the reproduction predicate (a fresh
    /// sub-sweep) holds. Returns `None` when the full workload does not
    /// reproduce `kind` in the first place. Deterministic: same seed ⇒
    /// byte-identical reproducer.
    pub fn minimize(&self, kind: ViolationKind) -> Result<Option<MinimalRepro>, TrialError> {
        if self.find_first(kind)?.is_none() {
            return Ok(None);
        }
        let reproduces = |ops: &[IoOp]| -> bool {
            let mut config = self.config.clone();
            config.ops = ops.to_vec();
            matches!(Sweeper::new(config).find_first(kind), Ok(Some(_)))
        };
        let mut ops = self.config.ops.clone();
        let mut chunk = (ops.len() / 2).max(1);
        loop {
            let mut shrunk = false;
            let mut start = 0;
            while start < ops.len() && ops.len() > 1 {
                let mut candidate = ops.clone();
                candidate.drain(start..(start + chunk).min(candidate.len()));
                if !candidate.is_empty() && reproduces(&candidate) {
                    ops = candidate;
                    shrunk = true;
                    // keep `start`: the next chunk shifted into place
                } else {
                    start += chunk;
                }
            }
            if !shrunk {
                if chunk == 1 {
                    break;
                }
                chunk = (chunk / 2).max(1);
            }
        }
        let mut config = self.config.clone();
        config.ops = ops.clone();
        let violation = Sweeper::new(config).find_first(kind)?;
        Ok(violation.map(|violation| MinimalRepro { ops, violation }))
    }

    /// Expands census spans into planned cuts, collapsing degenerate
    /// phases (zero-width spans yield a single `Start` cut).
    fn expand(spans: &[SiteSpan]) -> Vec<PlannedCut> {
        let mut cuts = Vec::new();
        for span in spans {
            for phase in Phase::ALL {
                let at = match phase {
                    Phase::Start => span.start,
                    Phase::Mid => {
                        span.start
                            + SimDuration::from_micros((span.end - span.start).as_micros() / 2)
                    }
                    Phase::End => span.end,
                };
                if phase != Phase::Start && at == span.start {
                    continue;
                }
                if phase == Phase::Mid && at == span.end {
                    continue;
                }
                cuts.push(PlannedCut {
                    site: span.site,
                    occurrence: span.index,
                    phase,
                    at,
                });
            }
        }
        cuts
    }

    /// One sweep trial: replay to `cut`, drop the rail, recover, run the
    /// oracle. Returns the violated invariants (empty = clean).
    fn run_trial(&self, cut: SimTime) -> Result<Vec<(ViolationKind, String)>, TrialError> {
        let mut driven = self.drive(Some(cut), false)?;
        let ssd = &mut driven.ssd;
        let mut at = ssd.now().max(cut) + SimDuration::from_secs(1);
        let mut attempts = 0u32;
        loop {
            match ssd.power_on_recover(at) {
                Ok(_) => break,
                Err(pfault_ssd::DeviceError::Bricked { attempts }) => {
                    return Err(TrialError::DeviceBricked {
                        seed: self.config.seed,
                        attempts,
                    });
                }
                Err(pfault_ssd::DeviceError::RecoveryFailed { .. }) => {
                    return Err(TrialError::DeviceBricked {
                        seed: self.config.seed,
                        attempts: 1,
                    });
                }
                Err(pfault_ssd::DeviceError::MountFailed { .. }) => {
                    attempts += 1;
                    if attempts > 8 {
                        return Err(TrialError::DeviceBricked {
                            seed: self.config.seed,
                            attempts,
                        });
                    }
                    at += SimDuration::from_secs(1);
                }
                Err(
                    e @ (pfault_ssd::DeviceError::RecoveryInterrupted { .. }
                    | pfault_ssd::DeviceError::NotMounted
                    | pfault_ssd::DeviceError::ReadOnly),
                ) => {
                    // Sweep mounts are never interrupted (no storm) and
                    // never degrade (verify/retirement stay off under the
                    // strict replay oracle).
                    unreachable!("sweep recovery cannot return {e}")
                }
            }
        }
        Ok(self.oracle(ssd, &driven.issued))
    }

    /// The recovery-invariant oracle. See the module docs.
    fn oracle(
        &self,
        ssd: &mut Ssd,
        issued: &BTreeMap<u64, Vec<PageData>>,
    ) -> Vec<(ViolationKind, String)> {
        let mut violations = Vec::new();

        // Whole-batch replay: compare against the two references.
        let device_map = ssd.mapped();
        let (strict, half_applied) = Self::reference_maps(ssd);
        if device_map != strict {
            if device_map == half_applied {
                violations.push((
                    ViolationKind::TornBatchHalfApplied,
                    format!(
                        "recovered map ({} entries) matches the half-applied reference, \
                         not the whole-batch replay ({} entries)",
                        device_map.len(),
                        strict.len()
                    ),
                ));
            } else {
                violations.push((
                    ViolationKind::ReplayDiverged,
                    format!(
                        "recovered map ({} entries) matches neither reference \
                         (whole-batch {}, half-applied {})",
                        device_map.len(),
                        strict.len(),
                        half_applied.len()
                    ),
                ));
            }
        }

        // No phantom data: every intact readable sector must hold a
        // version the host issued for that LBA (stale is fine; torn or
        // paired-corrupted pages fail is_intact and are data loss, not a
        // protocol violation).
        for (&lba, versions) in issued {
            if let VerifiedContent::Written(data) = ssd.verify_read(Lba::new(lba)) {
                if data.is_intact() && !versions.contains(&data) {
                    violations.push((
                        ViolationKind::PhantomData,
                        format!("lba {lba} reads back intact content the host never wrote there"),
                    ));
                }
            }
        }

        // Replay idempotence: an idle second outage must rebuild the same
        // map from the same durable state.
        let again = ssd.now();
        ssd.power_fail(&FaultTimeline::at_instant(again));
        let mut at = again + SimDuration::from_secs(1);
        let mut attempts = 0u64;
        let remounted = loop {
            match ssd.power_on_recover(at) {
                Ok(_) => break true,
                Err(pfault_ssd::DeviceError::MountFailed { .. }) if attempts < 8 => {
                    attempts += 1;
                    at += SimDuration::from_secs(1);
                }
                Err(_) => break false,
            }
        };
        if !remounted {
            violations.push((
                ViolationKind::RecoveryFailed,
                "device did not survive an idle second power cycle".to_string(),
            ));
        } else if ssd.mapped() != device_map {
            violations.push((
                ViolationKind::ReplayNotIdempotent,
                "replaying the same durable log twice produced a different map".to_string(),
            ));
        }
        violations
    }

    /// Builds the two reference mappings: `strict` applies durable batches
    /// whole, discarding everything from the first CRC mismatch on
    /// (exactly what correct recovery does); `half_applied` applies every
    /// surviving entry including torn prefixes (what the apply-before-
    /// verify bug does). Journal and checkpoint pages are programmed
    /// through the control path and are intact in this model, so
    /// readability is not re-checked here; a destroyed control page
    /// surfaces as [`ViolationKind::ReplayDiverged`].
    fn reference_maps(ssd: &Ssd) -> (MappedEntries, MappedEntries) {
        let ppb = ssd.config().ftl.geometry.pages_per_block();
        let build = |verify: bool| -> MappedEntries {
            let (mut map, replay_after) = match ssd.checkpoint_store().latest() {
                Some((_, checkpoint)) => (checkpoint.restore(), checkpoint.last_batch),
                None => (MappingTable::new(), None),
            };
            for record in ssd.durable_log().iter_records() {
                if replay_after.is_some_and(|last| record.batch.id <= last) {
                    continue;
                }
                if verify && !record.crc_ok() {
                    break;
                }
                record.batch.apply_to(&mut map, ppb);
            }
            let mut entries: Vec<(Lba, Ppa)> = map.iter().collect();
            entries.sort_by_key(|(l, _)| *l);
            entries
        };
        (build(true), build(false))
    }

    /// Drives the workload on a fresh same-seed device. With `cut: None`
    /// the run continues until the device goes idle (the census); with a
    /// cut, submission and event processing stop at the instant, the rail
    /// vanishes ([`FaultTimeline::at_instant`]), and the dead device is
    /// returned for recovery. Pre-cut event timing is identical between
    /// the two modes, which is what makes recorded spans replayable.
    fn drive(&self, cut: Option<SimTime>, record: bool) -> Result<Driven, TrialError> {
        let root = DetRng::new(self.config.seed);
        let mut ssd = Ssd::new(self.config.ssd, root.fork("ssd"));
        if record {
            ssd.enable_site_recording();
        }
        let mut issued: BTreeMap<u64, Vec<PageData>> = BTreeMap::new();
        let mut events = 0u64;
        let mut next_id = 0u64;
        let mut flush_id = FLUSH_ID_BASE;

        'ops: for op in &self.config.ops {
            if Self::cut_reached(&ssd, cut) {
                break 'ops;
            }
            match *op {
                IoOp::Write { lba, sectors, tag } => {
                    let sectors = sectors.max(1);
                    let cmd = HostCommand::write(
                        next_id,
                        0,
                        Lba::new(lba),
                        SectorCount::new(sectors),
                        tag,
                    );
                    for i in 0..sectors {
                        issued
                            .entry(lba + i)
                            .or_default()
                            .push(cmd.sector_content(i));
                    }
                    ssd.submit(cmd);
                    let id = next_id;
                    next_id += 1;
                    if !self.wait_for(&mut ssd, cut, id, &mut events)? {
                        break 'ops;
                    }
                }
                IoOp::Trim { lba, sectors } => {
                    ssd.trim(Lba::new(lba), SectorCount::new(sectors.max(1)));
                }
                IoOp::Flush => {
                    flush_id += 1;
                    ssd.submit_flush(flush_id, 0);
                    if !self.wait_for(&mut ssd, cut, flush_id, &mut events)? {
                        break 'ops;
                    }
                }
            }
        }

        // Tail: background work (flushes, commits, checkpoints, GC) until
        // the device goes idle or the cut arrives.
        loop {
            if Self::cut_reached(&ssd, cut) {
                break;
            }
            self.check_budget(&ssd, &mut events)?;
            match ssd.next_event() {
                None => break,
                Some(e) => {
                    let target = e.max(ssd.now() + SimDuration::from_micros(1));
                    let target = cut.map_or(target, |c| target.min(c));
                    ssd.advance_to(target);
                }
            }
        }

        if let Some(t) = cut {
            if ssd.now() < t {
                // The cut falls in an idle gap: advance straight to it.
                ssd.advance_to(t);
            }
            ssd.power_fail(&FaultTimeline::at_instant(t));
        }
        ssd.drain_completions();
        Ok(Driven { ssd, issued })
    }

    /// Advances until the completion for `id` arrives. Returns `false`
    /// when the cut arrived first.
    fn wait_for(
        &self,
        ssd: &mut Ssd,
        cut: Option<SimTime>,
        id: u64,
        events: &mut u64,
    ) -> Result<bool, TrialError> {
        loop {
            self.check_budget(ssd, events)?;
            if ssd.drain_completions().iter().any(|c| c.request_id == id) {
                return Ok(true);
            }
            if Self::cut_reached(ssd, cut) {
                return Ok(false);
            }
            let target = match ssd.next_event() {
                Some(e) => e.max(ssd.now() + SimDuration::from_micros(1)),
                None => ssd.now() + SimDuration::from_millis(1),
            };
            let target = cut.map_or(target, |c| target.min(c));
            ssd.advance_to(target);
        }
    }

    fn cut_reached(ssd: &Ssd, cut: Option<SimTime>) -> bool {
        cut.is_some_and(|c| ssd.now() >= c)
    }

    fn check_budget(&self, ssd: &Ssd, events: &mut u64) -> Result<(), TrialError> {
        *events += 1;
        if *events > EVENT_BUDGET {
            return Err(TrialError::WatchdogExpired {
                seed: self.config.seed,
                sim_time_us: ssd.now().as_micros(),
                events: *events,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_finds_commit_and_flush_sites() {
        let sweeper = Sweeper::new(SweepConfig::smoke(3));
        let spans = sweeper.census().unwrap();
        assert!(spans.iter().any(|s| s.site == FaultSite::CacheFlushProgram));
        assert!(spans
            .iter()
            .any(|s| s.site == FaultSite::JournalCommitProgram));
    }

    #[test]
    fn expansion_collapses_degenerate_spans() {
        let spans = [SiteSpan {
            site: FaultSite::MappingReplay,
            index: 0,
            start: SimTime::from_micros(5),
            end: SimTime::from_micros(5),
            ppa: None,
        }];
        let cuts = Sweeper::expand(&spans);
        assert_eq!(cuts.len(), 1);
        assert_eq!(cuts[0].phase, Phase::Start);
    }

    #[test]
    fn correct_firmware_sweeps_clean() {
        let sweeper = Sweeper::new(SweepConfig::smoke(11));
        let report = sweeper.run().unwrap();
        assert!(report.trials > 0);
        assert_eq!(report.failures.total_failed(), 0, "{:?}", report.failures);
        assert!(
            report.violations.is_empty(),
            "CRC-verified replay must satisfy every invariant: {:?}",
            report.violations
        );
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = Sweeper::new(SweepConfig::smoke(19)).run().unwrap();
        let b = Sweeper::new(SweepConfig::smoke(19)).run().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn seeded_crc_bug_is_found_and_shrunk() {
        let mut config = SweepConfig::smoke(7);
        config.ssd.ftl.verify_batch_crc = false;
        let sweeper = Sweeper::new(config);
        let hit = sweeper
            .find_first(ViolationKind::TornBatchHalfApplied)
            .unwrap()
            .expect("apply-before-verify bug must be caught");
        assert_eq!(hit.site, FaultSite::JournalCommitProgram);
        let repro = sweeper
            .minimize(ViolationKind::TornBatchHalfApplied)
            .unwrap()
            .expect("minimizer must keep the repro");
        assert!(
            repro.ops.len() <= 3,
            "repro should shrink to <= 3 IOs, got {:?}",
            repro.ops
        );
        assert_eq!(repro.violation.kind, ViolationKind::TornBatchHalfApplied);
    }

    #[test]
    fn minimize_returns_none_when_nothing_fails() {
        let sweeper = Sweeper::new(SweepConfig::smoke(23));
        assert!(sweeper
            .minimize(ViolationKind::TornBatchHalfApplied)
            .unwrap()
            .is_none());
    }
}
