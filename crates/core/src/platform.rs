//! The test platform: one fault-injection trial end to end.
//!
//! A trial mirrors the paper's methodology (§III): the IO Generator
//! submits data packets to the device while the Scheduler picks a random
//! instant and commands the fault injector; the supply discharges; the
//! device dies mid-work; power returns; the Analyzer classifies every
//! tracked request.

use serde::{Deserialize, Serialize};

use pfault_flash::array::PageData;
use pfault_obs::{Metrics, ProbeRecord};
use pfault_power::{FaultInjector, FaultTimeline};
use pfault_sim::checksum::fnv64;
use pfault_sim::{DetRng, Lba, SectorCount, SimDuration, SimTime};
use pfault_ssd::device::{HostCommand, Ssd};
use pfault_ssd::{Completion, RecoveryReport, SsdConfig, VendorPreset};
use pfault_trace::{analyze, BlockTracer};
use pfault_workload::{ArrivalModel, WorkloadGenerator, WorkloadSpec};

use crate::analyzer::{classify_all, FailureCounts, RequestVerdict};
use crate::error::TrialError;
use crate::oracle::Oracle;
use crate::record::RequestRecord;

/// Per-trial runaway protection: bounds on simulated time and event-loop
/// iterations. A trial that exceeds either bound ends with
/// [`TrialError::WatchdogExpired`] instead of hanging the campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Watchdog {
    /// Ceiling on simulated time, in microseconds. `None` = unbounded.
    pub max_sim_time_us: Option<u64>,
    /// Ceiling on event-loop iterations. `None` = unbounded.
    pub max_events: Option<u64>,
}

impl Watchdog {
    /// Generous defaults that no healthy trial approaches: one hour of
    /// simulated time, fifty million loop iterations.
    pub fn generous() -> Self {
        Watchdog {
            max_sim_time_us: Some(3_600_000_000),
            max_events: Some(50_000_000),
        }
    }

    /// No protection at all (pre-watchdog behaviour).
    pub fn unlimited() -> Self {
        Watchdog {
            max_sim_time_us: None,
            max_events: None,
        }
    }

    /// Whether a trial at simulated time `now` after `events` iterations
    /// has exceeded either budget.
    pub fn expired(&self, now: SimTime, events: u64) -> bool {
        self.max_sim_time_us
            .is_some_and(|cap| now.as_micros() > cap)
            || self.max_events.is_some_and(|cap| events > cap)
    }
}

/// Configuration of a single trial.
#[derive(Debug, Clone, Copy)]
pub struct TrialConfig {
    /// Device under test.
    pub ssd: SsdConfig,
    /// Workload to run.
    pub workload: WorkloadSpec,
    /// Fault-injection rig.
    pub injector: FaultInjector,
    /// Nominal requests per fault: the Scheduler triggers the fault after
    /// a random fraction of this many requests has completed (the
    /// generator itself flows continuously until the device vanishes).
    pub requests: usize,
    /// The Scheduler arms the fault once this fraction of requests has
    /// completed (a uniform draw between the two bounds).
    pub fault_after_fraction: (f64, f64),
    /// Additional random delay (µs, uniform) between arming and the Off
    /// command — so faults land at arbitrary phases of the IO pipeline.
    pub fault_jitter_us: u64,
    /// Issue a FLUSH barrier after every N write requests (fsync-style),
    /// blocking the closed loop until it completes. `None` = never.
    pub flush_every: Option<u64>,
    /// Runaway-trial protection.
    pub watchdog: Watchdog,
    /// Enable the cross-layer probe bus: the trial outcome then carries
    /// the full probe stream plus derived counters/histograms. Off by
    /// default — a disabled bus costs one branch per would-be event.
    pub obs: bool,
    /// Recovery-storm knob: probability that another power cut strikes
    /// while a recovery mount is still running (drawn per mount
    /// attempt). `0.0` — the default — never cuts during recovery.
    pub recovery_cut_rate: f64,
    /// Recovery-storm knob: at most this many extra cuts land during the
    /// recovery phase of one trial (bounds the storm so a trial always
    /// terminates in Operational, ReadOnly, or Bricked).
    pub max_recovery_cuts: u32,
    /// Deterministic warm-up: run this many requests of the workload
    /// against the device *before* the trial proper starts. The warm-up
    /// stream is derived from the configuration (not the trial seed), so
    /// every trial under one configuration shares the same warm state —
    /// which is what lets the campaign engine run it once, snapshot the
    /// device, and clone the snapshot per trial. `0` (the default) keeps
    /// the historical cold-start behaviour.
    pub warmup_requests: usize,
}

impl TrialConfig {
    /// The paper's §IV defaults on the SSD A preset: random 4 KiB–1 MiB
    /// writes, ATX discharge rig, 80 requests per fault.
    pub fn paper_default() -> Self {
        TrialConfig {
            ssd: VendorPreset::SsdA.config(),
            workload: WorkloadSpec::builder().build(),
            injector: FaultInjector::arduino_atx_loaded(),
            requests: 80,
            fault_after_fraction: (0.3, 0.9),
            fault_jitter_us: 20_000,
            flush_every: None,
            watchdog: Watchdog::generous(),
            obs: false,
            recovery_cut_rate: 0.0,
            max_recovery_cuts: 0,
            warmup_requests: 0,
        }
    }

    /// Replaces the device under test (chainable builder).
    #[must_use]
    pub fn with_ssd(mut self, ssd: SsdConfig) -> Self {
        self.ssd = ssd;
        self
    }

    /// Swaps in one of the paper's Table I drives (chainable builder):
    /// `TrialConfig::paper_default().with_vendor(VendorPreset::SsdB)`.
    #[must_use]
    pub fn with_vendor(mut self, vendor: VendorPreset) -> Self {
        self.ssd = vendor.config();
        self
    }

    /// Replaces the workload (chainable builder).
    #[must_use]
    pub fn with_workload(mut self, workload: WorkloadSpec) -> Self {
        self.workload = workload;
        self
    }

    /// Replaces the fault-injection rig (chainable builder).
    #[must_use]
    pub fn with_injector(mut self, injector: FaultInjector) -> Self {
        self.injector = injector;
        self
    }

    /// Sets the nominal requests-per-fault count (chainable builder).
    #[must_use]
    pub fn with_requests(mut self, requests: usize) -> Self {
        self.requests = requests;
        self
    }

    /// Sets the FLUSH-barrier cadence (chainable builder).
    #[must_use]
    pub fn with_flush_every(mut self, every: Option<u64>) -> Self {
        self.flush_every = every;
        self
    }

    /// Replaces the runaway-trial watchdog (chainable builder).
    #[must_use]
    pub fn with_watchdog(mut self, watchdog: Watchdog) -> Self {
        self.watchdog = watchdog;
        self
    }

    /// Turns the probe bus on or off (chainable builder).
    #[must_use]
    pub fn with_obs(mut self, obs: bool) -> Self {
        self.obs = obs;
        self
    }

    /// Arms the recovery storm: each mount attempt is hit by another
    /// power cut with probability `rate`, up to `max_cuts` cuts per
    /// trial (chainable builder).
    #[must_use]
    pub fn with_recovery_storm(mut self, rate: f64, max_cuts: u32) -> Self {
        self.recovery_cut_rate = rate;
        self.max_recovery_cuts = max_cuts;
        self
    }

    /// Sets the deterministic warm-up length (chainable builder). See
    /// [`TrialConfig::warmup_requests`].
    #[must_use]
    pub fn with_warmup_requests(mut self, warmup_requests: usize) -> Self {
        self.warmup_requests = warmup_requests;
        self
    }
}

/// Everything measured in one trial.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrialOutcome {
    /// Failure tallies.
    pub counts: FailureCounts,
    /// Per-request verdicts.
    pub verdicts: Vec<RequestVerdict>,
    /// Requests issued before the device vanished.
    pub requests_issued: u64,
    /// Requests the host saw complete.
    pub requests_completed: u64,
    /// Completed requests per second up to the fault command.
    pub responded_iops: f64,
    /// When the Off command was issued.
    pub fault_commanded_ms: f64,
    /// For every failed-but-ACKed request: the interval between its ACK
    /// and the fault command, in milliseconds (§IV-A's quantity).
    pub failed_ack_intervals_ms: Vec<f64>,
    /// Flash-level damage counters for the trial.
    pub interrupted_programs: u64,
    /// Paired-page collateral corruptions.
    pub paired_corruptions: u64,
    /// Dirty cache sectors lost at the fault.
    pub dirty_sectors_lost: u64,
    /// Volatile mapping sectors lost at the fault.
    pub map_sectors_lost: u64,
    /// Scheduler-loop events consumed (the quantity the watchdog's
    /// event budget meters).
    pub events: u64,
    /// What firmware recovery did after the outage (mount attempts,
    /// journal batches replayed/discarded, map rebuild size). `None` for
    /// fault-free trials.
    pub recovery: Option<RecoveryReport>,
    /// Counters and log2 latency histograms derived from the probe
    /// stream. `None` unless [`TrialConfig::obs`] was set.
    pub telemetry: Option<Metrics>,
    /// The raw probe stream (empty unless [`TrialConfig::obs`] was set).
    pub probe_records: Vec<ProbeRecord>,
}

/// Runs fault-injection trials. See the crate docs for the architecture.
#[derive(Debug)]
pub struct TestPlatform {
    config: TrialConfig,
}

impl TestPlatform {
    /// Creates a platform for the given trial configuration.
    pub fn new(config: TrialConfig) -> Self {
        TestPlatform { config }
    }

    /// The trial configuration.
    pub fn config(&self) -> &TrialConfig {
        &self.config
    }

    /// A stable digest of the trial configuration (FNV-1a over its debug
    /// rendering). Two platforms with equal digests produce identical
    /// warm snapshots, so the campaign engine keys its snapshot cache on
    /// this value.
    pub fn config_digest(&self) -> u64 {
        fnv64(format!("{:?}", self.config).as_bytes())
    }

    /// Runs one complete trial with the given seed, reporting watchdog
    /// expiry and unrecoverable (bricked) devices as errors instead of
    /// hanging or panicking.
    ///
    /// With [`TrialConfig::warmup_requests`] > 0 the trial starts from
    /// the configuration-derived warm state (built inline here; see
    /// [`TestPlatform::warm_image`] for the memoizable variant). The
    /// two paths are byte-identical by construction: both end with the
    /// same warm device and the same
    /// [`reseed_for_trial`](Ssd::reseed_for_trial) fork.
    pub fn run_trial(&self, seed: u64) -> Result<TrialOutcome, TrialError> {
        let ssd = if self.config.warmup_requests == 0 {
            Ssd::new(self.config.ssd, DetRng::new(seed).fork("ssd"))
        } else {
            let mut ssd = self.warm_ssd();
            ssd.reseed_for_trial(seed);
            ssd
        };
        self.run_trial_on(ssd, seed)
    }

    /// Runs one complete trial starting from a previously captured warm
    /// device image instead of replaying the warm-up: the trial device
    /// is a copy-on-write clone of the image
    /// ([`pfault_ssd::DeviceImage::clone_cow`]), so per-trial setup
    /// costs the trial's working set, not the whole device. The image
    /// must come from a platform with the same
    /// [`TestPlatform::config_digest`]; handing over a mismatched image
    /// is a logic error (debug builds assert, release builds run the
    /// trial on the foreign state).
    pub fn run_trial_from_image(
        &self,
        image: &pfault_ssd::DeviceImage,
        seed: u64,
    ) -> Result<TrialOutcome, TrialError> {
        debug_assert_eq!(
            image.config_digest(),
            self.config_digest(),
            "image captured under a different trial configuration"
        );
        let mut ssd = image.clone_cow();
        ssd.reseed_for_trial(seed);
        self.run_trial_on(ssd, seed)
    }

    /// Builds the configuration-derived warm device: the same
    /// [`TrialConfig::warmup_requests`]-long workload prefix for every
    /// call, independent of any trial seed. Quiesces before returning so
    /// the warm state is an idle device (empty pipeline, clean cache).
    fn warm_ssd(&self) -> Ssd {
        let root = DetRng::new(self.config_digest()).fork("warmup");
        let mut ssd = Ssd::new(self.config.ssd, root.fork("ssd"));
        let mut generator = WorkloadGenerator::new(self.config.workload, root.fork("workload"));
        let mut tracer = BlockTracer::new(SectorCount::new(self.config.ssd.max_segment_sectors));
        let oracle = Oracle::new();
        let mut records: Vec<RequestRecord> = Vec::new();
        let queue_depth = match self.config.workload.arrival {
            ArrivalModel::ClosedLoop { queue_depth } => queue_depth as usize,
            ArrivalModel::OpenLoop { .. } | ArrivalModel::OpenLoopPoisson { .. } => 64,
        };
        let total = self.config.warmup_requests;
        let mut issued = 0usize;
        let mut outstanding = 0usize;
        while issued < total || outstanding > 0 {
            while outstanding < queue_depth && issued < total {
                let packet = generator.next_packet();
                let subs =
                    Self::submit_packet(&mut ssd, &mut tracer, &oracle, &mut records, packet);
                issued += 1;
                outstanding += subs;
            }
            for _c in ssd.drain_completions() {
                outstanding = outstanding.saturating_sub(1);
            }
            if let Some(t) = ssd.next_event() {
                ssd.advance_to(t.max(ssd.now() + SimDuration::from_micros(1)));
            } else if outstanding > 0 {
                ssd.advance_to(ssd.now() + SimDuration::from_millis(1));
            }
        }
        ssd.quiesce();
        ssd.drain_completions();
        ssd
    }

    /// Runs the warm-up once and captures the result as a frozen
    /// [`pfault_ssd::DeviceImage`] that
    /// [`TestPlatform::run_trial_from_image`] can clone per trial.
    /// Meaningful only with [`TrialConfig::warmup_requests`] > 0 (a
    /// zero-warm-up image is just a cold device).
    pub fn warm_image(&self) -> pfault_ssd::DeviceImage {
        self.warm_ssd().capture(self.config_digest())
    }

    /// The trial main loop, starting from a pre-built device (cold,
    /// warmed inline, or cloned from a warm image).
    fn run_trial_on(&self, mut ssd: Ssd, seed: u64) -> Result<TrialOutcome, TrialError> {
        let root = DetRng::new(seed);
        let mut sched_rng = root.fork("scheduler");
        if self.config.obs {
            ssd.enable_probes();
        }
        let mut generator = WorkloadGenerator::new(self.config.workload, root.fork("workload"));
        let mut tracer = BlockTracer::new(SectorCount::new(self.config.ssd.max_segment_sectors));
        let mut oracle = Oracle::new();
        let mut records: Vec<RequestRecord> = Vec::with_capacity(self.config.requests);

        let total = self.config.requests;
        let (lo, hi) = self.config.fault_after_fraction;
        let trigger_at = ((total as f64) * (lo + (hi - lo) * sched_rng.unit_f64())) as u64;
        let jitter = SimDuration::from_micros(sched_rng.below(self.config.fault_jitter_us.max(1)));

        let queue_depth = match self.config.workload.arrival {
            ArrivalModel::ClosedLoop { queue_depth } => queue_depth as usize,
            ArrivalModel::OpenLoop { .. } | ArrivalModel::OpenLoopPoisson { .. } => usize::MAX,
        };

        let mut issued = 0usize;
        let mut outstanding = 0usize;
        let mut completed = 0u64;
        let mut fault: Option<FaultTimeline> = None;
        let mut next_arrival: Option<SimTime> = None;

        // Pre-generate nothing: packets are drawn lazily so sequence modes
        // stay aligned with submission order.
        let mut pending_packet: Option<pfault_workload::DataPacket> = None;

        // FLUSH barriers use ids far above any data request and are not
        // entered into the records (the paper tracks data packets only).
        const FLUSH_ID_BASE: u64 = 1 << 40;
        let mut writes_since_flush = 0u64;
        let mut flush_counter = 0u64;
        let mut events = 0u64;

        loop {
            // Watchdog: a wedged pipeline or a degenerate configuration
            // must end the trial, not the campaign.
            events += 1;
            if self.config.watchdog.expired(ssd.now(), events) {
                return Err(TrialError::WatchdogExpired {
                    seed,
                    sim_time_us: ssd.now().as_micros(),
                    events,
                });
            }

            // Drain completions into records/oracle/tracer first, so the
            // closed loop can refill before the idle check below.
            for c in ssd.drain_completions() {
                outstanding = outstanding.saturating_sub(1);
                if c.request_id >= FLUSH_ID_BASE {
                    continue; // FLUSH barrier: nothing to verify
                }
                Self::apply_completion(&mut tracer, &mut records, &mut oracle, &c);
                if records[c.request_id as usize].completed()
                    && records[c.request_id as usize].acked_at == Some(c.time)
                {
                    completed += 1;
                }
            }

            // Arm the fault once enough requests completed.
            if fault.is_none() && completed >= trigger_at {
                let commanded = ssd.now() + jitter;
                fault = Some(self.config.injector.timeline(commanded));
            }
            // The host is oblivious to the armed fault: it keeps
            // submitting until the device actually vanishes at host_lost.
            let device_reachable = fault.is_none_or(|f| ssd.now() < f.host_lost);

            // Submit work. The generator flows continuously until the
            // device vanishes — `requests` only positions the fault
            // trigger (the paper's "N requests per fault" is an average).
            if device_reachable {
                match self.config.workload.arrival {
                    ArrivalModel::ClosedLoop { .. } => {
                        while outstanding < queue_depth {
                            let packet = generator.next_packet();
                            let subs = Self::submit_packet(
                                &mut ssd,
                                &mut tracer,
                                &oracle,
                                &mut records,
                                packet,
                            );
                            issued += 1;
                            outstanding += subs;
                            if packet.is_write {
                                writes_since_flush += 1;
                                if self
                                    .config
                                    .flush_every
                                    .is_some_and(|n| writes_since_flush >= n)
                                {
                                    writes_since_flush = 0;
                                    flush_counter += 1;
                                    ssd.submit_flush(FLUSH_ID_BASE + flush_counter, 0);
                                    outstanding += 1;
                                }
                            }
                        }
                    }
                    ArrivalModel::OpenLoop { .. } | ArrivalModel::OpenLoopPoisson { .. } => loop {
                        let packet = *pending_packet.get_or_insert_with(|| generator.next_packet());
                        if packet.arrival > ssd.now() {
                            next_arrival = Some(packet.arrival);
                            break;
                        }
                        pending_packet = None;
                        let subs = Self::submit_packet(
                            &mut ssd,
                            &mut tracer,
                            &oracle,
                            &mut records,
                            packet,
                        );
                        issued += 1;
                        outstanding += subs;
                    },
                }
            }

            // The loop ends when the device vanishes from the host.
            if let Some(timeline) = fault {
                if ssd.now() >= timeline.host_lost {
                    break;
                }
            }

            // Advance to the next interesting instant.
            let mut target: Option<SimTime> = ssd.next_event();
            if let Some(t) = next_arrival {
                target = Some(target.map_or(t, |x| x.min(t)));
            }
            if let Some(timeline) = fault {
                target = Some(target.map_or(timeline.host_lost, |x| x.min(timeline.host_lost)));
            }
            match target {
                Some(t) => {
                    let t = t.max(ssd.now() + SimDuration::from_micros(1));
                    ssd.advance_to(t);
                }
                None => {
                    // Nothing left to do. If all requests are done and no
                    // fault was armed yet (tiny trials), arm it now.
                    if let Some(timeline) = fault {
                        ssd.advance_to(timeline.host_lost);
                    } else {
                        let commanded = ssd.now() + jitter;
                        fault = Some(self.config.injector.timeline(commanded));
                    }
                }
            }
        }

        let timeline = fault.expect("loop exits only with an armed fault");
        let fault_commanded = timeline.commanded;

        // The outage.
        ssd.power_fail(&timeline);
        for c in ssd.drain_completions() {
            if c.request_id >= FLUSH_ID_BASE {
                continue;
            }
            Self::apply_completion(&mut tracer, &mut records, &mut oracle, &c);
        }

        // Power restore and firmware recovery, one second after full
        // discharge (the paper power-cycles between injections). A failed
        // or interrupted mount gets another power cycle after a
        // deterministic exponential backoff (1 s, 2 s, 4 s, …); a device
        // that exhausts its retries before rebuilding a mapping is
        // bricked — a terminal trial outcome — while one that already
        // rebuilt its map degrades to a read-only mount instead. With
        // `recovery_cut_rate` armed, further cuts can land while the
        // recovery pipeline itself runs (the recovery storm): the mount
        // is interrupted mid-stage and the next attempt resumes it.
        let mut recovery_time = timeline.discharged + SimDuration::from_secs(1);
        let mut backoff = SimDuration::from_secs(1);
        let mut storm_cuts = 0u32;
        let recovery = loop {
            let storm = self.config.recovery_cut_rate > 0.0
                && storm_cuts < self.config.max_recovery_cuts
                && sched_rng.chance(self.config.recovery_cut_rate);
            let result = if storm {
                // An idealised instantaneous cut (the sweeper's primitive)
                // a short lead into the mount: the rig's discharge ramp
                // would push `flash_unreliable` milliseconds out — past
                // the whole pipeline — and every storm cut would fizzle.
                let lead = SimDuration::from_micros(50 + sched_rng.below(500));
                let cut = pfault_power::FaultTimeline::at_instant(recovery_time + lead);
                ssd.power_on_recover_interruptible(recovery_time, &cut)
            } else {
                ssd.power_on_recover(recovery_time)
            };
            match result {
                // A storm cut scheduled after the pipeline finished is a
                // fizzle: the mount simply succeeded.
                Ok(report) => break report,
                Err(pfault_ssd::DeviceError::Bricked { attempts }) => {
                    return Err(TrialError::DeviceBricked { seed, attempts });
                }
                Err(pfault_ssd::DeviceError::RecoveryFailed { .. }) => {
                    // The mount worked but FTL recovery rebuilt an
                    // unusable device; the device has already bricked
                    // itself and retrying cannot change the outcome.
                    return Err(TrialError::DeviceBricked { seed, attempts: 1 });
                }
                Err(pfault_ssd::DeviceError::MountFailed { .. }) => {
                    recovery_time = ssd.now() + backoff;
                    backoff = backoff * 2;
                }
                Err(pfault_ssd::DeviceError::RecoveryInterrupted { .. }) => {
                    // The cut landed inside the pipeline: the session is
                    // checkpointed on the device and the next mount
                    // resumes it.
                    storm_cuts += 1;
                    recovery_time = ssd.now() + backoff;
                    backoff = backoff * 2;
                }
                Err(
                    e @ (pfault_ssd::DeviceError::NotMounted | pfault_ssd::DeviceError::ReadOnly),
                ) => unreachable!("power_on_recover never returns {e}"),
            }
        };

        // btt-style cross-check: the block-layer view of completion must
        // agree with the platform's records.
        let btt = analyze(tracer.events(), SimDuration::from_secs(30), recovery_time);
        debug_assert!(records.iter().all(|r| {
            btt.io(r.packet.id)
                .is_some_and(|io| io.completed == r.completed())
        }));

        // Verification + classification (reads still serve on a
        // read-only-degraded device, so the verdicts exist either way).
        let (verdicts, mut counts) = classify_all(&records, &oracle, &mut ssd);
        counts.read_only_devices = u64::from(recovery.read_only);

        let failed_ack_intervals_ms = records
            .iter()
            .zip(&verdicts)
            .filter(|(r, v)| {
                r.acked_at.is_some()
                    && matches!(
                        v.kind,
                        crate::analyzer::FailureKind::DataFailure
                            | crate::analyzer::FailureKind::FalseWriteAck
                    )
            })
            .map(|(r, _)| {
                fault_commanded
                    .saturating_since(r.acked_at.expect("filtered on acked"))
                    .as_millis_f64()
            })
            .collect();

        let elapsed_s = fault_commanded.as_micros().max(1) as f64 / 1_000_000.0;
        let completed_before_fault = records
            .iter()
            .filter(|r| r.acked_at.is_some_and(|t| t <= fault_commanded))
            .count();
        let flash = ssd.flash_stats();
        let probe_records = ssd.take_probe_records();
        let telemetry = self
            .config
            .obs
            .then(|| Metrics::from_records(&probe_records));
        Ok(TrialOutcome {
            counts,
            verdicts,
            requests_issued: issued as u64,
            requests_completed: completed,
            responded_iops: completed_before_fault as f64 / elapsed_s,
            fault_commanded_ms: fault_commanded.as_millis_f64(),
            failed_ack_intervals_ms,
            interrupted_programs: flash.interrupted_programs,
            paired_corruptions: flash.paired_corruptions,
            dirty_sectors_lost: ssd.stats().last_fault_dirty_lost,
            map_sectors_lost: ssd.stats().last_fault_map_lost,
            events,
            recovery: Some(recovery),
            telemetry,
            probe_records,
        })
    }

    /// Returns the number of sub-requests submitted.
    fn submit_packet(
        ssd: &mut Ssd,
        tracer: &mut BlockTracer,
        oracle: &Oracle,
        records: &mut Vec<RequestRecord>,
        packet: pfault_workload::DataPacket,
    ) -> usize {
        debug_assert_eq!(packet.id as usize, records.len(), "ids must be dense");
        let pre: Vec<Option<PageData>> = packet
            .lbas()
            .map(|l| oracle.expected(l).map(|v| v.data))
            .collect();
        let subs = tracer.queue_request(
            packet.id,
            packet.lba,
            packet.sectors,
            packet.is_write,
            ssd.now(),
        );
        records.push(RequestRecord::new(
            packet,
            pre,
            subs.len() as u32,
            ssd.now(),
        ));
        let mut offset = 0u64;
        let count = subs.len();
        for sub in subs {
            tracer.dispatch(packet.id, sub.sub_id, ssd.now());
            let cmd = if packet.is_write {
                HostCommand::write(
                    packet.id,
                    sub.sub_id,
                    sub.lba,
                    sub.sectors,
                    packet.payload_tag,
                )
                .with_payload_offset(offset)
            } else {
                HostCommand::read(packet.id, sub.sub_id, sub.lba, sub.sectors)
            };
            offset += sub.sectors.get();
            ssd.submit(cmd);
        }
        count
    }

    fn apply_completion(
        tracer: &mut BlockTracer,
        records: &mut [RequestRecord],
        oracle: &mut Oracle,
        c: &Completion,
    ) {
        let record = &mut records[c.request_id as usize];
        if c.acked() {
            tracer.complete(c.request_id, c.sub_id, c.time);
            record.note_sub_ack(c.time);
            if record.completed() && record.packet.is_write && record.acked_at == Some(c.time) {
                // The whole request is ACKed: the host now *expects* this
                // content on the device.
                let packet = record.packet;
                for (i, lba) in packet.lbas().enumerate() {
                    oracle.acknowledge_write(
                        lba,
                        PageData::from_tag(packet.sector_tag(i as u64)),
                        packet.id,
                    );
                }
            }
        } else {
            tracer.error(c.request_id, c.sub_id, c.time);
            record.note_sub_error();
        }
    }

    /// Convenience wrapper: a trial that never injects a fault (sanity
    /// baseline — everything must verify intact). Runs `requests` requests
    /// to completion, quiesces, and classifies.
    pub fn run_fault_free(&self, seed: u64) -> TrialOutcome {
        let root = DetRng::new(seed);
        let mut ssd = Ssd::new(self.config.ssd, root.fork("ssd"));
        if self.config.obs {
            ssd.enable_probes();
        }
        let mut generator = WorkloadGenerator::new(self.config.workload, root.fork("workload"));
        let mut tracer = BlockTracer::new(SectorCount::new(self.config.ssd.max_segment_sectors));
        let mut oracle = Oracle::new();
        let mut records: Vec<RequestRecord> = Vec::new();
        let queue_depth = match self.config.workload.arrival {
            ArrivalModel::ClosedLoop { queue_depth } => queue_depth as usize,
            ArrivalModel::OpenLoop { .. } | ArrivalModel::OpenLoopPoisson { .. } => 64,
        };
        let mut issued = 0usize;
        let mut outstanding = 0usize;
        while issued < self.config.requests || outstanding > 0 {
            while outstanding < queue_depth && issued < self.config.requests {
                let packet = generator.next_packet();
                let subs =
                    Self::submit_packet(&mut ssd, &mut tracer, &oracle, &mut records, packet);
                issued += 1;
                outstanding += subs;
            }
            for c in ssd.drain_completions() {
                outstanding = outstanding.saturating_sub(1);
                Self::apply_completion(&mut tracer, &mut records, &mut oracle, &c);
            }
            if let Some(t) = ssd.next_event() {
                ssd.advance_to(t.max(ssd.now() + SimDuration::from_micros(1)));
            } else if outstanding > 0 {
                ssd.advance_to(ssd.now() + SimDuration::from_millis(1));
            }
        }
        ssd.quiesce();
        let (verdicts, counts) = classify_all(&records, &oracle, &mut ssd);
        let probe_records = ssd.take_probe_records();
        let telemetry = self
            .config
            .obs
            .then(|| Metrics::from_records(&probe_records));
        TrialOutcome {
            counts,
            verdicts,
            requests_issued: issued as u64,
            requests_completed: records.iter().filter(|r| r.completed()).count() as u64,
            responded_iops: 0.0,
            fault_commanded_ms: 0.0,
            failed_ack_intervals_ms: Vec::new(),
            interrupted_programs: 0,
            paired_corruptions: 0,
            dirty_sectors_lost: 0,
            map_sectors_lost: 0,
            events: 0,
            recovery: None,
            telemetry,
            probe_records,
        }
    }
}

/// Helper for experiments that need a marker LBA far from the workload.
#[doc(hidden)]
pub fn marker_lba() -> Lba {
    Lba::new(u64::MAX / 8192)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::FailureKind;

    fn small_config() -> TrialConfig {
        let mut c = TrialConfig::paper_default();
        // Shrink geometry for test speed (blocks materialise lazily, but
        // the allocator bookkeeping is cheaper too).
        c.ssd.geometry = pfault_flash::FlashGeometry::new(1 << 14, 256);
        c.ssd.ftl = pfault_ftl::FtlConfig::for_geometry(c.ssd.geometry);
        c.workload = WorkloadSpec::builder()
            .wss_bytes(4 * pfault_sim::storage::GIB)
            .build();
        c.requests = 40;
        c
    }

    #[test]
    fn fault_free_trial_is_clean() {
        let platform = TestPlatform::new(small_config());
        let outcome = platform.run_fault_free(7);
        assert_eq!(outcome.requests_issued, 40);
        assert_eq!(outcome.requests_completed, 40);
        assert_eq!(outcome.counts.data_failures, 0, "{:?}", outcome.counts);
        assert_eq!(outcome.counts.fwa, 0);
        assert_eq!(outcome.counts.io_errors, 0);
        assert_eq!(outcome.counts.intact, 40);
    }

    #[test]
    fn trial_is_deterministic() {
        let platform = TestPlatform::new(small_config());
        let a = platform.run_trial(123).expect("trial runs");
        let b = platform.run_trial(123).expect("trial runs");
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.requests_issued, b.requests_issued);
        assert_eq!(a.fault_commanded_ms, b.fault_commanded_ms);
    }

    #[test]
    fn different_seeds_vary_fault_instants() {
        let platform = TestPlatform::new(small_config());
        let a = platform.run_trial(1).expect("trial runs");
        let b = platform.run_trial(2).expect("trial runs");
        assert_ne!(a.fault_commanded_ms, b.fault_commanded_ms);
    }

    #[test]
    fn faults_produce_failures_on_write_workloads() {
        let platform = TestPlatform::new(small_config());
        let mut loss = 0;
        for seed in 0..10 {
            let o = platform.run_trial(seed).expect("trial runs");
            loss += o.counts.total_data_loss();
        }
        assert!(loss > 0, "10 faults on a write workload must lose data");
    }

    #[test]
    fn read_only_workload_has_no_data_loss_but_io_errors() {
        let mut config = small_config();
        config.workload = WorkloadSpec::builder()
            .wss_bytes(4 * pfault_sim::storage::GIB)
            .write_fraction(0.0)
            .build();
        let platform = TestPlatform::new(config);
        let mut io_errors = 0;
        for seed in 0..10 {
            let o = platform.run_trial(seed).expect("trial runs");
            assert_eq!(o.counts.total_data_loss(), 0, "reads cannot lose data");
            io_errors += o.counts.io_errors;
        }
        assert!(io_errors > 0, "faults mid-read must produce IO errors");
    }

    #[test]
    fn verdict_kinds_are_consistent_with_counts() {
        let platform = TestPlatform::new(small_config());
        let o = platform.run_trial(99).expect("trial runs");
        let df = o
            .verdicts
            .iter()
            .filter(|v| v.kind == FailureKind::DataFailure)
            .count() as u64;
        assert_eq!(df, o.counts.data_failures);
    }

    #[test]
    fn warm_image_is_deterministic() {
        let platform = TestPlatform::new(small_config().with_warmup_requests(24));
        let a = platform.warm_image();
        let b = platform.warm_image();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.config_digest(), platform.config_digest());
        assert!(a.warm_now() > SimTime::from_micros(0), "warm-up must run");
    }

    #[test]
    fn image_trials_match_inline_warmup_byte_for_byte() {
        let platform = TestPlatform::new(small_config().with_warmup_requests(24));
        let image = platform.warm_image();
        for seed in [3u64, 17, 99] {
            let inline = platform.run_trial(seed).expect("trial runs");
            let cloned = platform
                .run_trial_from_image(&image, seed)
                .expect("trial runs");
            assert_eq!(
                format!("{inline:?}"),
                format!("{cloned:?}"),
                "seed {seed}: a CoW clone must replay the warm-up exactly"
            );
        }
    }

    #[test]
    fn warmup_changes_the_config_digest() {
        let cold = TestPlatform::new(small_config());
        let warm = TestPlatform::new(small_config().with_warmup_requests(24));
        assert_ne!(cold.config_digest(), warm.config_digest());
    }

    #[test]
    fn supercap_eliminates_data_loss() {
        let mut config = small_config();
        config.ssd.supercap = true;
        let platform = TestPlatform::new(config);
        for seed in 0..5 {
            let o = platform.run_trial(seed).expect("trial runs");
            assert_eq!(
                o.counts.total_data_loss(),
                0,
                "supercap drive lost data at seed {seed}: {:?}",
                o.counts
            );
        }
    }
}
