//! Fault-injection campaigns: many trials, aggregated.
//!
//! The paper's experiments each inject hundreds of faults ("more than 300
//! power faults … during 24,000 requests"). A [`Campaign`] runs one trial
//! per fault with an independent derived seed and aggregates the
//! [`FailureCounts`] into a [`CampaignReport`]. Trials are independent, so
//! [`Campaign::run_parallel`] distributes them over threads with results
//! identical to the serial runner.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::mpsc;

use pfault_obs::Metrics;
use pfault_sim::checksum::fnv64;
use pfault_sim::stats::{Histogram, OnlineStats};
use pfault_sim::DetRng;

use crate::analyzer::FailureCounts;
use crate::error::{CheckpointError, PlatformError, TrialError};
use crate::platform::{TestPlatform, TrialConfig, TrialOutcome};

/// Campaign configuration: a trial template plus the fault count.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Template for every trial.
    pub trial: TrialConfig,
    /// Number of fault injections (= trials).
    pub trials: usize,
    /// Requests submitted per trial (overrides `trial.requests`).
    pub requests_per_trial: usize,
}

impl CampaignConfig {
    /// The paper's §IV default: ~80 requests per fault on SSD A.
    pub fn paper_default() -> Self {
        let trial = TrialConfig::paper_default();
        CampaignConfig {
            requests_per_trial: trial.requests,
            trial,
            trials: 300,
        }
    }
}

/// Trials that produced no outcome, by terminal cause, plus the retry
/// effort the campaign spent. Indices are campaign trial indices
/// (`0..trials`), kept sorted.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrialFailures {
    /// Trials whose body panicked on every attempt.
    pub panicked: Vec<u64>,
    /// Trials that exceeded the watchdog budget on every attempt.
    pub watchdog_expired: Vec<u64>,
    /// Trials whose device bricked (never mounted again) on every attempt.
    pub bricked: Vec<u64>,
    /// Extra attempts spent across all trials (0 if nothing was retried).
    pub retries: u64,
}

impl TrialFailures {
    /// Total trials that failed terminally.
    pub fn total_failed(&self) -> usize {
        self.panicked.len() + self.watchdog_expired.len() + self.bricked.len()
    }

    pub(crate) fn record(&mut self, index: u64, error: &TrialError) {
        match error {
            TrialError::Panicked { .. } => self.panicked.push(index),
            TrialError::WatchdogExpired { .. } => self.watchdog_expired.push(index),
            TrialError::DeviceBricked { .. } => self.bricked.push(index),
        }
    }

    fn merge(&mut self, other: &TrialFailures) {
        self.panicked.extend_from_slice(&other.panicked);
        self.watchdog_expired
            .extend_from_slice(&other.watchdog_expired);
        self.bricked.extend_from_slice(&other.bricked);
        // Partial reports merge in worker-completion order; sorting keeps
        // the merged ledger identical to the serial runner's.
        self.panicked.sort_unstable();
        self.watchdog_expired.sort_unstable();
        self.bricked.sort_unstable();
        self.retries += other.retries;
    }
}

/// Campaign-level observability aggregate: probe-derived counters and
/// histograms summed over every obs-enabled trial, plus per-failure-class
/// slices (the same metrics restricted to trials that exhibited that
/// class). Empty — and free — when [`TrialConfig::obs`] is off.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObsAggregate {
    /// Trials whose telemetry contributed.
    pub trials_observed: u64,
    /// Metrics summed over all observed trials.
    pub totals: Metrics,
    /// Per-failure-class telemetry: a trial's metrics are merged into the
    /// bucket of every failure class it exhibited (`data-failure`,
    /// `false-write-ack`, `io-error`, `read-only`) or into `clean` if it
    /// exhibited none. Keys are stable strings so the JSON report is
    /// self-labelled.
    pub by_class: BTreeMap<String, Metrics>,
}

impl ObsAggregate {
    /// The failure-class labels a trial's telemetry files under.
    fn classes(counts: &FailureCounts) -> Vec<&'static str> {
        let mut classes = Vec::new();
        if counts.data_failures > 0 {
            classes.push("data-failure");
        }
        if counts.fwa > 0 {
            classes.push("false-write-ack");
        }
        if counts.io_errors > 0 {
            classes.push("io-error");
        }
        if counts.read_only_devices > 0 {
            classes.push("read-only");
        }
        if classes.is_empty() {
            classes.push("clean");
        }
        classes
    }

    fn absorb(&mut self, outcome: &TrialOutcome) {
        let Some(telemetry) = &outcome.telemetry else {
            return;
        };
        self.trials_observed += 1;
        self.totals.merge(telemetry);
        for class in Self::classes(&outcome.counts) {
            self.by_class
                .entry(class.to_string())
                .or_default()
                .merge(telemetry);
        }
    }

    fn merge(&mut self, other: &ObsAggregate) {
        self.trials_observed += other.trials_observed;
        self.totals.merge(&other.totals);
        for (class, metrics) in &other.by_class {
            self.by_class
                .entry(class.clone())
                .or_default()
                .merge(metrics);
        }
    }

    /// Whether no trial contributed telemetry.
    pub fn is_empty(&self) -> bool {
        self.trials_observed == 0
    }
}

/// Aggregated results of a campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Faults injected.
    pub faults: u64,
    /// Requests issued across all trials.
    pub requests_issued: u64,
    /// Requests completed across all trials.
    pub requests_completed: u64,
    /// Failure tallies across all trials.
    pub counts: FailureCounts,
    /// Distribution of per-trial responded IOPS.
    pub responded_iops: OnlineStats,
    /// Distribution of ACK→fault intervals over failed requests (ms) —
    /// the §IV-A quantity.
    pub failed_ack_interval_ms: OnlineStats,
    /// Largest observed ACK→fault interval among failed requests (ms).
    pub max_failed_ack_interval_ms: f64,
    /// Distribution of those intervals in 50 ms buckets up to 1 s (the
    /// §IV-A histogram).
    pub failed_ack_interval_hist: Histogram,
    /// Programs interrupted mid-operation across all trials.
    pub interrupted_programs: u64,
    /// Paired-page collateral corruptions across all trials.
    pub paired_corruptions: u64,
    /// Trials that ended without an outcome (panic, watchdog, brick).
    pub failures: TrialFailures,
    /// Probe-derived telemetry (empty unless trials ran with
    /// [`TrialConfig::obs`]).
    pub obs: ObsAggregate,
}

impl CampaignReport {
    fn empty() -> Self {
        CampaignReport {
            faults: 0,
            requests_issued: 0,
            requests_completed: 0,
            counts: FailureCounts::default(),
            responded_iops: OnlineStats::new(),
            failed_ack_interval_ms: OnlineStats::new(),
            max_failed_ack_interval_ms: 0.0,
            failed_ack_interval_hist: Histogram::new(50.0, 20),
            interrupted_programs: 0,
            paired_corruptions: 0,
            failures: TrialFailures::default(),
            obs: ObsAggregate::default(),
        }
    }

    fn absorb(&mut self, outcome: &TrialOutcome) {
        self.faults += 1;
        self.requests_issued += outcome.requests_issued;
        self.requests_completed += outcome.requests_completed;
        self.counts.merge(&outcome.counts);
        self.responded_iops.push(outcome.responded_iops);
        for &interval in &outcome.failed_ack_intervals_ms {
            self.failed_ack_interval_ms.push(interval);
            self.failed_ack_interval_hist.record(interval);
            if interval > self.max_failed_ack_interval_ms {
                self.max_failed_ack_interval_ms = interval;
            }
        }
        self.interrupted_programs += outcome.interrupted_programs;
        self.paired_corruptions += outcome.paired_corruptions;
        self.obs.absorb(outcome);
    }

    /// Tallies a trial that ended without an outcome. The fault was still
    /// injected (the trial ran up to and past the discharge before dying),
    /// and a bricked device is a first-class failure alongside the per-
    /// request verdicts.
    fn absorb_failure(&mut self, index: u64, error: &TrialError) {
        self.faults += 1;
        if matches!(error, TrialError::DeviceBricked { .. }) {
            self.counts.bricked_devices += 1;
        }
        self.failures.record(index, error);
    }

    fn merge(&mut self, other: &CampaignReport) {
        self.faults += other.faults;
        self.requests_issued += other.requests_issued;
        self.requests_completed += other.requests_completed;
        self.counts.merge(&other.counts);
        self.responded_iops.merge(&other.responded_iops);
        self.failed_ack_interval_ms
            .merge(&other.failed_ack_interval_ms);
        self.max_failed_ack_interval_ms = self
            .max_failed_ack_interval_ms
            .max(other.max_failed_ack_interval_ms);
        for i in 0..other.failed_ack_interval_hist.len() {
            for _ in 0..other.failed_ack_interval_hist.bucket_count(i) {
                self.failed_ack_interval_hist
                    .record(other.failed_ack_interval_hist.bucket_lo(i));
            }
        }
        for _ in 0..other.failed_ack_interval_hist.overflow() {
            self.failed_ack_interval_hist.record(1.0e9);
        }
        self.interrupted_programs += other.interrupted_programs;
        self.paired_corruptions += other.paired_corruptions;
        self.failures.merge(&other.failures);
        self.obs.merge(&other.obs);
    }

    /// Data failures (excluding FWA) per injected fault — the paper's
    /// right-hand axis in Figs 5–7 and 9.
    pub fn data_failures_per_fault(&self) -> f64 {
        if self.faults == 0 {
            return 0.0;
        }
        self.counts.data_failures as f64 / self.faults as f64
    }

    /// Total data-loss events (data failures + FWA) per fault.
    pub fn data_loss_per_fault(&self) -> f64 {
        if self.faults == 0 {
            return 0.0;
        }
        self.counts.total_data_loss() as f64 / self.faults as f64
    }

    /// IO errors per fault.
    pub fn io_errors_per_fault(&self) -> f64 {
        if self.faults == 0 {
            return 0.0;
        }
        self.counts.io_errors as f64 / self.faults as f64
    }
}

/// On-disk snapshot of a partially completed campaign: trials
/// `0..completed` are absorbed into `report`. The identity fields pin the
/// snapshot to one (config, seed) pair so a resume cannot silently mix
/// campaigns.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CampaignCheckpoint {
    version: u32,
    config_digest: u64,
    seed: u64,
    trials: u64,
    completed: u64,
    report: CampaignReport,
}

// v3: `FailureCounts` gained `read_only_devices` and `TrialConfig` the
// recovery-storm knobs, so v2 snapshots no longer deserialize into the
// same report shape.
const CHECKPOINT_VERSION: u32 = 3;

/// A campaign runner.
#[derive(Debug, Clone)]
pub struct Campaign {
    config: CampaignConfig,
    seed: u64,
    retries: u32,
    checkpoint: Option<CheckpointSpec>,
}

#[derive(Debug, Clone)]
struct CheckpointSpec {
    path: PathBuf,
    every: u64,
}

impl Campaign {
    /// Creates a campaign; `seed` determines every trial.
    pub fn new(config: CampaignConfig, seed: u64) -> Self {
        Campaign {
            config,
            seed,
            retries: 0,
            checkpoint: None,
        }
    }

    /// Retries each failing trial up to `retries` extra attempts, each
    /// with a deterministically derived fresh seed. The first attempt
    /// always uses the original trial seed, so a campaign with zero
    /// failures is unaffected by this setting.
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Writes a resumable JSON checkpoint to `path` after every `every`
    /// completed trials (serial runs only; `every` is clamped to ≥ 1).
    /// The write is atomic: a temp file is renamed over `path`.
    pub fn with_checkpoint(mut self, path: impl Into<PathBuf>, every: u64) -> Self {
        self.checkpoint = Some(CheckpointSpec {
            path: path.into(),
            every: every.max(1),
        });
        self
    }

    fn trial_config(&self) -> TrialConfig {
        let mut t = self.config.trial;
        t.requests = self.config.requests_per_trial;
        t
    }

    fn trial_seed(&self, index: usize) -> u64 {
        DetRng::new(self.seed).fork_index(index as u64).next_u64()
    }

    /// Seed for attempt `attempt` of trial `index`. Attempt 0 is the
    /// original [`Campaign::trial_seed`] stream; retries fork a disjoint
    /// stream so a retried trial sees fresh (but reproducible) randomness.
    fn attempt_seed(&self, index: u64, attempt: u32) -> u64 {
        if attempt == 0 {
            return self.trial_seed(index as usize);
        }
        DetRng::new(self.seed)
            .fork("retry")
            .fork_index(index)
            .fork_index(u64::from(attempt))
            .next_u64()
    }

    /// Fingerprint of everything that shapes trial behaviour, used to pin
    /// checkpoints to their campaign.
    fn config_digest(&self) -> u64 {
        fnv64(format!("{:?}", self.config).as_bytes())
    }

    /// Runs one trial with panic isolation and deterministic retry.
    /// Returns the outcome (or the last attempt's error) plus the number
    /// of extra attempts consumed.
    fn run_one(
        &self,
        platform: &TestPlatform,
        index: u64,
    ) -> (Result<TrialOutcome, TrialError>, u64) {
        let mut attempt: u32 = 0;
        loop {
            let seed = self.attempt_seed(index, attempt);
            let result = panic::catch_unwind(AssertUnwindSafe(|| platform.run_trial(seed)));
            let error = match result {
                Ok(Ok(outcome)) => return (Ok(outcome), u64::from(attempt)),
                Ok(Err(e)) => e,
                Err(payload) => TrialError::Panicked {
                    seed,
                    message: panic_message(payload.as_ref()),
                },
            };
            if attempt >= self.retries {
                return (Err(error), u64::from(attempt));
            }
            attempt += 1;
        }
    }

    /// Runs trials `start..trials` serially, absorbing into `report`.
    fn run_range(
        &self,
        mut report: CampaignReport,
        start: u64,
    ) -> Result<CampaignReport, PlatformError> {
        let platform = TestPlatform::new(self.trial_config());
        let trials = self.config.trials as u64;
        for i in start..trials {
            let (result, retries_used) = self.run_one(&platform, i);
            report.failures.retries += retries_used;
            match result {
                Ok(outcome) => report.absorb(&outcome),
                Err(error) => report.absorb_failure(i, &error),
            }
            if let Some(spec) = &self.checkpoint {
                let completed = i + 1;
                if completed % spec.every == 0 && completed < trials {
                    self.write_checkpoint(spec, completed, &report)?;
                }
            }
        }
        Ok(report)
    }

    fn write_checkpoint(
        &self,
        spec: &CheckpointSpec,
        completed: u64,
        report: &CampaignReport,
    ) -> Result<(), CheckpointError> {
        let snapshot = CampaignCheckpoint {
            version: CHECKPOINT_VERSION,
            config_digest: self.config_digest(),
            seed: self.seed,
            trials: self.config.trials as u64,
            completed,
            report: report.clone(),
        };
        let text = serde_json::to_string(&snapshot)
            .map_err(|e| CheckpointError::Corrupt(e.to_string()))?;
        let tmp = spec.path.with_extension("tmp");
        std::fs::write(&tmp, text)?;
        std::fs::rename(&tmp, &spec.path)?;
        Ok(())
    }

    /// Runs all trials serially. Equivalent to
    /// [`Campaign::run_checked`] but panics on a checkpoint IO error.
    pub fn run(&self) -> CampaignReport {
        match self.run_checked() {
            Ok(report) => report,
            Err(e) => panic!("campaign failed: {e}"),
        }
    }

    /// Runs all trials serially. Trials that panic, exceed the watchdog
    /// budget, or brick the device are retried per
    /// [`Campaign::with_retries`] and, if still failing, recorded in
    /// [`CampaignReport::failures`] — the campaign itself keeps going.
    /// Errors only on checkpoint IO problems.
    pub fn run_checked(&self) -> Result<CampaignReport, PlatformError> {
        self.run_range(CampaignReport::empty(), 0)
    }

    /// Resumes a serial run from a checkpoint written by
    /// [`Campaign::with_checkpoint`]. The checkpoint must match this
    /// campaign's seed, trial count, and configuration; the completed
    /// prefix is taken from the snapshot and the remaining trials run
    /// normally, so the final report is identical to an uninterrupted
    /// [`Campaign::run_checked`].
    pub fn resume_from(&self, path: impl AsRef<Path>) -> Result<CampaignReport, PlatformError> {
        let text = std::fs::read_to_string(path.as_ref()).map_err(CheckpointError::Io)?;
        let snapshot: CampaignCheckpoint =
            serde_json::from_str(&text).map_err(|e| CheckpointError::Corrupt(e.to_string()))?;
        check_match("version", snapshot.version, CHECKPOINT_VERSION)?;
        check_match("seed", snapshot.seed, self.seed)?;
        check_match("trials", snapshot.trials, self.config.trials as u64)?;
        check_match(
            "config_digest",
            snapshot.config_digest,
            self.config_digest(),
        )?;
        if snapshot.completed > snapshot.trials {
            return Err(CheckpointError::Corrupt(format!(
                "checkpoint claims {} completed trials of {}",
                snapshot.completed, snapshot.trials
            ))
            .into());
        }
        self.run_range(snapshot.report, snapshot.completed)
    }

    /// Runs all trials across `threads` worker threads (`0` is treated as
    /// `1`). The result is bit-identical to [`Campaign::run`] for all
    /// order-insensitive aggregates (counts, means, extremes, and the
    /// sorted failure ledger). Checkpointing is serial-only and ignored
    /// here.
    pub fn run_parallel(&self, threads: usize) -> CampaignReport {
        let threads = threads.max(1);
        let trials = self.config.trials as u64;
        let (tx, rx) = mpsc::channel::<CampaignReport>();
        std::thread::scope(|scope| {
            for worker in 0..threads as u64 {
                let tx = tx.clone();
                scope.spawn(move || {
                    let platform = TestPlatform::new(self.trial_config());
                    let mut partial = CampaignReport::empty();
                    let mut i = worker;
                    while i < trials {
                        let (result, retries_used) = self.run_one(&platform, i);
                        partial.failures.retries += retries_used;
                        match result {
                            Ok(outcome) => partial.absorb(&outcome),
                            Err(error) => partial.absorb_failure(i, &error),
                        }
                        i += threads as u64;
                    }
                    tx.send(partial).expect("receiver lives in this scope");
                });
            }
        });
        drop(tx);
        let mut report = CampaignReport::empty();
        for partial in rx.iter() {
            report.merge(&partial);
        }
        report
    }
}

/// Renders a `catch_unwind` payload for [`TrialError::Panicked`].
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn check_match<T>(field: &'static str, found: T, expected: T) -> Result<(), CheckpointError>
where
    T: PartialEq + std::fmt::Display,
{
    if found == expected {
        Ok(())
    } else {
        Err(CheckpointError::Mismatch {
            field,
            found: found.to_string(),
            expected: expected.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfault_sim::storage::GIB;
    use pfault_workload::WorkloadSpec;

    fn tiny_config() -> CampaignConfig {
        let mut config = CampaignConfig::paper_default();
        config.trial.ssd.geometry = pfault_flash::FlashGeometry::new(1 << 14, 256);
        config.trial.ssd.ftl = pfault_ftl::FtlConfig::for_geometry(config.trial.ssd.geometry);
        config.trial.workload = WorkloadSpec::builder().wss_bytes(4 * GIB).build();
        config.trials = 6;
        config.requests_per_trial = 25;
        config
    }

    #[test]
    fn campaign_aggregates_all_trials() {
        let report = Campaign::new(tiny_config(), 5).run();
        assert_eq!(report.faults, 6);
        // The generator flows continuously, so at least the trigger
        // fraction of the nominal 25 requests was issued per trial.
        assert!(report.requests_issued >= 6 * 7);
        assert_eq!(report.responded_iops.count(), 6);
    }

    #[test]
    fn serial_and_parallel_agree() {
        let campaign = Campaign::new(tiny_config(), 11);
        let serial = campaign.run();
        let parallel = campaign.run_parallel(3);
        assert_eq!(serial.faults, parallel.faults);
        assert_eq!(serial.counts, parallel.counts);
        assert_eq!(serial.requests_issued, parallel.requests_issued);
        assert!((serial.responded_iops.mean() - parallel.responded_iops.mean()).abs() < 1e-9);
        assert_eq!(
            serial.max_failed_ack_interval_ms,
            parallel.max_failed_ack_interval_ms
        );
    }

    #[test]
    fn same_seed_reproduces() {
        let a = Campaign::new(tiny_config(), 7).run();
        let b = Campaign::new(tiny_config(), 7).run();
        assert_eq!(a.counts, b.counts);
    }

    #[test]
    fn interval_histogram_tracks_failed_requests() {
        let report = Campaign::new(tiny_config(), 9).run();
        assert_eq!(
            report.failed_ack_interval_hist.total(),
            report.failed_ack_interval_ms.count()
        );
        let parallel = Campaign::new(tiny_config(), 9).run_parallel(3);
        assert_eq!(
            parallel.failed_ack_interval_hist.total(),
            report.failed_ack_interval_hist.total()
        );
    }

    #[test]
    fn rates_divide_by_faults() {
        let report = Campaign::new(tiny_config(), 13).run();
        let expected = report.counts.data_failures as f64 / report.faults as f64;
        assert!((report.data_failures_per_fault() - expected).abs() < 1e-12);
    }

    #[test]
    fn one_campaign_survives_mixed_failure_classes() {
        // Per-trial event counts at seed 11 range 1249..=1600, so a
        // 1400-event budget expires some trials and spares others; the
        // spared trials then mount with a coin-flip failure rate, so a
        // single campaign mixes watchdog expiries, bricked devices, and
        // successful trials — and still completes with every affected
        // index on the ledger.
        let mut config = tiny_config();
        config.trial.watchdog = crate::platform::Watchdog {
            max_sim_time_us: None,
            max_events: Some(1400),
        };
        config.trial.ssd.mount_failure_rate = 0.5;
        config.trial.ssd.mount_retry_limit = 1;
        let campaign = Campaign::new(config, 11);
        let report = campaign.run();
        assert_eq!(report.faults, 6);
        assert!(
            !report.failures.watchdog_expired.is_empty(),
            "expected at least one watchdog expiry, got {:?}",
            report.failures
        );
        assert!(
            !report.failures.bricked.is_empty(),
            "expected at least one bricked device, got {:?}",
            report.failures
        );
        assert!(
            report.failures.total_failed() < 6,
            "expected at least one successful trial, got {:?}",
            report.failures
        );
        // No trial lands on two lists.
        let mut all: Vec<u64> = report
            .failures
            .watchdog_expired
            .iter()
            .chain(&report.failures.bricked)
            .chain(&report.failures.panicked)
            .copied()
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), report.failures.total_failed());
        let parallel = campaign.run_parallel(3);
        assert_eq!(parallel.failures, report.failures);
        assert_eq!(parallel.counts, report.counts);
    }

    #[test]
    fn zero_threads_is_clamped_to_serial() {
        let campaign = Campaign::new(tiny_config(), 11);
        let zero = campaign.run_parallel(0);
        let serial = campaign.run();
        assert_eq!(zero.faults, serial.faults);
        assert_eq!(zero.counts, serial.counts);
    }

    #[test]
    fn watchdog_expiry_is_reported_not_hung() {
        let mut config = tiny_config();
        config.trials = 3;
        config.trial.watchdog = crate::platform::Watchdog {
            max_sim_time_us: None,
            max_events: Some(10),
        };
        let report = Campaign::new(config, 3).run();
        assert_eq!(report.faults, 3);
        assert_eq!(report.failures.watchdog_expired, vec![0, 1, 2]);
        assert_eq!(report.failures.total_failed(), 3);
        assert_eq!(report.responded_iops.count(), 0);
    }

    #[test]
    fn panicking_trials_are_isolated_and_deterministic() {
        let mut config = tiny_config();
        // A zero-capacity cache fails SsdConfig validation inside the
        // trial body, so every trial panics.
        config.trial.ssd.cache.capacity_sectors = 0;
        let campaign = Campaign::new(config, 17).with_retries(2);
        let a = campaign.run();
        assert_eq!(a.faults, 6);
        assert_eq!(a.failures.panicked, vec![0, 1, 2, 3, 4, 5]);
        // 2 extra attempts per trial, all panicking.
        assert_eq!(a.failures.retries, 12);
        let b = campaign.run();
        assert_eq!(a.failures, b.failures);
        let parallel = campaign.run_parallel(3);
        assert_eq!(parallel.failures, a.failures);
    }

    #[test]
    fn bricked_devices_are_tallied_as_failures() {
        let mut config = tiny_config();
        config.trial.ssd.mount_failure_rate = 1.0;
        config.trial.ssd.mount_retry_limit = 2;
        let report = Campaign::new(config, 23).run();
        assert_eq!(report.faults, 6);
        assert_eq!(report.counts.bricked_devices, 6);
        assert_eq!(report.failures.bricked.len(), 6);
    }

    #[test]
    fn mixed_mount_failures_brick_some_trials() {
        let mut config = tiny_config();
        config.trials = 12;
        config.trial.ssd.mount_failure_rate = 0.5;
        config.trial.ssd.mount_retry_limit = 1;
        let report = Campaign::new(config, 29).run();
        let bricked = report.failures.bricked.len() as u64;
        assert_eq!(report.counts.bricked_devices, bricked);
        assert!(bricked > 0, "rate 0.5 should brick at least one of 12");
        assert!(bricked < 12, "rate 0.5 should let at least one mount");
        assert_eq!(report.responded_iops.count() + bricked, 12);
        let parallel = Campaign::new(config, 29).run_parallel(4);
        assert_eq!(parallel.failures, report.failures);
        assert_eq!(parallel.counts, report.counts);
    }

    #[test]
    fn retry_recovers_flaky_mounts() {
        let mut config = tiny_config();
        config.trial.ssd.mount_failure_rate = 0.5;
        config.trial.ssd.mount_retry_limit = 1;
        let no_retry = Campaign::new(config, 29).run();
        let with_retry = Campaign::new(config, 29).with_retries(4).run();
        assert!(no_retry.failures.bricked.len() > with_retry.failures.bricked.len());
        assert!(with_retry.failures.retries > 0);
    }

    #[test]
    fn checkpoint_resume_equals_uninterrupted_run() {
        let dir = std::env::temp_dir().join("pfault-checkpoint-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("resume.json");
        let _ = std::fs::remove_file(&path);

        let plain = Campaign::new(tiny_config(), 31).run();
        let checkpointed = Campaign::new(tiny_config(), 31).with_checkpoint(&path, 2);
        let full = checkpointed.run_checked().expect("checkpointed run");
        assert_eq!(
            serde_json::to_string(&full).unwrap(),
            serde_json::to_string(&plain).unwrap(),
            "checkpointing must not perturb the result"
        );

        // The file on disk holds a partial prefix (the last mid-run
        // snapshot); resuming from it must reproduce the full report
        // byte-for-byte.
        let resumed = checkpointed.resume_from(&path).expect("resume");
        assert_eq!(
            serde_json::to_string(&resumed).unwrap(),
            serde_json::to_string(&plain).unwrap(),
            "resumed run must equal the uninterrupted run"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_rejects_mismatched_campaign() {
        let dir = std::env::temp_dir().join("pfault-checkpoint-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("mismatch.json");
        let _ = std::fs::remove_file(&path);

        let campaign = Campaign::new(tiny_config(), 37).with_checkpoint(&path, 2);
        campaign.run_checked().expect("run");

        let wrong_seed = Campaign::new(tiny_config(), 38);
        match wrong_seed.resume_from(&path) {
            Err(PlatformError::Checkpoint(CheckpointError::Mismatch { field, .. })) => {
                assert_eq!(field, "seed");
            }
            other => panic!("expected seed mismatch, got {other:?}"),
        }

        let mut other_config = tiny_config();
        other_config.requests_per_trial += 1;
        let wrong_config = Campaign::new(other_config, 37);
        match wrong_config.resume_from(&path) {
            Err(PlatformError::Checkpoint(CheckpointError::Mismatch { field, .. })) => {
                assert_eq!(field, "config_digest");
            }
            other => panic!("expected config mismatch, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_rejects_old_checkpoint_version() {
        // Satellite: a v2-era snapshot (before `read_only_devices` and
        // the recovery-storm knobs) must be refused, not misread.
        let dir = std::env::temp_dir().join("pfault-checkpoint-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("stale-version.json");
        let _ = std::fs::remove_file(&path);

        let campaign = Campaign::new(tiny_config(), 43).with_checkpoint(&path, 2);
        campaign.run_checked().expect("run");
        let text = std::fs::read_to_string(&path).expect("checkpoint written");
        assert!(text.contains("\"version\":3"), "snapshot carries v3");
        std::fs::write(&path, text.replace("\"version\":3", "\"version\":2")).expect("rewrite");

        match campaign.resume_from(&path) {
            Err(PlatformError::Checkpoint(CheckpointError::Mismatch { field, .. })) => {
                assert_eq!(field, "version");
            }
            other => panic!("expected version mismatch, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_rejects_corrupt_checkpoint() {
        let dir = std::env::temp_dir().join("pfault-checkpoint-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("corrupt.json");
        std::fs::write(&path, "{not json").expect("write");
        match Campaign::new(tiny_config(), 41).resume_from(&path) {
            Err(PlatformError::Checkpoint(CheckpointError::Corrupt(_))) => {}
            other => panic!("expected corrupt checkpoint, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }
}
