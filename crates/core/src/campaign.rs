//! Fault-injection campaigns: many trials, aggregated.
//!
//! The paper's experiments each inject hundreds of faults ("more than 300
//! power faults … during 24,000 requests"). A [`Campaign`] runs one trial
//! per fault with an independent derived seed and aggregates the
//! [`FailureCounts`] into a [`CampaignReport`]. Trials are independent, so
//! [`Campaign::run_parallel`] distributes them over threads with results
//! identical to the serial runner.

use crossbeam::channel;
use serde::{Deserialize, Serialize};

use pfault_sim::stats::{Histogram, OnlineStats};
use pfault_sim::DetRng;

use crate::analyzer::FailureCounts;
use crate::platform::{TestPlatform, TrialConfig, TrialOutcome};

/// Campaign configuration: a trial template plus the fault count.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Template for every trial.
    pub trial: TrialConfig,
    /// Number of fault injections (= trials).
    pub trials: usize,
    /// Requests submitted per trial (overrides `trial.requests`).
    pub requests_per_trial: usize,
}

impl CampaignConfig {
    /// The paper's §IV default: ~80 requests per fault on SSD A.
    pub fn paper_default() -> Self {
        let trial = TrialConfig::paper_default();
        CampaignConfig {
            requests_per_trial: trial.requests,
            trial,
            trials: 300,
        }
    }
}

/// Aggregated results of a campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Faults injected.
    pub faults: u64,
    /// Requests issued across all trials.
    pub requests_issued: u64,
    /// Requests completed across all trials.
    pub requests_completed: u64,
    /// Failure tallies across all trials.
    pub counts: FailureCounts,
    /// Distribution of per-trial responded IOPS.
    pub responded_iops: OnlineStats,
    /// Distribution of ACK→fault intervals over failed requests (ms) —
    /// the §IV-A quantity.
    pub failed_ack_interval_ms: OnlineStats,
    /// Largest observed ACK→fault interval among failed requests (ms).
    pub max_failed_ack_interval_ms: f64,
    /// Distribution of those intervals in 50 ms buckets up to 1 s (the
    /// §IV-A histogram).
    pub failed_ack_interval_hist: Histogram,
    /// Programs interrupted mid-operation across all trials.
    pub interrupted_programs: u64,
    /// Paired-page collateral corruptions across all trials.
    pub paired_corruptions: u64,
}

impl CampaignReport {
    fn empty() -> Self {
        CampaignReport {
            faults: 0,
            requests_issued: 0,
            requests_completed: 0,
            counts: FailureCounts::default(),
            responded_iops: OnlineStats::new(),
            failed_ack_interval_ms: OnlineStats::new(),
            max_failed_ack_interval_ms: 0.0,
            failed_ack_interval_hist: Histogram::new(50.0, 20),
            interrupted_programs: 0,
            paired_corruptions: 0,
        }
    }

    fn absorb(&mut self, outcome: &TrialOutcome) {
        self.faults += 1;
        self.requests_issued += outcome.requests_issued;
        self.requests_completed += outcome.requests_completed;
        self.counts.merge(&outcome.counts);
        self.responded_iops.push(outcome.responded_iops);
        for &interval in &outcome.failed_ack_intervals_ms {
            self.failed_ack_interval_ms.push(interval);
            self.failed_ack_interval_hist.record(interval);
            if interval > self.max_failed_ack_interval_ms {
                self.max_failed_ack_interval_ms = interval;
            }
        }
        self.interrupted_programs += outcome.interrupted_programs;
        self.paired_corruptions += outcome.paired_corruptions;
    }

    fn merge(&mut self, other: &CampaignReport) {
        self.faults += other.faults;
        self.requests_issued += other.requests_issued;
        self.requests_completed += other.requests_completed;
        self.counts.merge(&other.counts);
        self.responded_iops.merge(&other.responded_iops);
        self.failed_ack_interval_ms
            .merge(&other.failed_ack_interval_ms);
        self.max_failed_ack_interval_ms = self
            .max_failed_ack_interval_ms
            .max(other.max_failed_ack_interval_ms);
        for i in 0..other.failed_ack_interval_hist.len() {
            for _ in 0..other.failed_ack_interval_hist.bucket_count(i) {
                self.failed_ack_interval_hist
                    .record(other.failed_ack_interval_hist.bucket_lo(i));
            }
        }
        for _ in 0..other.failed_ack_interval_hist.overflow() {
            self.failed_ack_interval_hist.record(1.0e9);
        }
        self.interrupted_programs += other.interrupted_programs;
        self.paired_corruptions += other.paired_corruptions;
    }

    /// Data failures (excluding FWA) per injected fault — the paper's
    /// right-hand axis in Figs 5–7 and 9.
    pub fn data_failures_per_fault(&self) -> f64 {
        if self.faults == 0 {
            return 0.0;
        }
        self.counts.data_failures as f64 / self.faults as f64
    }

    /// Total data-loss events (data failures + FWA) per fault.
    pub fn data_loss_per_fault(&self) -> f64 {
        if self.faults == 0 {
            return 0.0;
        }
        self.counts.total_data_loss() as f64 / self.faults as f64
    }

    /// IO errors per fault.
    pub fn io_errors_per_fault(&self) -> f64 {
        if self.faults == 0 {
            return 0.0;
        }
        self.counts.io_errors as f64 / self.faults as f64
    }
}

/// A campaign runner.
#[derive(Debug)]
pub struct Campaign {
    config: CampaignConfig,
    seed: u64,
}

impl Campaign {
    /// Creates a campaign; `seed` determines every trial.
    pub fn new(config: CampaignConfig, seed: u64) -> Self {
        Campaign { config, seed }
    }

    fn trial_config(&self) -> TrialConfig {
        let mut t = self.config.trial;
        t.requests = self.config.requests_per_trial;
        t
    }

    fn trial_seed(&self, index: usize) -> u64 {
        DetRng::new(self.seed).fork_index(index as u64).next_u64()
    }

    /// Runs all trials serially.
    pub fn run(&self) -> CampaignReport {
        let platform = TestPlatform::new(self.trial_config());
        let mut report = CampaignReport::empty();
        for i in 0..self.config.trials {
            let outcome = platform.run_trial(self.trial_seed(i));
            report.absorb(&outcome);
        }
        report
    }

    /// Runs all trials across `threads` worker threads. The result is
    /// bit-identical to [`Campaign::run`] for all order-insensitive
    /// aggregates (counts, means, extremes).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn run_parallel(&self, threads: usize) -> CampaignReport {
        assert!(threads > 0, "need at least one thread");
        let trial_config = self.trial_config();
        let trials = self.config.trials;
        let (tx, rx) = channel::unbounded::<CampaignReport>();
        std::thread::scope(|scope| {
            for worker in 0..threads {
                let tx = tx.clone();
                let campaign = Campaign {
                    config: self.config,
                    seed: self.seed,
                };
                scope.spawn(move || {
                    let platform = TestPlatform::new(trial_config);
                    let mut partial = CampaignReport::empty();
                    let mut i = worker;
                    while i < trials {
                        let outcome = platform.run_trial(campaign.trial_seed(i));
                        partial.absorb(&outcome);
                        i += threads;
                    }
                    tx.send(partial).expect("receiver lives in this scope");
                });
            }
        });
        drop(tx);
        let mut report = CampaignReport::empty();
        for partial in rx.iter() {
            report.merge(&partial);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfault_sim::storage::GIB;
    use pfault_workload::WorkloadSpec;

    fn tiny_config() -> CampaignConfig {
        let mut config = CampaignConfig::paper_default();
        config.trial.ssd.geometry = pfault_flash::FlashGeometry::new(1 << 14, 256);
        config.trial.ssd.ftl = pfault_ftl::FtlConfig::for_geometry(config.trial.ssd.geometry);
        config.trial.workload = WorkloadSpec::builder().wss_bytes(4 * GIB).build();
        config.trials = 6;
        config.requests_per_trial = 25;
        config
    }

    #[test]
    fn campaign_aggregates_all_trials() {
        let report = Campaign::new(tiny_config(), 5).run();
        assert_eq!(report.faults, 6);
        // The generator flows continuously, so at least the trigger
        // fraction of the nominal 25 requests was issued per trial.
        assert!(report.requests_issued >= 6 * 7);
        assert_eq!(report.responded_iops.count(), 6);
    }

    #[test]
    fn serial_and_parallel_agree() {
        let campaign = Campaign::new(tiny_config(), 11);
        let serial = campaign.run();
        let parallel = campaign.run_parallel(3);
        assert_eq!(serial.faults, parallel.faults);
        assert_eq!(serial.counts, parallel.counts);
        assert_eq!(serial.requests_issued, parallel.requests_issued);
        assert!((serial.responded_iops.mean() - parallel.responded_iops.mean()).abs() < 1e-9);
        assert_eq!(
            serial.max_failed_ack_interval_ms,
            parallel.max_failed_ack_interval_ms
        );
    }

    #[test]
    fn same_seed_reproduces() {
        let a = Campaign::new(tiny_config(), 7).run();
        let b = Campaign::new(tiny_config(), 7).run();
        assert_eq!(a.counts, b.counts);
    }

    #[test]
    fn interval_histogram_tracks_failed_requests() {
        let report = Campaign::new(tiny_config(), 9).run();
        assert_eq!(
            report.failed_ack_interval_hist.total(),
            report.failed_ack_interval_ms.count()
        );
        let parallel = Campaign::new(tiny_config(), 9).run_parallel(3);
        assert_eq!(
            parallel.failed_ack_interval_hist.total(),
            report.failed_ack_interval_hist.total()
        );
    }

    #[test]
    fn rates_divide_by_faults() {
        let report = Campaign::new(tiny_config(), 13).run();
        let expected = report.counts.data_failures as f64 / report.faults as f64;
        assert!((report.data_failures_per_fault() - expected).abs() < 1e-12);
    }
}
