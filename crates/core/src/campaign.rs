//! Fault-injection campaigns: many trials, aggregated.
//!
//! The paper's experiments each inject hundreds of faults ("more than 300
//! power faults … during 24,000 requests"). A [`Campaign`] runs one trial
//! per fault with an independent derived seed and aggregates the
//! [`FailureCounts`] into a [`CampaignReport`]. Trials are independent,
//! so the engine can distribute them: [`Campaign::run_parallel`] stripes
//! trial indices over a fixed thread count, and [`Campaign::run_stealing`]
//! schedules chunked batches over work-stealing workers
//! ([`crate::scheduler`]). Every engine reduces results in canonical
//! trial-index order, so serial, striped, and work-stealing runs of the
//! same seed produce **byte-identical** reports.
//!
//! With [`TrialConfig::warmup_requests`] set, trials start from a shared
//! warm device state. The warm-up is run once per configuration, frozen
//! as a [`pfault_ssd::DeviceImage`], memoized in the process-wide
//! [`crate::snapcache`], and copy-on-write-cloned per trial —
//! byte-identical to replaying the warm-up inline, at a fraction of the
//! cost (the clone shares the flash arena and materialises only the
//! blocks the trial touches).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::{mpsc, Arc};

use pfault_obs::Metrics;
use pfault_sim::checksum::fnv64;
use pfault_sim::stats::{Histogram, OnlineStats};
use pfault_sim::DetRng;
use pfault_ssd::DeviceImage;

use crate::analyzer::FailureCounts;
use crate::error::{CheckpointError, PlatformError, TrialError};
use crate::plan::{PlanReport, PlanSpec, PlanState};
use crate::platform::{TestPlatform, TrialConfig, TrialOutcome};
use crate::scheduler::{self, SchedulerStats};

/// Campaign configuration: a trial template plus the fault count.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Template for every trial.
    pub trial: TrialConfig,
    /// Number of fault injections (= trials).
    pub trials: usize,
    /// Requests submitted per trial (overrides `trial.requests`).
    pub requests_per_trial: usize,
}

impl CampaignConfig {
    /// The paper's §IV default: ~80 requests per fault on SSD A.
    pub fn paper_default() -> Self {
        let trial = TrialConfig::paper_default();
        CampaignConfig {
            requests_per_trial: trial.requests,
            trial,
            trials: 300,
        }
    }
}

/// Trials that produced no outcome, by terminal cause, plus the retry
/// effort the campaign spent. Indices are campaign trial indices
/// (`0..trials`), kept sorted.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrialFailures {
    /// Trials whose body panicked on every attempt.
    pub panicked: Vec<u64>,
    /// Trials that exceeded the watchdog budget on every attempt.
    pub watchdog_expired: Vec<u64>,
    /// Trials whose device bricked (never mounted again) on every attempt.
    pub bricked: Vec<u64>,
    /// Extra attempts spent across all trials (0 if nothing was retried).
    pub retries: u64,
}

impl TrialFailures {
    /// Total trials that failed terminally.
    pub fn total_failed(&self) -> usize {
        self.panicked.len() + self.watchdog_expired.len() + self.bricked.len()
    }

    pub(crate) fn record(&mut self, index: u64, error: &TrialError) {
        match error {
            TrialError::Panicked { .. } => self.panicked.push(index),
            TrialError::WatchdogExpired { .. } => self.watchdog_expired.push(index),
            TrialError::DeviceBricked { .. } => self.bricked.push(index),
        }
    }
}

/// Campaign-level observability aggregate: probe-derived counters and
/// histograms summed over every obs-enabled trial, plus per-failure-class
/// slices (the same metrics restricted to trials that exhibited that
/// class). Empty — and free — when [`TrialConfig::obs`] is off.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObsAggregate {
    /// Trials whose telemetry contributed.
    pub trials_observed: u64,
    /// Metrics summed over all observed trials.
    pub totals: Metrics,
    /// Per-failure-class telemetry: a trial's metrics are merged into the
    /// bucket of every failure class it exhibited (`data-failure`,
    /// `false-write-ack`, `io-error`, `read-only`) or into `clean` if it
    /// exhibited none. Keys are stable strings so the JSON report is
    /// self-labelled.
    pub by_class: BTreeMap<String, Metrics>,
}

impl ObsAggregate {
    /// The failure-class labels a trial's telemetry files under.
    fn classes(counts: &FailureCounts) -> Vec<&'static str> {
        let mut classes = Vec::new();
        if counts.data_failures > 0 {
            classes.push("data-failure");
        }
        if counts.fwa > 0 {
            classes.push("false-write-ack");
        }
        if counts.io_errors > 0 {
            classes.push("io-error");
        }
        if counts.read_only_devices > 0 {
            classes.push("read-only");
        }
        if classes.is_empty() {
            classes.push("clean");
        }
        classes
    }

    fn absorb(&mut self, outcome: &TrialOutcome) {
        let Some(telemetry) = &outcome.telemetry else {
            return;
        };
        self.trials_observed += 1;
        self.totals.merge(telemetry);
        for class in Self::classes(&outcome.counts) {
            self.by_class
                .entry(class.to_string())
                .or_default()
                .merge(telemetry);
        }
    }

    /// Whether no trial contributed telemetry.
    pub fn is_empty(&self) -> bool {
        self.trials_observed == 0
    }
}

/// Aggregated results of a campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Faults injected.
    pub faults: u64,
    /// Requests issued across all trials.
    pub requests_issued: u64,
    /// Requests completed across all trials.
    pub requests_completed: u64,
    /// Failure tallies across all trials.
    pub counts: FailureCounts,
    /// Distribution of per-trial responded IOPS.
    pub responded_iops: OnlineStats,
    /// Distribution of ACK→fault intervals over failed requests (ms) —
    /// the §IV-A quantity.
    pub failed_ack_interval_ms: OnlineStats,
    /// Largest observed ACK→fault interval among failed requests (ms).
    pub max_failed_ack_interval_ms: f64,
    /// Distribution of those intervals in 50 ms buckets up to 1 s (the
    /// §IV-A histogram).
    pub failed_ack_interval_hist: Histogram,
    /// Programs interrupted mid-operation across all trials.
    pub interrupted_programs: u64,
    /// Paired-page collateral corruptions across all trials.
    pub paired_corruptions: u64,
    /// Trials that ended without an outcome (panic, watchdog, brick).
    pub failures: TrialFailures,
    /// Probe-derived telemetry (empty unless trials ran with
    /// [`TrialConfig::obs`]).
    pub obs: ObsAggregate,
    /// Planner state for plan-driven runs (`None` for plain fixed
    /// loops): per-stratum tallies, round index, and current round
    /// targets. Living inside the report means checkpoint v6 persists
    /// it automatically, so adaptive campaigns pause/resume
    /// byte-identically.
    pub plan: Option<PlanState>,
}

impl CampaignReport {
    fn empty() -> Self {
        CampaignReport {
            faults: 0,
            requests_issued: 0,
            requests_completed: 0,
            counts: FailureCounts::default(),
            responded_iops: OnlineStats::new(),
            failed_ack_interval_ms: OnlineStats::new(),
            max_failed_ack_interval_ms: 0.0,
            failed_ack_interval_hist: Histogram::new(50.0, 20),
            interrupted_programs: 0,
            paired_corruptions: 0,
            failures: TrialFailures::default(),
            obs: ObsAggregate::default(),
            plan: None,
        }
    }

    fn absorb(&mut self, outcome: &TrialOutcome) {
        self.faults += 1;
        self.requests_issued += outcome.requests_issued;
        self.requests_completed += outcome.requests_completed;
        self.counts.merge(&outcome.counts);
        self.responded_iops.push(outcome.responded_iops);
        for &interval in &outcome.failed_ack_intervals_ms {
            self.failed_ack_interval_ms.push(interval);
            self.failed_ack_interval_hist.record(interval);
            if interval > self.max_failed_ack_interval_ms {
                self.max_failed_ack_interval_ms = interval;
            }
        }
        self.interrupted_programs += outcome.interrupted_programs;
        self.paired_corruptions += outcome.paired_corruptions;
        self.obs.absorb(outcome);
    }

    /// Tallies a trial that ended without an outcome. The fault was still
    /// injected (the trial ran up to and past the discharge before dying),
    /// and a bricked device is a first-class failure alongside the per-
    /// request verdicts.
    fn absorb_failure(&mut self, index: u64, error: &TrialError) {
        self.faults += 1;
        if matches!(error, TrialError::DeviceBricked { .. }) {
            self.counts.bricked_devices += 1;
        }
        self.failures.record(index, error);
    }

    /// Absorbs one trial result exactly as the serial loop does; every
    /// engine funnels results through this in canonical index order.
    fn absorb_result(&mut self, index: u64, result: Result<TrialOutcome, TrialError>, retries: u64) {
        self.failures.retries += retries;
        match result {
            Ok(outcome) => self.absorb(&outcome),
            Err(error) => self.absorb_failure(index, &error),
        }
    }

    /// Data failures (excluding FWA) per injected fault — the paper's
    /// right-hand axis in Figs 5–7 and 9.
    pub fn data_failures_per_fault(&self) -> f64 {
        if self.faults == 0 {
            return 0.0;
        }
        self.counts.data_failures as f64 / self.faults as f64
    }

    /// Total data-loss events (data failures + FWA) per fault.
    pub fn data_loss_per_fault(&self) -> f64 {
        if self.faults == 0 {
            return 0.0;
        }
        self.counts.total_data_loss() as f64 / self.faults as f64
    }

    /// IO errors per fault.
    pub fn io_errors_per_fault(&self) -> f64 {
        if self.faults == 0 {
            return 0.0;
        }
        self.counts.io_errors as f64 / self.faults as f64
    }

    /// The planner's verdict for a plan-driven run: n, p̂, intervals,
    /// and the strata breakdown. `None` for plain fixed loops.
    pub fn plan_report(&self) -> Option<PlanReport> {
        self.plan.as_ref().map(PlanState::report)
    }
}

/// On-disk snapshot of a partially completed campaign: trials
/// `0..completed` are absorbed into `report`. The identity fields pin the
/// snapshot to one (config, seed) pair so a resume cannot silently mix
/// campaigns.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CampaignCheckpoint {
    version: u32,
    config_digest: u64,
    seed: u64,
    trials: u64,
    completed: u64,
    report: CampaignReport,
}

// v3: `FailureCounts` gained `read_only_devices` and `TrialConfig` the
// recovery-storm knobs, so v2 snapshots no longer deserialize into the
// same report shape.
// v4: `FailureCounts` gained the fleet-layer tallies (`stripes_lost`,
// `degraded_reads`, `rebuilds_interrupted`), so v3 snapshots
// deserialize into a different report shape again.
// v5: `FailureCounts` gained the application-layer oracle tallies
// (`app_surfaced`, `app_masked`, `app_silent_poison`); a v4 snapshot
// resumed into a v5 campaign would silently zero-fill them, so stale
// versions are rejected loudly instead.
// v6: `CampaignReport` gained the embedded planner state (`plan`) for
// adaptive campaigns, and the config digest now covers the campaign's
// `PlanSpec` — a v5 snapshot would deserialize into a different report
// shape and lose the planner's round/tally state.
const CHECKPOINT_VERSION: u32 = 6;

/// Per-trial progress handed to a [`Campaign::run_observed`] observer
/// after the trial's result has been absorbed (and, at checkpoint
/// boundaries, after the checkpoint hit disk — so an observer that
/// persists progress can rely on the snapshot being durable first).
#[derive(Debug)]
pub struct CampaignProgress<'a> {
    /// Trials absorbed so far (`1..=trials`).
    pub completed: u64,
    /// Total trials the campaign will run.
    pub trials: u64,
    /// Whether a boundary checkpoint was written just before this call.
    pub checkpointed: bool,
    /// The report as of `completed` trials.
    pub report: &'a CampaignReport,
}

/// An observer's verdict after each trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgressSignal {
    /// Keep running trials.
    Continue,
    /// Stop after this trial. If the campaign has a checkpoint
    /// configured, the current prefix is checkpointed first, so a later
    /// [`Campaign::resume_from`] picks up exactly here.
    Pause,
}

/// Outcome of an observed run: the report so far plus whether the
/// observer paused the campaign before all trials ran.
#[derive(Debug, Clone)]
pub struct ObservedRun {
    /// The (possibly partial) aggregated report.
    pub report: CampaignReport,
    /// Trials absorbed into `report`.
    pub completed: u64,
    /// `true` iff the observer returned [`ProgressSignal::Pause`]
    /// before the final trial.
    pub paused: bool,
}

/// A campaign runner. Construct via [`Campaign::builder`] (or the
/// [`Campaign::new`] shorthand for a default single-threaded campaign).
#[derive(Debug, Clone)]
pub struct Campaign {
    config: CampaignConfig,
    plan: Option<PlanSpec>,
    seed: u64,
    retries: u32,
    checkpoint: Option<CheckpointSpec>,
    threads: usize,
    snapshot_cache: bool,
}

#[derive(Debug, Clone)]
struct CheckpointSpec {
    path: PathBuf,
    every: u64,
}

/// Builder for [`Campaign`]:
///
/// ```
/// use pfault_platform::campaign::{Campaign, CampaignConfig};
///
/// let mut config = CampaignConfig::paper_default();
/// config.trials = 2;
/// config.requests_per_trial = 10;
/// let campaign = Campaign::builder(config)
///     .seed(42)
///     .threads(2)
///     .snapshot_cache(true)
///     .build();
/// let report = campaign.run_auto().expect("campaign runs");
/// assert_eq!(report.faults, 2);
/// ```
#[derive(Debug, Clone)]
pub struct CampaignBuilder {
    config: CampaignConfig,
    plan: Option<PlanSpec>,
    seed: u64,
    retries: u32,
    checkpoint: Option<CheckpointSpec>,
    threads: usize,
    snapshot_cache: bool,
}

impl CampaignBuilder {
    /// Sizes the campaign with a [`PlanSpec`] — the single sizing
    /// surface across the workspace. `PlanSpec::fixed(n)` reproduces
    /// the classic fixed-N loop; a confidence spec makes
    /// [`Campaign::run_planned`] adaptive. The config's `trials` field
    /// is set to the plan's budget so legacy readers keep a meaningful
    /// denominator. Splitting specs are rejected at run time: whole
    /// campaigns expose only pass/fail bits, not severities.
    #[must_use]
    pub fn plan(mut self, spec: PlanSpec) -> Self {
        self.config.trials = spec.trial_budget() as usize;
        self.plan = Some(spec);
        self
    }

    /// Pre-plan sizing API, kept for one release of compatibility.
    #[deprecated(
        since = "0.2.0",
        note = "use .plan(PlanSpec::fixed(n)); the Plan API is the single way campaigns are sized"
    )]
    #[must_use]
    pub fn trials(self, n: usize) -> Self {
        self.plan(PlanSpec::fixed(n as u64))
    }
    /// Seeds every trial (defaults to 0).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Worker threads for [`Campaign::run_auto`] (default 1 = serial;
    /// clamped to ≥ 1). The thread count never changes the report — only
    /// how fast it is produced.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Retries each failing trial up to `retries` extra attempts (see
    /// [`Campaign::with_retries`]).
    #[must_use]
    pub fn retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Writes a resumable JSON checkpoint (see
    /// [`Campaign::with_checkpoint`]).
    #[must_use]
    pub fn checkpoint(mut self, path: impl Into<PathBuf>, every: u64) -> Self {
        self.checkpoint = Some(CheckpointSpec {
            path: path.into(),
            every: every.max(1),
        });
        self
    }

    /// Whether warm-up device images are served from the process-wide
    /// memoized cache (default `true`). Only meaningful when the trial
    /// configuration sets [`TrialConfig::warmup_requests`]; with the
    /// cache off, every trial replays the warm-up inline — byte-identical
    /// results, just slower.
    #[must_use]
    pub fn snapshot_cache(mut self, enabled: bool) -> Self {
        self.snapshot_cache = enabled;
        self
    }

    /// Finalizes the campaign.
    pub fn build(self) -> Campaign {
        Campaign {
            config: self.config,
            plan: self.plan,
            seed: self.seed,
            retries: self.retries,
            checkpoint: self.checkpoint,
            threads: self.threads,
            snapshot_cache: self.snapshot_cache,
        }
    }
}

impl Campaign {
    /// Starts a builder for `config` with the defaults: seed 0, serial,
    /// no retries, no checkpointing, snapshot cache on.
    pub fn builder(config: CampaignConfig) -> CampaignBuilder {
        CampaignBuilder {
            config,
            plan: None,
            seed: 0,
            retries: 0,
            checkpoint: None,
            threads: 1,
            snapshot_cache: true,
        }
    }

    /// Creates a campaign; `seed` determines every trial. Shorthand for
    /// `Campaign::builder(config).seed(seed).build()`.
    pub fn new(config: CampaignConfig, seed: u64) -> Self {
        Campaign::builder(config).seed(seed).build()
    }

    /// The configured worker-thread count ([`CampaignBuilder::threads`]).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Retries each failing trial up to `retries` extra attempts, each
    /// with a deterministically derived fresh seed. The first attempt
    /// always uses the original trial seed, so a campaign with zero
    /// failures is unaffected by this setting.
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Writes a resumable JSON checkpoint to `path` after every `every`
    /// completed trials (serial runs only; `every` is clamped to ≥ 1).
    /// The write is atomic: a temp file is renamed over `path`.
    pub fn with_checkpoint(mut self, path: impl Into<PathBuf>, every: u64) -> Self {
        self.checkpoint = Some(CheckpointSpec {
            path: path.into(),
            every: every.max(1),
        });
        self
    }

    fn trial_config(&self) -> TrialConfig {
        let mut t = self.config.trial;
        t.requests = self.config.requests_per_trial;
        t
    }

    fn trial_seed(&self, index: usize) -> u64 {
        DetRng::new(self.seed).fork_index(index as u64).next_u64()
    }

    /// Seed for attempt `attempt` of trial `index`. Attempt 0 is the
    /// original [`Campaign::trial_seed`] stream; retries fork a disjoint
    /// stream so a retried trial sees fresh (but reproducible) randomness.
    fn attempt_seed(&self, index: u64, attempt: u32) -> u64 {
        if attempt == 0 {
            return self.trial_seed(index as usize);
        }
        DetRng::new(self.seed)
            .fork("retry")
            .fork_index(index)
            .fork_index(u64::from(attempt))
            .next_u64()
    }

    /// Fingerprint of everything that shapes trial behaviour — including
    /// the plan spec, since the planner decides which trials run — used
    /// to pin checkpoints to their campaign.
    fn config_digest(&self) -> u64 {
        fnv64(format!("{:?}|plan={:?}", self.config, self.plan).as_bytes())
    }

    /// The effective sizing spec: the explicit plan, or fixed-N from
    /// the config's trial count.
    pub fn plan_spec(&self) -> PlanSpec {
        self.plan
            .unwrap_or(PlanSpec::Fixed {
                trials: self.config.trials as u64,
            })
    }

    /// The memoized warm image for this campaign, if image cloning
    /// applies (cache enabled *and* the trial configuration has a
    /// warm-up). `None` means trials build their device themselves —
    /// cold, or with an inline warm-up replay.
    fn campaign_image(&self, platform: &TestPlatform) -> Option<Arc<DeviceImage>> {
        (self.snapshot_cache && platform.config().warmup_requests > 0)
            .then(|| crate::snapcache::warm_image_for(platform))
    }

    /// Runs one trial with panic isolation and deterministic retry.
    /// Returns the outcome (or the last attempt's error) plus the number
    /// of extra attempts consumed. With a warm image, the trial clones
    /// the shared warm state copy-on-write instead of replaying the
    /// warm-up — the two paths are byte-identical (`TestPlatform`
    /// contract).
    fn run_one(
        &self,
        platform: &TestPlatform,
        image: Option<&DeviceImage>,
        index: u64,
    ) -> (Result<TrialOutcome, TrialError>, u64) {
        let mut attempt: u32 = 0;
        loop {
            let seed = self.attempt_seed(index, attempt);
            let result = panic::catch_unwind(AssertUnwindSafe(|| match image {
                Some(image) => platform.run_trial_from_image(image, seed),
                None => platform.run_trial(seed),
            }));
            let error = match result {
                Ok(Ok(outcome)) => return (Ok(outcome), u64::from(attempt)),
                Ok(Err(e)) => e,
                Err(payload) => TrialError::Panicked {
                    seed,
                    message: panic_message(payload.as_ref()),
                },
            };
            if attempt >= self.retries {
                return (Err(error), u64::from(attempt));
            }
            attempt += 1;
        }
    }

    /// Runs trials `start..trials` serially, absorbing into `report`.
    fn run_range(
        &self,
        report: CampaignReport,
        start: u64,
    ) -> Result<CampaignReport, PlatformError> {
        let run = self.run_range_observed(report, start, &mut |_| ProgressSignal::Continue)?;
        Ok(run.report)
    }

    /// The serial trial loop with an observer in it: after every trial
    /// the observer sees the absorbed prefix and may pause the campaign.
    /// Boundary checkpoints are written *before* the observer runs; a
    /// pause mid-stride checkpoints the current prefix (when configured)
    /// so nothing completed is ever lost.
    fn run_range_observed(
        &self,
        mut report: CampaignReport,
        start: u64,
        observer: &mut dyn FnMut(CampaignProgress<'_>) -> ProgressSignal,
    ) -> Result<ObservedRun, PlatformError> {
        let platform = TestPlatform::new(self.trial_config());
        let image = self.campaign_image(&platform);
        let trials = self.config.trials as u64;
        for i in start..trials {
            let (result, retries_used) = self.run_one(&platform, image.as_deref(), i);
            report.absorb_result(i, result, retries_used);
            let completed = i + 1;
            let mut checkpointed = false;
            if let Some(spec) = &self.checkpoint {
                if completed % spec.every == 0 && completed < trials {
                    self.write_checkpoint(spec, completed, &report)?;
                    checkpointed = true;
                }
            }
            let signal = observer(CampaignProgress {
                completed,
                trials,
                checkpointed,
                report: &report,
            });
            if signal == ProgressSignal::Pause && completed < trials {
                if let Some(spec) = &self.checkpoint {
                    if !checkpointed {
                        self.write_checkpoint(spec, completed, &report)?;
                    }
                }
                return Ok(ObservedRun {
                    report,
                    completed,
                    paused: true,
                });
            }
        }
        Ok(ObservedRun {
            report,
            completed: trials,
            paused: false,
        })
    }

    fn write_checkpoint(
        &self,
        spec: &CheckpointSpec,
        completed: u64,
        report: &CampaignReport,
    ) -> Result<(), CheckpointError> {
        let snapshot = CampaignCheckpoint {
            version: CHECKPOINT_VERSION,
            config_digest: self.config_digest(),
            seed: self.seed,
            trials: self.config.trials as u64,
            completed,
            report: report.clone(),
        };
        let text = serde_json::to_string(&snapshot)
            .map_err(|e| CheckpointError::Corrupt(e.to_string()))?;
        let tmp = spec.path.with_extension("tmp");
        std::fs::write(&tmp, text)?;
        std::fs::rename(&tmp, &spec.path)?;
        Ok(())
    }

    /// Runs all trials serially. Equivalent to
    /// [`Campaign::run_checked`] but panics on a checkpoint IO error.
    pub fn run(&self) -> CampaignReport {
        match self.run_checked() {
            Ok(report) => report,
            Err(e) => panic!("campaign failed: {e}"),
        }
    }

    /// Runs all trials serially. Trials that panic, exceed the watchdog
    /// budget, or brick the device are retried per
    /// [`Campaign::with_retries`] and, if still failing, recorded in
    /// [`CampaignReport::failures`] — the campaign itself keeps going.
    /// Errors only on checkpoint IO problems.
    pub fn run_checked(&self) -> Result<CampaignReport, PlatformError> {
        self.run_range(CampaignReport::empty(), 0)
    }

    /// Resumes a serial run from a checkpoint written by
    /// [`Campaign::with_checkpoint`]. The checkpoint must match this
    /// campaign's seed, trial count, and configuration; the completed
    /// prefix is taken from the snapshot and the remaining trials run
    /// normally, so the final report is identical to an uninterrupted
    /// [`Campaign::run_checked`].
    pub fn resume_from(&self, path: impl AsRef<Path>) -> Result<CampaignReport, PlatformError> {
        let snapshot = self.load_checkpoint(path.as_ref())?;
        self.run_range(snapshot.report, snapshot.completed)
    }

    /// Reads and validates a checkpoint written by this campaign.
    fn load_checkpoint(&self, path: &Path) -> Result<CampaignCheckpoint, PlatformError> {
        let text = std::fs::read_to_string(path).map_err(CheckpointError::Io)?;
        let snapshot: CampaignCheckpoint =
            serde_json::from_str(&text).map_err(|e| CheckpointError::Corrupt(e.to_string()))?;
        check_match("version", snapshot.version, CHECKPOINT_VERSION)?;
        check_match("seed", snapshot.seed, self.seed)?;
        check_match("trials", snapshot.trials, self.config.trials as u64)?;
        check_match(
            "config_digest",
            snapshot.config_digest,
            self.config_digest(),
        )?;
        if snapshot.completed > snapshot.trials {
            return Err(CheckpointError::Corrupt(format!(
                "checkpoint claims {} completed trials of {}",
                snapshot.completed, snapshot.trials
            ))
            .into());
        }
        Ok(snapshot)
    }

    /// [`Campaign::run_checked`] with a per-trial observer: after every
    /// absorbed trial (and after any boundary checkpoint has been made
    /// durable) the observer sees the prefix report and may pause the
    /// run. A paused campaign checkpoints its prefix (when configured)
    /// and reports `paused = true`; resuming it later via
    /// [`Campaign::resume_from`] / [`Campaign::resume_observed`] yields
    /// a final report byte-identical to an uninterrupted run.
    pub fn run_observed(
        &self,
        observer: &mut dyn FnMut(CampaignProgress<'_>) -> ProgressSignal,
    ) -> Result<ObservedRun, PlatformError> {
        self.run_range_observed(CampaignReport::empty(), 0, observer)
    }

    /// [`Campaign::resume_from`] with a per-trial observer (see
    /// [`Campaign::run_observed`]). Only the remaining trials run; the
    /// observer's `completed` counts include the checkpointed prefix.
    pub fn resume_observed(
        &self,
        path: impl AsRef<Path>,
        observer: &mut dyn FnMut(CampaignProgress<'_>) -> ProgressSignal,
    ) -> Result<ObservedRun, PlatformError> {
        let snapshot = self.load_checkpoint(path.as_ref())?;
        self.run_range_observed(snapshot.report, snapshot.completed, observer)
    }

    /// Trials already absorbed by the checkpoint at `path`, without
    /// running anything — daemons use this to decide where a resumed
    /// job's result stream picks up.
    pub fn checkpoint_completed(&self, path: impl AsRef<Path>) -> Result<u64, PlatformError> {
        Ok(self.load_checkpoint(path.as_ref())?.completed)
    }

    /// The checkpoint's `(completed, report)` pair, validated but not
    /// run — daemons use the report to reconstruct the progress record
    /// a crash may have kept out of their result journal.
    pub fn checkpoint_snapshot(
        &self,
        path: impl AsRef<Path>,
    ) -> Result<(u64, CampaignReport), PlatformError> {
        let snapshot = self.load_checkpoint(path.as_ref())?;
        Ok((snapshot.completed, snapshot.report))
    }

    /// Runs all trials across `threads` worker threads with static
    /// striping (worker *w* takes trials `w, w+T, w+2T, …`). `0` is
    /// treated as `1` and the count is capped at the trial count — extra
    /// threads would only spin. Results are reduced in canonical trial
    /// order, so the report is **byte-identical** to [`Campaign::run`].
    /// Checkpointing is serial-only and ignored here.
    pub fn run_parallel(&self, threads: usize) -> CampaignReport {
        let trials = self.config.trials as u64;
        let threads = (threads.max(1) as u64).min(trials.max(1)) as usize;
        let platform = TestPlatform::new(self.trial_config());
        let image = self.campaign_image(&platform);
        let (tx, rx) = mpsc::channel::<(u64, Result<TrialOutcome, TrialError>, u64)>();
        let mut report = CampaignReport::empty();
        std::thread::scope(|scope| {
            for worker in 0..threads as u64 {
                let tx = tx.clone();
                let platform = &platform;
                let image = image.as_deref();
                scope.spawn(move || {
                    let mut i = worker;
                    while i < trials {
                        let (result, retries_used) = self.run_one(platform, image, i);
                        if tx.send((i, result, retries_used)).is_err() {
                            return; // receiver gone: run torn down
                        }
                        i += threads as u64;
                    }
                });
            }
            drop(tx);
            report = reduce_in_order(&rx);
        });
        report
    }

    /// Runs all trials over work-stealing workers ([`crate::scheduler`]):
    /// trial batches start on a shared injector, idle workers steal half
    /// of a victim's queue, so skewed trial costs (retries, recovery
    /// storms) no longer leave threads idle at the tail. Byte-identical
    /// to [`Campaign::run`] and [`Campaign::run_parallel`].
    pub fn run_stealing(&self, threads: usize) -> CampaignReport {
        self.run_stealing_with_stats(threads).0
    }

    /// [`Campaign::run_stealing`], also returning the scheduler's
    /// per-worker telemetry (trials run, steals, utilization). The stats
    /// are wall-clock-dependent and live outside the report so reports
    /// stay engine-independent.
    pub fn run_stealing_with_stats(&self, threads: usize) -> (CampaignReport, SchedulerStats) {
        let trials = self.config.trials as u64;
        let platform = TestPlatform::new(self.trial_config());
        let image = self.campaign_image(&platform);
        scheduler::run_work_stealing(
            trials,
            threads.max(1),
            scheduler::DEFAULT_CHUNK,
            |i| self.run_one(&platform, image.as_deref(), i),
            CampaignReport::empty(),
            |report, i, (result, retries_used)| {
                report.absorb_result(i, result, retries_used);
            },
        )
    }

    /// Runs with the configured thread count
    /// ([`CampaignBuilder::threads`]): serial for 1 (honouring
    /// checkpoints), work-stealing otherwise. Same report either way.
    pub fn run_auto(&self) -> Result<CampaignReport, PlatformError> {
        if self.threads <= 1 {
            self.run_checked()
        } else {
            Ok(self.run_stealing(self.threads))
        }
    }

    /// Validates the plan spec for whole-campaign execution and builds
    /// the initial single-stratum planner state.
    fn planned_state(&self) -> Result<PlanState, PlatformError> {
        let spec = self.plan_spec();
        if matches!(spec, PlanSpec::Splitting { .. }) {
            return Err(PlatformError::InvalidConfig(
                "splitting plans need a severity source (plan::run_plan on a PlanPoint); \
                 whole campaigns expose only pass/fail trials"
                    .to_string(),
            ));
        }
        PlanState::single(spec)
    }

    /// Runs the campaign under its [`PlanSpec`]: trials proceed in
    /// planner-scheduled rounds and stop as soon as the spec is
    /// satisfied (for `Fixed`, after exactly N trials; for
    /// `Confidence`, once the interval on the data-loss rate is tight).
    /// Honours [`CampaignBuilder::threads`]: rounds run serially or on
    /// the work-stealing scheduler, byte-identically. The returned
    /// report carries the planner state in [`CampaignReport::plan`].
    pub fn run_planned(&self) -> Result<CampaignReport, PlatformError> {
        if self.threads <= 1 {
            return Ok(self
                .run_planned_observed(&mut |_| ProgressSignal::Continue)?
                .report);
        }
        let mut report = CampaignReport::empty();
        report.plan = Some(self.planned_state()?);
        let platform = TestPlatform::new(self.trial_config());
        let image = self.campaign_image(&platform);
        let mut completed = 0u64;
        loop {
            let Some(state) = &report.plan else {
                unreachable!("planned run always seeds report.plan");
            };
            if state.done {
                break;
            }
            let target = state.targets[0];
            let batch = target.saturating_sub(completed);
            let (results, _stats) = scheduler::run_work_stealing(
                batch,
                self.threads,
                scheduler::DEFAULT_CHUNK,
                |i| self.run_one(&platform, image.as_deref(), completed + i),
                Vec::with_capacity(batch as usize),
                |acc: &mut Vec<(Result<TrialOutcome, TrialError>, u64)>, _i, r| acc.push(r),
            );
            for (offset, (result, retries_used)) in results.into_iter().enumerate() {
                let failed = trial_failed(&result);
                report.absorb_result(completed + offset as u64, result, retries_used);
                if let Some(state) = report.plan.as_mut() {
                    state.absorb(0, failed);
                }
            }
            completed = target;
            if let Some(state) = report.plan.as_mut() {
                state.advance()?;
            }
        }
        Ok(report)
    }

    /// [`Campaign::run_planned`] with a per-trial observer — the serial
    /// planned loop, honouring checkpoints exactly like
    /// [`Campaign::run_observed`]. `CampaignProgress::trials` reports
    /// the current round target, which grows as the planner extends the
    /// run.
    pub fn run_planned_observed(
        &self,
        observer: &mut dyn FnMut(CampaignProgress<'_>) -> ProgressSignal,
    ) -> Result<ObservedRun, PlatformError> {
        let mut report = CampaignReport::empty();
        report.plan = Some(self.planned_state()?);
        self.run_planned_range_observed(report, 0, observer)
    }

    /// Resumes a planned run from a v6 checkpoint: the planner state
    /// (tallies, round index, current targets) comes back with the
    /// report, so the remaining trials — and every future allocation
    /// decision — replay exactly as the uninterrupted run would have.
    pub fn resume_planned_observed(
        &self,
        path: impl AsRef<Path>,
        observer: &mut dyn FnMut(CampaignProgress<'_>) -> ProgressSignal,
    ) -> Result<ObservedRun, PlatformError> {
        self.planned_state()?; // reject invalid specs before touching disk
        let snapshot = self.load_checkpoint(path.as_ref())?;
        if snapshot.report.plan.is_none() {
            return Err(CheckpointError::Corrupt(
                "checkpoint carries no planner state; resume with resume_observed".to_string(),
            )
            .into());
        }
        self.run_planned_range_observed(snapshot.report, snapshot.completed, observer)
    }

    /// The planned serial loop: run to the current round target, let
    /// the planner extend or finish the run at each boundary. Both the
    /// boundary decisions and the per-trial failure bits are pure
    /// functions of the absorbed prefix, so pausing anywhere — even
    /// mid-round — and resuming is byte-identical to never pausing.
    fn run_planned_range_observed(
        &self,
        mut report: CampaignReport,
        start: u64,
        observer: &mut dyn FnMut(CampaignProgress<'_>) -> ProgressSignal,
    ) -> Result<ObservedRun, PlatformError> {
        let platform = TestPlatform::new(self.trial_config());
        let image = self.campaign_image(&platform);
        let mut completed = start;
        loop {
            let Some(state) = &report.plan else {
                return Err(PlatformError::InvalidConfig(
                    "planned loop requires report.plan".to_string(),
                ));
            };
            if state.done {
                break;
            }
            let target = state.targets[0];
            if completed >= target {
                if let Some(state) = report.plan.as_mut() {
                    state.advance()?;
                }
                continue;
            }
            let (result, retries_used) = self.run_one(&platform, image.as_deref(), completed);
            let failed = trial_failed(&result);
            report.absorb_result(completed, result, retries_used);
            if let Some(state) = report.plan.as_mut() {
                state.absorb(0, failed);
                if state.round_complete() {
                    state.advance()?;
                }
            }
            completed += 1;
            let (done, trials_now) = match &report.plan {
                Some(state) => (state.done, state.targets[0].max(completed)),
                None => (true, completed),
            };
            let mut checkpointed = false;
            if let Some(spec) = &self.checkpoint {
                if completed.is_multiple_of(spec.every) && !done {
                    self.write_checkpoint(spec, completed, &report)?;
                    checkpointed = true;
                }
            }
            let signal = observer(CampaignProgress {
                completed,
                trials: trials_now,
                checkpointed,
                report: &report,
            });
            if signal == ProgressSignal::Pause && !done {
                if let Some(spec) = &self.checkpoint {
                    if !checkpointed {
                        self.write_checkpoint(spec, completed, &report)?;
                    }
                }
                return Ok(ObservedRun {
                    report,
                    completed,
                    paused: true,
                });
            }
        }
        Ok(ObservedRun {
            report,
            completed,
            paused: false,
        })
    }
}

/// The binary failure bit the planner tallies per campaign trial: any
/// data loss (data failures or FWA), or a trial that ended without an
/// outcome at all (panic, watchdog, brick).
fn trial_failed(result: &Result<TrialOutcome, TrialError>) -> bool {
    match result {
        Ok(outcome) => outcome.counts.total_data_loss() > 0,
        Err(_) => true,
    }
}

/// Absorbs `(index, result, retries)` triples in canonical index order:
/// a reorder buffer holds early arrivals until the gap fills, so the
/// accumulator sees exactly the serial absorb sequence.
fn reduce_in_order(
    rx: &mpsc::Receiver<(u64, Result<TrialOutcome, TrialError>, u64)>,
) -> CampaignReport {
    let mut report = CampaignReport::empty();
    let mut buffer: BTreeMap<u64, (Result<TrialOutcome, TrialError>, u64)> = BTreeMap::new();
    let mut next = 0u64;
    for (index, result, retries) in rx.iter() {
        buffer.insert(index, (result, retries));
        while let Some((result, retries)) = buffer.remove(&next) {
            report.absorb_result(next, result, retries);
            next += 1;
        }
    }
    for (index, (result, retries)) in buffer {
        report.absorb_result(index, result, retries);
    }
    report
}

/// Renders a `catch_unwind` payload for [`TrialError::Panicked`].
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn check_match<T>(field: &'static str, found: T, expected: T) -> Result<(), CheckpointError>
where
    T: PartialEq + std::fmt::Display,
{
    if found == expected {
        Ok(())
    } else {
        Err(CheckpointError::Mismatch {
            field,
            found: found.to_string(),
            expected: expected.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfault_sim::storage::GIB;
    use pfault_workload::WorkloadSpec;

    fn tiny_config() -> CampaignConfig {
        let mut config = CampaignConfig::paper_default();
        config.trial.ssd.geometry = pfault_flash::FlashGeometry::new(1 << 14, 256);
        config.trial.ssd.ftl = pfault_ftl::FtlConfig::for_geometry(config.trial.ssd.geometry);
        config.trial.workload = WorkloadSpec::builder().wss_bytes(4 * GIB).build();
        config.trials = 6;
        config.requests_per_trial = 25;
        config
    }

    #[test]
    fn campaign_aggregates_all_trials() {
        let report = Campaign::new(tiny_config(), 5).run();
        assert_eq!(report.faults, 6);
        // The generator flows continuously, so at least the trigger
        // fraction of the nominal 25 requests was issued per trial.
        assert!(report.requests_issued >= 6 * 7);
        assert_eq!(report.responded_iops.count(), 6);
    }

    fn report_bytes(report: &CampaignReport) -> String {
        serde_json::to_string(report).expect("report serializes")
    }

    #[test]
    fn all_engines_produce_byte_identical_reports() {
        let campaign = Campaign::builder(tiny_config()).seed(11).build();
        let serial = report_bytes(&campaign.run());
        let striped = report_bytes(&campaign.run_parallel(3));
        let stealing = report_bytes(&campaign.run_stealing(3));
        assert_eq!(serial, striped, "striped engine must match serial");
        assert_eq!(serial, stealing, "work-stealing engine must match serial");
    }

    #[test]
    fn engines_agree_with_obs_enabled() {
        let mut config = tiny_config();
        config.trial.obs = true;
        let campaign = Campaign::builder(config).seed(19).build();
        let serial = campaign.run();
        assert!(!serial.obs.is_empty(), "obs trials must contribute");
        let serial = report_bytes(&serial);
        assert_eq!(serial, report_bytes(&campaign.run_parallel(3)));
        assert_eq!(serial, report_bytes(&campaign.run_stealing(4)));
    }

    #[test]
    fn snapshot_cloning_matches_inline_warmup_byte_for_byte() {
        let mut config = tiny_config();
        config.trial.warmup_requests = 16;
        let cached = Campaign::builder(config).seed(21).snapshot_cache(true);
        let inline = cached.clone().snapshot_cache(false);
        let with_cache = report_bytes(&cached.build().run());
        let without_cache = report_bytes(&inline.build().run());
        assert_eq!(
            with_cache, without_cache,
            "snapshot restore must equal inline warm-up replay"
        );
        let stealing = report_bytes(&Campaign::builder(config).seed(21).build().run_stealing(3));
        assert_eq!(with_cache, stealing);
    }

    #[test]
    fn run_auto_dispatches_on_thread_count() {
        let serial = Campaign::builder(tiny_config()).seed(11).build();
        let threaded = Campaign::builder(tiny_config()).seed(11).threads(3).build();
        assert_eq!(serial.threads(), 1);
        assert_eq!(threaded.threads(), 3);
        let a = serial.run_auto().expect("serial auto run");
        let b = threaded.run_auto().expect("threaded auto run");
        assert_eq!(report_bytes(&a), report_bytes(&b));
    }

    #[test]
    fn new_is_a_thin_builder_delegate() {
        let a = Campaign::new(tiny_config(), 7).run();
        let b = Campaign::builder(tiny_config()).seed(7).build().run();
        assert_eq!(report_bytes(&a), report_bytes(&b));
    }

    #[test]
    fn threads_are_capped_at_trial_count() {
        // 6 trials over 64 requested threads: both engines must clamp
        // rather than spawn idle workers, and still match serial.
        let campaign = Campaign::builder(tiny_config()).seed(11).build();
        let serial = report_bytes(&campaign.run());
        assert_eq!(serial, report_bytes(&campaign.run_parallel(64)));
        let (report, stats) = campaign.run_stealing_with_stats(64);
        assert_eq!(serial, report_bytes(&report));
        assert_eq!(stats.threads, 6, "64 threads over 6 trials is 6 workers");
        assert_eq!(stats.workers.iter().map(|w| w.trials_run).sum::<u64>(), 6);
    }

    #[test]
    fn same_seed_reproduces() {
        let a = Campaign::new(tiny_config(), 7).run();
        let b = Campaign::new(tiny_config(), 7).run();
        assert_eq!(a.counts, b.counts);
    }

    #[test]
    fn interval_histogram_tracks_failed_requests() {
        let report = Campaign::new(tiny_config(), 9).run();
        assert_eq!(
            report.failed_ack_interval_hist.total(),
            report.failed_ack_interval_ms.count()
        );
        let parallel = Campaign::new(tiny_config(), 9).run_parallel(3);
        assert_eq!(
            parallel.failed_ack_interval_hist.total(),
            report.failed_ack_interval_hist.total()
        );
    }

    #[test]
    fn rates_divide_by_faults() {
        let report = Campaign::new(tiny_config(), 13).run();
        let expected = report.counts.data_failures as f64 / report.faults as f64;
        assert!((report.data_failures_per_fault() - expected).abs() < 1e-12);
    }

    #[test]
    fn one_campaign_survives_mixed_failure_classes() {
        // Per-trial event counts at seed 11 range 1249..=1600, so a
        // 1400-event budget expires some trials and spares others; the
        // spared trials then mount with a coin-flip failure rate, so a
        // single campaign mixes watchdog expiries, bricked devices, and
        // successful trials — and still completes with every affected
        // index on the ledger.
        let mut config = tiny_config();
        config.trial.watchdog = crate::platform::Watchdog {
            max_sim_time_us: None,
            max_events: Some(1400),
        };
        config.trial.ssd.mount_failure_rate = 0.5;
        config.trial.ssd.mount_retry_limit = 1;
        let campaign = Campaign::new(config, 11);
        let report = campaign.run();
        assert_eq!(report.faults, 6);
        assert!(
            !report.failures.watchdog_expired.is_empty(),
            "expected at least one watchdog expiry, got {:?}",
            report.failures
        );
        assert!(
            !report.failures.bricked.is_empty(),
            "expected at least one bricked device, got {:?}",
            report.failures
        );
        assert!(
            report.failures.total_failed() < 6,
            "expected at least one successful trial, got {:?}",
            report.failures
        );
        // No trial lands on two lists.
        let mut all: Vec<u64> = report
            .failures
            .watchdog_expired
            .iter()
            .chain(&report.failures.bricked)
            .chain(&report.failures.panicked)
            .copied()
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), report.failures.total_failed());
        let parallel = campaign.run_parallel(3);
        assert_eq!(parallel.failures, report.failures);
        assert_eq!(parallel.counts, report.counts);
    }

    #[test]
    fn zero_threads_is_clamped_to_serial() {
        let campaign = Campaign::new(tiny_config(), 11);
        let zero = campaign.run_parallel(0);
        let serial = campaign.run();
        assert_eq!(zero.faults, serial.faults);
        assert_eq!(zero.counts, serial.counts);
    }

    #[test]
    fn watchdog_expiry_is_reported_not_hung() {
        let mut config = tiny_config();
        config.trials = 3;
        config.trial.watchdog = crate::platform::Watchdog {
            max_sim_time_us: None,
            max_events: Some(10),
        };
        let report = Campaign::new(config, 3).run();
        assert_eq!(report.faults, 3);
        assert_eq!(report.failures.watchdog_expired, vec![0, 1, 2]);
        assert_eq!(report.failures.total_failed(), 3);
        assert_eq!(report.responded_iops.count(), 0);
    }

    #[test]
    fn panicking_trials_are_isolated_and_deterministic() {
        let mut config = tiny_config();
        // A zero-capacity cache fails SsdConfig validation inside the
        // trial body, so every trial panics.
        config.trial.ssd.cache.capacity_sectors = 0;
        let campaign = Campaign::new(config, 17).with_retries(2);
        let a = campaign.run();
        assert_eq!(a.faults, 6);
        assert_eq!(a.failures.panicked, vec![0, 1, 2, 3, 4, 5]);
        // 2 extra attempts per trial, all panicking.
        assert_eq!(a.failures.retries, 12);
        let b = campaign.run();
        assert_eq!(a.failures, b.failures);
        let parallel = campaign.run_parallel(3);
        assert_eq!(parallel.failures, a.failures);
    }

    #[test]
    fn bricked_devices_are_tallied_as_failures() {
        let mut config = tiny_config();
        config.trial.ssd.mount_failure_rate = 1.0;
        config.trial.ssd.mount_retry_limit = 2;
        let report = Campaign::new(config, 23).run();
        assert_eq!(report.faults, 6);
        assert_eq!(report.counts.bricked_devices, 6);
        assert_eq!(report.failures.bricked.len(), 6);
    }

    #[test]
    fn mixed_mount_failures_brick_some_trials() {
        let mut config = tiny_config();
        config.trials = 12;
        config.trial.ssd.mount_failure_rate = 0.5;
        config.trial.ssd.mount_retry_limit = 1;
        let report = Campaign::new(config, 29).run();
        let bricked = report.failures.bricked.len() as u64;
        assert_eq!(report.counts.bricked_devices, bricked);
        assert!(bricked > 0, "rate 0.5 should brick at least one of 12");
        assert!(bricked < 12, "rate 0.5 should let at least one mount");
        assert_eq!(report.responded_iops.count() + bricked, 12);
        let parallel = Campaign::new(config, 29).run_parallel(4);
        assert_eq!(parallel.failures, report.failures);
        assert_eq!(parallel.counts, report.counts);
    }

    #[test]
    fn retry_recovers_flaky_mounts() {
        let mut config = tiny_config();
        config.trial.ssd.mount_failure_rate = 0.5;
        config.trial.ssd.mount_retry_limit = 1;
        let no_retry = Campaign::new(config, 29).run();
        let with_retry = Campaign::new(config, 29).with_retries(4).run();
        assert!(no_retry.failures.bricked.len() > with_retry.failures.bricked.len());
        assert!(with_retry.failures.retries > 0);
    }

    #[test]
    fn checkpoint_resume_equals_uninterrupted_run() {
        let dir = std::env::temp_dir().join("pfault-checkpoint-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("resume.json");
        let _ = std::fs::remove_file(&path);

        let plain = Campaign::new(tiny_config(), 31).run();
        let checkpointed = Campaign::new(tiny_config(), 31).with_checkpoint(&path, 2);
        let full = checkpointed.run_checked().expect("checkpointed run");
        assert_eq!(
            serde_json::to_string(&full).unwrap(),
            serde_json::to_string(&plain).unwrap(),
            "checkpointing must not perturb the result"
        );

        // The file on disk holds a partial prefix (the last mid-run
        // snapshot); resuming from it must reproduce the full report
        // byte-for-byte.
        let resumed = checkpointed.resume_from(&path).expect("resume");
        assert_eq!(
            serde_json::to_string(&resumed).unwrap(),
            serde_json::to_string(&plain).unwrap(),
            "resumed run must equal the uninterrupted run"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_rejects_mismatched_campaign() {
        let dir = std::env::temp_dir().join("pfault-checkpoint-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("mismatch.json");
        let _ = std::fs::remove_file(&path);

        let campaign = Campaign::new(tiny_config(), 37).with_checkpoint(&path, 2);
        campaign.run_checked().expect("run");

        let wrong_seed = Campaign::new(tiny_config(), 38);
        match wrong_seed.resume_from(&path) {
            Err(PlatformError::Checkpoint(CheckpointError::Mismatch { field, .. })) => {
                assert_eq!(field, "seed");
            }
            other => panic!("expected seed mismatch, got {other:?}"),
        }

        let mut other_config = tiny_config();
        other_config.requests_per_trial += 1;
        let wrong_config = Campaign::new(other_config, 37);
        match wrong_config.resume_from(&path) {
            Err(PlatformError::Checkpoint(CheckpointError::Mismatch { field, .. })) => {
                assert_eq!(field, "config_digest");
            }
            other => panic!("expected config mismatch, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_rejects_old_checkpoint_version() {
        // Satellite: a v5-era snapshot (before the embedded planner
        // state) must be refused loudly, not misread — and every older
        // version likewise, down to v2.
        let dir = std::env::temp_dir().join("pfault-checkpoint-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("stale-version.json");
        let _ = std::fs::remove_file(&path);

        let campaign = Campaign::new(tiny_config(), 43).with_checkpoint(&path, 2);
        campaign.run_checked().expect("run");
        let text = std::fs::read_to_string(&path).expect("checkpoint written");
        assert!(text.contains("\"version\":6"), "snapshot carries v6");

        for stale in [
            "\"version\":5",
            "\"version\":4",
            "\"version\":3",
            "\"version\":2",
        ] {
            std::fs::write(&path, text.replace("\"version\":6", stale)).expect("rewrite");
            match campaign.resume_from(&path) {
                Err(PlatformError::Checkpoint(CheckpointError::Mismatch { field, .. })) => {
                    assert_eq!(field, "version");
                }
                other => panic!("expected version mismatch for {stale}, got {other:?}"),
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn observed_run_sees_every_trial_and_checkpoint_boundaries() {
        let dir = std::env::temp_dir().join("pfault-checkpoint-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("observed.json");
        let _ = std::fs::remove_file(&path);

        let campaign = Campaign::new(tiny_config(), 47).with_checkpoint(&path, 2);
        let mut seen: Vec<(u64, bool)> = Vec::new();
        let run = campaign
            .run_observed(&mut |p| {
                seen.push((p.completed, p.checkpointed));
                assert_eq!(p.trials, 6);
                assert_eq!(p.report.faults, p.completed);
                ProgressSignal::Continue
            })
            .expect("observed run");
        assert!(!run.paused);
        assert_eq!(run.completed, 6);
        assert_eq!(
            seen,
            vec![
                (1, false),
                (2, true),
                (3, false),
                (4, true),
                (5, false),
                (6, false) // final trial never checkpoints
            ]
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn paused_run_checkpoints_and_resumes_byte_identically() {
        let dir = std::env::temp_dir().join("pfault-checkpoint-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("paused.json");
        let _ = std::fs::remove_file(&path);

        let plain = Campaign::new(tiny_config(), 53).run();
        let campaign = Campaign::new(tiny_config(), 53).with_checkpoint(&path, 2);
        // Pause after trial 3 — an off-boundary stride, so the pause
        // itself must write the checkpoint.
        let run = campaign
            .run_observed(&mut |p| {
                if p.completed == 3 {
                    ProgressSignal::Pause
                } else {
                    ProgressSignal::Continue
                }
            })
            .expect("paused run");
        assert!(run.paused);
        assert_eq!(run.completed, 3);
        assert_eq!(campaign.checkpoint_completed(&path).expect("ckpt"), 3);

        let resumed = campaign
            .resume_observed(&path, &mut |p| {
                assert!(p.completed > 3, "resume must not rerun the prefix");
                ProgressSignal::Continue
            })
            .expect("resume");
        assert!(!resumed.paused);
        assert_eq!(
            serde_json::to_string(&resumed.report).unwrap(),
            serde_json::to_string(&plain).unwrap(),
            "pause/resume must equal the uninterrupted run"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn pause_at_final_trial_is_a_completion() {
        let campaign = Campaign::new(tiny_config(), 59);
        let run = campaign
            .run_observed(&mut |_| ProgressSignal::Pause)
            .expect("run");
        // No checkpoint configured: the pause after trial 1 ends the
        // run with a partial report rather than erroring.
        assert!(run.paused);
        assert_eq!(run.completed, 1);
        assert_eq!(run.report.faults, 1);
    }

    #[test]
    fn resume_rejects_corrupt_checkpoint() {
        let dir = std::env::temp_dir().join("pfault-checkpoint-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("corrupt.json");
        std::fs::write(&path, "{not json").expect("write");
        match Campaign::new(tiny_config(), 41).resume_from(&path) {
            Err(PlatformError::Checkpoint(CheckpointError::Corrupt(_))) => {}
            other => panic!("expected corrupt checkpoint, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    // ------------------------- Plan API -------------------------

    /// A confidence spec loose enough to stop at its floor on the tiny
    /// config (whose data-loss rate is high), but with a round stride
    /// that forces several planner boundaries first.
    fn loose_ci_spec() -> PlanSpec {
        PlanSpec::Confidence {
            half_width: 0.45,
            confidence: 0.9,
            exact: false,
            min_trials: 9,
            max_trials: 24,
            round: 3,
        }
    }

    #[test]
    fn fixed_plan_matches_classic_run_modulo_plan_state() {
        let classic = Campaign::builder(tiny_config()).seed(11).build().run();
        let planned = Campaign::builder(tiny_config())
            .seed(11)
            .plan(PlanSpec::fixed(6))
            .build()
            .run_planned()
            .expect("planned run");
        assert_eq!(planned.faults, classic.faults);
        assert_eq!(planned.counts, classic.counts);
        let state = planned.plan.clone().expect("planned run records state");
        assert!(state.done);
        assert_eq!(state.total_trials(), 6);
        assert_eq!(state.round, 1, "fixed plans are a single round");
        // Every tallied failure is a trial with data loss or no outcome,
        // so the tally can never exceed the trial count and must be at
        // least the terminal-failure count.
        assert!(state.total_failures() <= 6);
        assert!(state.total_failures() >= planned.failures.total_failed() as u64);
        let pr = planned.plan_report().expect("plan report");
        assert_eq!(pr.trials, 6);
        assert!(pr.wilson.covers(pr.p_hat));
    }

    #[test]
    fn planned_engines_agree_byte_for_byte() {
        let serial = Campaign::builder(tiny_config())
            .seed(13)
            .plan(loose_ci_spec())
            .build()
            .run_planned()
            .expect("serial planned");
        let stealing = Campaign::builder(tiny_config())
            .seed(13)
            .plan(loose_ci_spec())
            .threads(3)
            .build()
            .run_planned()
            .expect("stealing planned");
        assert_eq!(report_bytes(&serial), report_bytes(&stealing));
        let state = serial.plan.expect("plan state");
        assert!(state.done);
        assert_eq!(state.total_trials(), 9, "loose spec stops at its floor");
        assert_eq!(state.round, 3, "three rounds of three trials");
    }

    #[test]
    fn planned_pause_resumes_byte_identically_even_mid_round() {
        let dir = std::env::temp_dir().join("pfault-checkpoint-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("planned-pause.json");
        let _ = std::fs::remove_file(&path);

        let plain = Campaign::builder(tiny_config())
            .seed(17)
            .plan(loose_ci_spec())
            .build()
            .run_planned()
            .expect("uninterrupted planned run");

        // Pause after trial 4 — inside round 2 (rounds are 3 trials
        // wide), so resuming must pick the round back up mid-stride.
        let campaign = Campaign::builder(tiny_config())
            .seed(17)
            .plan(loose_ci_spec())
            .checkpoint(&path, 2)
            .build();
        let run = campaign
            .run_planned_observed(&mut |p| {
                if p.completed == 4 {
                    ProgressSignal::Pause
                } else {
                    ProgressSignal::Continue
                }
            })
            .expect("paused planned run");
        assert!(run.paused);
        assert_eq!(run.completed, 4);

        let resumed = campaign
            .resume_planned_observed(&path, &mut |p| {
                assert!(p.completed > 4, "resume must not rerun the prefix");
                ProgressSignal::Continue
            })
            .expect("resume planned");
        assert!(!resumed.paused);
        assert_eq!(
            report_bytes(&resumed.report),
            report_bytes(&plain),
            "planned pause/resume must equal the uninterrupted run"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn splitting_plans_are_rejected_for_whole_campaigns() {
        let campaign = Campaign::builder(tiny_config())
            .seed(19)
            .plan(PlanSpec::split(3))
            .build();
        match campaign.run_planned() {
            Err(PlatformError::InvalidConfig(why)) => {
                assert!(why.contains("severity"), "{why}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn resume_planned_rejects_plan_less_checkpoints() {
        let dir = std::env::temp_dir().join("pfault-checkpoint-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("plain-ckpt-for-planned.json");
        let _ = std::fs::remove_file(&path);

        // A plain (non-planned) paused run writes a checkpoint with no
        // planner state…
        let campaign = Campaign::new(tiny_config(), 23).with_checkpoint(&path, 2);
        let run = campaign
            .run_observed(&mut |p| {
                if p.completed == 2 {
                    ProgressSignal::Pause
                } else {
                    ProgressSignal::Continue
                }
            })
            .expect("paused plain run");
        assert!(run.paused);

        // …which the planned resume path must refuse rather than
        // invent planner state for.
        match campaign.resume_planned_observed(&path, &mut |_| ProgressSignal::Continue) {
            Err(PlatformError::Checkpoint(CheckpointError::Corrupt(why))) => {
                assert!(why.contains("planner state"), "{why}");
            }
            other => panic!("expected corrupt checkpoint, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_trials_delegates_to_fixed_plan() {
        let via_trials = Campaign::builder(tiny_config()).seed(29).trials(4).build();
        let via_plan = Campaign::builder(tiny_config())
            .seed(29)
            .plan(PlanSpec::fixed(4))
            .build();
        assert_eq!(via_trials.plan_spec(), via_plan.plan_spec());
        let a = via_trials.run_planned().expect("trials run");
        let b = via_plan.run_planned().expect("plan run");
        assert_eq!(report_bytes(&a), report_bytes(&b));
        assert_eq!(a.faults, 4);
    }
}
