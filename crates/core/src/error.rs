//! Unified error model for the test platform.
//!
//! Hand-rolled [`std::error::Error`] implementations in the style of
//! `pfault_ftl::FtlError`: every layer's failure converts losslessly into
//! [`PlatformError`], so campaign drivers and bench binaries handle one
//! type. Trial-level failures ([`TrialError`]) are *expected* outcomes of
//! a resilience-aware campaign — a watchdog firing or a device bricking
//! ends one trial, not the campaign.

use std::fmt;

/// Why one trial did not produce a [`crate::platform::TrialOutcome`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrialError {
    /// The trial exceeded its watchdog budget (simulated-time ceiling or
    /// event count) — the event loop would otherwise spin forever.
    WatchdogExpired {
        /// Seed of the offending trial.
        seed: u64,
        /// Simulated time reached when the watchdog fired, in µs.
        sim_time_us: u64,
        /// Event-loop iterations executed when the watchdog fired.
        events: u64,
    },
    /// The device failed every post-fault mount attempt and is
    /// permanently dead (the paper's worst outcome class).
    DeviceBricked {
        /// Seed of the offending trial.
        seed: u64,
        /// Mount attempts made before the firmware gave up.
        attempts: u32,
    },
    /// The trial body panicked; the campaign isolated it.
    Panicked {
        /// Seed of the offending trial.
        seed: u64,
        /// The panic payload, if it was a string.
        message: String,
    },
}

impl TrialError {
    /// The seed of the trial that failed.
    pub fn seed(&self) -> u64 {
        match self {
            TrialError::WatchdogExpired { seed, .. }
            | TrialError::DeviceBricked { seed, .. }
            | TrialError::Panicked { seed, .. } => *seed,
        }
    }
}

impl fmt::Display for TrialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrialError::WatchdogExpired {
                seed,
                sim_time_us,
                events,
            } => write!(
                f,
                "trial (seed {seed}) exceeded its watchdog budget at \
                 {sim_time_us} µs simulated after {events} events"
            ),
            TrialError::DeviceBricked { seed, attempts } => write!(
                f,
                "trial (seed {seed}): device bricked after {attempts} failed mount attempts"
            ),
            TrialError::Panicked { seed, message } => {
                write!(f, "trial (seed {seed}) panicked: {message}")
            }
        }
    }
}

impl std::error::Error for TrialError {}

/// Why a campaign checkpoint could not be written or resumed.
#[derive(Debug)]
pub enum CheckpointError {
    /// Reading or writing the checkpoint file failed.
    Io(std::io::Error),
    /// The file exists but does not parse as a checkpoint of the
    /// supported version.
    Corrupt(String),
    /// The checkpoint was taken by a campaign with a different
    /// configuration, seed, or trial count.
    Mismatch {
        /// Which field disagreed.
        field: &'static str,
        /// Value recorded in the checkpoint.
        found: String,
        /// Value the resuming campaign expects.
        expected: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::Corrupt(why) => write!(f, "corrupt checkpoint: {why}"),
            CheckpointError::Mismatch {
                field,
                found,
                expected,
            } => write!(
                f,
                "checkpoint {field} mismatch: checkpoint has {found}, campaign expects {expected}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            CheckpointError::Corrupt(_) | CheckpointError::Mismatch { .. } => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Top-level error for campaign drivers and bench binaries.
#[derive(Debug)]
pub enum PlatformError {
    /// A trial failed terminally (after any configured retries).
    Trial(TrialError),
    /// Checkpointing or resuming failed.
    Checkpoint(CheckpointError),
    /// A configuration was rejected before any trial ran.
    InvalidConfig(String),
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::Trial(e) => write!(f, "{e}"),
            PlatformError::Checkpoint(e) => write!(f, "{e}"),
            PlatformError::InvalidConfig(why) => write!(f, "invalid configuration: {why}"),
        }
    }
}

impl std::error::Error for PlatformError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlatformError::Trial(e) => Some(e),
            PlatformError::Checkpoint(e) => Some(e),
            PlatformError::InvalidConfig(_) => None,
        }
    }
}

impl From<TrialError> for PlatformError {
    fn from(e: TrialError) -> Self {
        PlatformError::Trial(e)
    }
}

impl From<CheckpointError> for PlatformError {
    fn from(e: CheckpointError) -> Self {
        PlatformError::Checkpoint(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn displays_are_informative() {
        let w = TrialError::WatchdogExpired {
            seed: 7,
            sim_time_us: 1_000,
            events: 42,
        };
        assert!(w.to_string().contains("seed 7"));
        assert!(w.to_string().contains("42 events"));
        let b = TrialError::DeviceBricked {
            seed: 9,
            attempts: 3,
        };
        assert!(b.to_string().contains("bricked"));
        assert_eq!(b.seed(), 9);
    }

    #[test]
    fn sources_chain() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let p = PlatformError::from(CheckpointError::from(io));
        assert!(p.source().is_some());
        assert!(p.to_string().contains("gone"));
    }

    #[test]
    fn mismatch_reports_both_sides() {
        let e = CheckpointError::Mismatch {
            field: "seed",
            found: "1".into(),
            expected: "2".into(),
        };
        let s = e.to_string();
        assert!(s.contains("seed") && s.contains('1') && s.contains('2'));
    }
}
