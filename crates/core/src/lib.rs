//! `pfault-platform` — the paper's fault-injection and failure-detection
//! platform.
//!
//! This crate is the reproduction's primary contribution (paper §III): it
//! wires the simulated hardware (SSD device, PSU/Arduino fault injector)
//! to the software parts — **Scheduler**, **IO Generator**, **Analyzer** —
//! and runs fault-injection *campaigns* that classify every request into
//! the paper's three failure types:
//!
//! * **data failure** — the request completed (ACK received) but reads
//!   back as neither the written data nor the pre-issue data (garbage,
//!   unreadable, or partially applied);
//! * **FWA** (False Write-Acknowledge) — the request completed but the
//!   target range still holds exactly its pre-issue content: the write was
//!   acknowledged and never happened;
//! * **IO error** — the request never completed (issued while or after the
//!   device vanished in the discharge).
//!
//! The classification follows §III-B's `completed` / `notApplied` flag
//! logic, fed by the block-layer tracer (`pfault-trace`) and per-sector
//! checksum comparison against the platform's expected-state oracle.
//!
//! # Layers
//!
//! * [`oracle`] — expected device contents (last-ACKed write per sector);
//! * [`record`] — per-request bookkeeping (Fig 2 header fields);
//! * [`platform`] — [`platform::TestPlatform`]: runs a single trial
//!   (workload → scheduled fault → discharge → recovery → verification);
//! * [`analyzer`] — post-recovery classification;
//! * [`campaign`] — many trials, serial or multi-threaded, aggregated into
//!   a [`campaign::CampaignReport`];
//! * [`experiments`] — one pre-configured experiment per paper
//!   table/figure, producing printable report tables.
//!
//! # Example
//!
//! ```
//! use pfault_platform::campaign::{Campaign, CampaignConfig};
//! use pfault_platform::plan::PlanSpec;
//!
//! let mut config = CampaignConfig::paper_default();
//! config.requests_per_trial = 20;
//! let report = Campaign::builder(config)
//!     .plan(PlanSpec::fixed(3)) // 3 fault injections
//!     .seed(42)
//!     .build()
//!     .run();
//! assert_eq!(report.faults, 3);
//! assert!(report.requests_issued > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The lint gate (`make lint`) denies unwrap() in library code; tests may
// unwrap freely.
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod analyzer;
pub mod campaign;
pub mod chart;
pub mod error;
pub mod experiments;
pub mod oracle;
pub mod plan;
pub mod platform;
pub mod record;
pub mod report;
pub mod scheduler;
pub mod snapcache;
pub mod sweep;

pub use analyzer::{FailureKind, RequestVerdict};
pub use campaign::{
    Campaign, CampaignBuilder, CampaignConfig, CampaignProgress, CampaignReport, ObsAggregate,
    ObservedRun, ProgressSignal, TrialFailures,
};
pub use error::{CheckpointError, PlatformError, TrialError};
pub use experiments::{EngineArg, Experiment, ExperimentCtx, ExperimentOpts, ExperimentReport};
pub use plan::{Interval, PlanEngine, PlanPoint, PlanReport, PlanSpec, PlanState, Planner};
pub use platform::{TestPlatform, TrialConfig, TrialOutcome, Watchdog};
pub use scheduler::{SchedulerStats, WorkerStats};
pub use snapcache::{SnapshotCache, SnapshotCacheBuilder, SnapshotCacheStats, StatsScope};
pub use sweep::{
    IoOp, MinimalRepro, Phase, SweepConfig, SweepReport, Sweeper, Violation, ViolationKind,
};
