//! Per-request bookkeeping — the platform's copy of the Fig 2 header.

use pfault_flash::array::PageData;
use pfault_sim::SimTime;
use pfault_workload::DataPacket;

/// A request's life-cycle record on the platform side.
#[derive(Debug, Clone)]
pub struct RequestRecord {
    /// The generated packet (size, address, payload identity).
    pub packet: DataPacket,
    /// Content of each target sector *before* this request was issued
    /// (`None` = never written) — the Fig 2 "initial checksum".
    pub pre_issue: Vec<Option<PageData>>,
    /// When the request was queued at the block layer.
    pub queued_at: SimTime,
    /// When the host received the ACK for the whole request, if it did.
    pub acked_at: Option<SimTime>,
    /// Sub-requests acknowledged so far.
    pub subs_acked: u32,
    /// Sub-requests that errored.
    pub subs_errored: u32,
    /// Total sub-requests.
    pub sub_count: u32,
}

impl RequestRecord {
    /// Creates a record at queue time.
    pub fn new(
        packet: DataPacket,
        pre_issue: Vec<Option<PageData>>,
        sub_count: u32,
        queued_at: SimTime,
    ) -> Self {
        RequestRecord {
            packet,
            pre_issue,
            queued_at,
            acked_at: None,
            subs_acked: 0,
            subs_errored: 0,
            sub_count,
        }
    }

    /// Registers one sub-request ACK; sets `acked_at` when the last one
    /// lands (the paper's "ACK received in the application layer").
    pub fn note_sub_ack(&mut self, at: SimTime) {
        self.subs_acked += 1;
        if self.subs_acked >= self.sub_count && self.acked_at.is_none() {
            self.acked_at = Some(at);
        }
    }

    /// Registers one sub-request device error.
    pub fn note_sub_error(&mut self) {
        self.subs_errored += 1;
    }

    /// Whether the host saw the whole request complete.
    pub fn completed(&self) -> bool {
        self.acked_at.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfault_sim::{Lba, SectorCount};

    fn packet() -> DataPacket {
        DataPacket {
            id: 1,
            lba: Lba::new(0),
            sectors: SectorCount::new(4),
            is_write: true,
            arrival: SimTime::ZERO,
            payload_tag: 9,
        }
    }

    #[test]
    fn ack_completes_after_all_subs() {
        let mut r = RequestRecord::new(packet(), vec![None; 4], 2, SimTime::ZERO);
        assert!(!r.completed());
        r.note_sub_ack(SimTime::from_millis(1));
        assert!(!r.completed());
        r.note_sub_ack(SimTime::from_millis(3));
        assert!(r.completed());
        assert_eq!(r.acked_at, Some(SimTime::from_millis(3)));
    }

    #[test]
    fn errors_do_not_complete() {
        let mut r = RequestRecord::new(packet(), vec![None; 4], 2, SimTime::ZERO);
        r.note_sub_ack(SimTime::from_millis(1));
        r.note_sub_error();
        assert!(!r.completed());
        assert_eq!(r.subs_errored, 1);
    }
}
