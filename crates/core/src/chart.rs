//! ASCII chart rendering for experiment output.
//!
//! The paper presents its results as grouped bar charts with a per-fault
//! ratio line; [`BarChart`] renders the same structure in plain text so
//! `repro` output reads like the figures:
//!
//! ```text
//! read %  |
//!      0  |############################ 791
//!     20  |######################- 640
//! ```

/// One labelled group of bars.
#[derive(Debug, Clone)]
pub struct BarGroup {
    /// X-axis label of this group.
    pub label: String,
    /// One value per series, in series order.
    pub values: Vec<f64>,
}

/// A horizontal grouped bar chart.
///
/// # Example
///
/// ```
/// use pfault_platform::chart::BarChart;
///
/// let mut chart = BarChart::new("Fig X", ["data failures", "FWA"]);
/// chart.push("4 KiB", [10.0, 40.0]);
/// chart.push("1 MiB", [5.0, 8.0]);
/// let text = chart.render(30);
/// assert!(text.contains("4 KiB"));
/// assert!(text.contains('#'));
/// ```
#[derive(Debug, Clone)]
pub struct BarChart {
    title: String,
    series: Vec<String>,
    groups: Vec<BarGroup>,
}

/// Fill glyph per series (cycled when there are more series than glyphs).
const GLYPHS: [char; 4] = ['#', '=', '*', '+'];

impl BarChart {
    /// Creates a chart with the given title and series names.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(title: &str, series: I) -> Self {
        BarChart {
            title: title.to_string(),
            series: series.into_iter().map(Into::into).collect(),
            groups: Vec::new(),
        }
    }

    /// Appends one group of bars.
    ///
    /// # Panics
    ///
    /// Panics if the value count differs from the series count.
    pub fn push<S: Into<String>, I: IntoIterator<Item = f64>>(&mut self, label: S, values: I) {
        let values: Vec<f64> = values.into_iter().collect();
        assert_eq!(
            values.len(),
            self.series.len(),
            "one value per series required"
        );
        self.groups.push(BarGroup {
            label: label.into(),
            values,
        });
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether the chart has no groups.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Renders the chart with bars scaled to `width` characters at the
    /// maximum value.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn render(&self, width: usize) -> String {
        assert!(width > 0, "chart width must be positive");
        let max = self
            .groups
            .iter()
            .flat_map(|g| g.values.iter().copied())
            .fold(0.0f64, f64::max)
            .max(f64::MIN_POSITIVE);
        let label_width = self
            .groups
            .iter()
            .map(|g| g.label.len())
            .max()
            .unwrap_or(0)
            .max(4);
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        // Legend.
        for (i, name) in self.series.iter().enumerate() {
            out.push_str(&format!("  {} {}\n", GLYPHS[i % GLYPHS.len()], name));
        }
        for group in &self.groups {
            for (i, &value) in group.values.iter().enumerate() {
                let bar = ((value / max) * width as f64).round() as usize;
                let label = if i == 0 { group.label.as_str() } else { "" };
                out.push_str(&format!(
                    "{label:>label_width$} |{}{} {:.4}\n",
                    String::from(GLYPHS[i % GLYPHS.len()]).repeat(bar),
                    " ".repeat(width - bar.min(width)),
                    value,
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> BarChart {
        let mut c = BarChart::new("demo", ["a", "b"]);
        c.push("x", [10.0, 20.0]);
        c.push("y", [0.0, 5.0]);
        c
    }

    #[test]
    fn renders_scaled_bars() {
        let text = chart().render(20);
        // Max value (20.0) gets the full width.
        assert!(text.contains(&"=".repeat(20)), "{text}");
        // Half the max gets half the width.
        assert!(text.contains(&"#".repeat(10)), "{text}");
        assert!(text.contains("demo"));
        assert!(text.lines().count() >= 7); // title + legend(2) + 4 bars
    }

    #[test]
    fn zero_values_render_empty_bars() {
        let text = chart().render(10);
        assert!(text.contains("0.0000"));
    }

    #[test]
    fn handles_all_zero_charts() {
        let mut c = BarChart::new("flat", ["only"]);
        c.push("p", [0.0]);
        let text = c.render(10);
        assert!(text.contains("flat"));
        assert!(!c.is_empty());
        assert_eq!(c.len(), 1);
    }

    #[test]
    #[should_panic(expected = "one value per series required")]
    fn rejects_ragged_groups() {
        let mut c = BarChart::new("bad", ["a", "b"]);
        c.push("x", [1.0]);
    }

    #[test]
    #[should_panic(expected = "chart width must be positive")]
    fn rejects_zero_width() {
        chart().render(0);
    }
}
