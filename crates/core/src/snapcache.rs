//! Memoized warm device images, instance-scoped or process-wide.
//!
//! Every trial under one `(TrialConfig, vendor)` pair shares the same
//! configuration-derived warm-up, so its [`pfault_ssd::DeviceImage`] is
//! a pure function of
//! [`crate::platform::TestPlatform::config_digest`]. A
//! [`SnapshotCache`] runs the warm-up once per digest and hands every
//! subsequent caller — including workers on other threads, and later
//! campaigns in the same process — a shared `Arc` of the frozen image;
//! trials [`pfault_ssd::DeviceImage::clone_cow`] it, which shares the
//! flash arena instead of deep-copying the device.
//!
//! The campaign engines use the [`global`] instance so separate
//! campaigns in one process share warm-ups. Harnesses that need
//! different retention policy build their own:
//!
//! ```
//! use pfault_platform::snapcache::SnapshotCache;
//!
//! let cache = SnapshotCache::builder()
//!     .capacity(4)          // keep at most 4 configurations (FIFO)
//!     .delta_chaining(true) // store derived images as deltas
//!     .build();
//! # let _ = cache;
//! ```
//!
//! With `delta_chaining` on, an inserted image that *evolved from* an
//! already-cached one (sweep points sharing a warm prefix) is stored as
//! [`pfault_ssd::DeviceImage::delta_from`] — one shared arena plus a
//! small overlay of differing blocks — instead of a second flattened
//! copy.
//!
//! Capture happens *while holding the lock* on purpose: concurrent
//! workers asking for the same configuration then wait for the one
//! warm-up instead of each replaying it. Because of that, a panicking
//! trial (the campaign engine runs each trial under `catch_unwind`) can
//! poison the mutex. Cache contents stay valid across such a panic —
//! entries are only ever inserted whole — so every lock site *recovers*
//! from poisoning instead of propagating it;
//! [`SnapshotCacheStats::poison_recoveries`] counts how often that
//! happened.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use serde::{Deserialize, Serialize};

use pfault_ssd::DeviceImage;

use crate::platform::TestPlatform;

/// Counters for one [`SnapshotCache`]. Monotonic (except across
/// [`SnapshotCache::reset`]), so benchmarks measure deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to run the warm-up.
    pub misses: u64,
    /// Distinct configurations currently cached.
    pub entries: u64,
    /// Entries dropped by the FIFO capacity bound.
    pub evictions: u64,
    /// Entries stored as deltas over an earlier image
    /// (`delta_chaining` only).
    pub delta_images: u64,
    /// Times a lock acquisition found the mutex poisoned by a panicked
    /// trial and recovered it.
    pub poison_recoveries: u64,
}

impl SnapshotCacheStats {
    /// Hits over total lookups (0.0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }

    /// The monotonic counters since `baseline` (saturating, so a
    /// concurrent [`SnapshotCache::reset`] yields zeros rather than
    /// wrapping). `entries` is instantaneous, not a delta.
    pub fn delta_since(&self, baseline: &SnapshotCacheStats) -> SnapshotCacheStats {
        SnapshotCacheStats {
            hits: self.hits.saturating_sub(baseline.hits),
            misses: self.misses.saturating_sub(baseline.misses),
            entries: self.entries,
            evictions: self.evictions.saturating_sub(baseline.evictions),
            delta_images: self.delta_images.saturating_sub(baseline.delta_images),
            poison_recoveries: self
                .poison_recoveries
                .saturating_sub(baseline.poison_recoveries),
        }
    }
}

/// A scoped view over one cache's counters: captures a baseline when
/// opened and reports only what happened since. Daemon-hosted jobs each
/// open a scope so their reports attribute hits/misses to *that* job
/// instead of accumulating process-wide drift across every job the
/// daemon ever ran.
///
/// Scoped hit/miss attribution is *digest-deduplicated*: while a scope
/// is open the cache journals each lookup's digest, and the scope
/// counts a miss only the **first** time it sees a digest. A
/// planner-driven multi-round job whose warm image gets evicted between
/// rounds (capacity pressure from concurrent jobs) re-warms a
/// configuration it already paid for — from the job's point of view
/// that is a hit on its own working set, not a fresh miss, and before
/// this dedup such jobs over-reported misses round after round. The
/// cumulative [`SnapshotCache::stats`] counters are unaffected.
#[derive(Debug)]
pub struct StatsScope<'a> {
    cache: &'a SnapshotCache,
    baseline: SnapshotCacheStats,
    journal_start: usize,
}

impl StatsScope<'_> {
    /// Counter deltas since the scope opened (see
    /// [`SnapshotCacheStats::delta_since`]), with hits/misses taken
    /// from the scope's deduplicated lookup journal.
    pub fn delta(&self) -> SnapshotCacheStats {
        let mut delta = self.cache.stats().delta_since(&self.baseline);
        let state = self.cache.lock();
        let slice = state.journal.get(self.journal_start..).unwrap_or(&[]);
        let mut seen: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let mut hits = 0u64;
        let mut misses = 0u64;
        for &(digest, was_hit) in slice {
            let repeat = !seen.insert(digest);
            if was_hit || repeat {
                hits += 1;
            } else {
                misses += 1;
            }
        }
        delta.hits = hits;
        delta.misses = misses;
        delta
    }

    /// The baseline captured when the scope opened.
    pub fn baseline(&self) -> SnapshotCacheStats {
        self.baseline
    }
}

impl Drop for StatsScope<'_> {
    fn drop(&mut self) {
        // Last scope out clears the journal so an idle cache holds no
        // lookup history.
        if self.cache.active_scopes.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.cache.lock().journal.clear();
        }
    }
}

/// Configures a [`SnapshotCache`]. Obtained from
/// [`SnapshotCache::builder`]; every knob is optional.
#[derive(Debug, Clone)]
pub struct SnapshotCacheBuilder {
    capacity: Option<usize>,
    delta_chaining: bool,
}

impl SnapshotCacheBuilder {
    /// Retain at most `n` configurations, evicting the oldest insertion
    /// first. Unbounded by default.
    #[must_use]
    pub fn capacity(mut self, n: usize) -> Self {
        self.capacity = Some(n.max(1));
        self
    }

    /// Store an inserted image as a delta over an already-cached image
    /// it evolved from, sharing one flash arena across the chain. Off
    /// by default: campaign trials restore fastest from a flattened
    /// image (empty overlay), so chaining is a memory-for-speed trade
    /// meant for wide sweeps.
    #[must_use]
    pub fn delta_chaining(mut self, enabled: bool) -> Self {
        self.delta_chaining = enabled;
        self
    }

    /// Builds the cache.
    pub fn build(self) -> SnapshotCache {
        SnapshotCache {
            state: Mutex::new(CacheState::default()),
            capacity: self.capacity,
            delta_chaining: self.delta_chaining,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            delta_images: AtomicU64::new(0),
            poison_recoveries: AtomicU64::new(0),
            active_scopes: AtomicU64::new(0),
        }
    }
}

#[derive(Default)]
struct CacheState {
    entries: HashMap<u64, Arc<DeviceImage>>,
    /// Insertion order: FIFO eviction victims and delta-base candidates.
    order: Vec<u64>,
    /// `(digest, was_hit)` per lookup, recorded only while at least one
    /// [`StatsScope`] is open (and cleared when the last one closes) —
    /// the raw material for deduplicated scoped attribution.
    journal: Vec<(u64, bool)>,
}

/// A digest-keyed memo of warm [`DeviceImage`]s. See the module docs.
pub struct SnapshotCache {
    state: Mutex<CacheState>,
    capacity: Option<usize>,
    delta_chaining: bool,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    delta_images: AtomicU64,
    poison_recoveries: AtomicU64,
    /// Open [`StatsScope`]s; lookups are journalled only while > 0.
    active_scopes: AtomicU64,
}

impl std::fmt::Debug for SnapshotCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotCache")
            .field("capacity", &self.capacity)
            .field("delta_chaining", &self.delta_chaining)
            .field("stats", &self.stats())
            .finish()
    }
}

impl Default for SnapshotCache {
    fn default() -> Self {
        SnapshotCache::builder().build()
    }
}

impl SnapshotCache {
    /// Starts configuring a cache: unbounded, no delta chaining.
    pub fn builder() -> SnapshotCacheBuilder {
        SnapshotCacheBuilder {
            capacity: None,
            delta_chaining: false,
        }
    }

    /// Locks the state, recovering from a mutex poisoned by a panicked
    /// trial: images are inserted whole under the lock, so the map is
    /// structurally sound even when the panic interrupted a warm-up —
    /// at worst the interrupted digest is simply absent and re-warms.
    fn lock(&self) -> MutexGuard<'_, CacheState> {
        self.state.lock().unwrap_or_else(|poisoned| {
            self.poison_recoveries.fetch_add(1, Ordering::Relaxed);
            poisoned.into_inner()
        })
    }

    /// The image for `digest`, running `build` (under the lock) on the
    /// first request and memoizing the result for every later caller.
    /// The core primitive behind [`SnapshotCache::warm_image_for`];
    /// exposed for harnesses that derive images some other way (e.g. a
    /// sweep extending one warm prefix).
    pub fn image_for(&self, digest: u64, build: impl FnOnce() -> DeviceImage) -> Arc<DeviceImage> {
        let mut state = self.lock();
        let journalling = self.active_scopes.load(Ordering::SeqCst) > 0;
        if let Some(image) = state.entries.get(&digest).map(Arc::clone) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            if journalling {
                state.journal.push((digest, true));
            }
            return image;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        if journalling {
            state.journal.push((digest, false));
        }
        let image = build();
        let stored = match self.delta_base_for(&state, &image) {
            Some(delta) => {
                self.delta_images.fetch_add(1, Ordering::Relaxed);
                Arc::new(delta)
            }
            None => Arc::new(image),
        };
        state.entries.insert(digest, Arc::clone(&stored));
        state.order.push(digest);
        if let Some(cap) = self.capacity {
            while state.order.len() > cap {
                let oldest = state.order.remove(0);
                state.entries.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        stored
    }

    /// With `delta_chaining` on, finds the newest cached image `image`
    /// can be re-expressed against and returns the delta (images that
    /// share no history reject the rebase, so probing an unrelated
    /// candidate costs one prefix comparison).
    fn delta_base_for(&self, state: &CacheState, image: &DeviceImage) -> Option<DeviceImage> {
        if !self.delta_chaining {
            return None;
        }
        state
            .order
            .iter()
            .rev()
            .filter_map(|d| state.entries.get(d))
            .find_map(|base| image.delta_from(base))
    }

    /// The warm image for this platform's configuration, running the
    /// warm-up on first request. Callers gate on `warmup_requests > 0`
    /// themselves — a zero-warm-up image is legal but pointless (it is
    /// just a cold device).
    pub fn warm_image_for(&self, platform: &TestPlatform) -> Arc<DeviceImage> {
        self.image_for(platform.config_digest(), || platform.warm_image())
    }

    /// Current counters.
    pub fn stats(&self) -> SnapshotCacheStats {
        let entries = self.lock().entries.len() as u64;
        SnapshotCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
            evictions: self.evictions.load(Ordering::Relaxed),
            delta_images: self.delta_images.load(Ordering::Relaxed),
            poison_recoveries: self.poison_recoveries.load(Ordering::Relaxed),
        }
    }

    /// Opens a [`StatsScope`] over this cache: a handle whose
    /// [`StatsScope::delta`] reports only activity after this call,
    /// with repeat lookups of the same digest attributed as hits.
    pub fn scope(&self) -> StatsScope<'_> {
        self.active_scopes.fetch_add(1, Ordering::SeqCst);
        let journal_start = self.lock().journal.len();
        StatsScope {
            cache: self,
            baseline: self.stats(),
            journal_start,
        }
    }

    /// Drops every cached image and zeroes the counters (benchmark
    /// harnesses use this to isolate phases).
    pub fn reset(&self) {
        let mut state = self.lock();
        state.entries.clear();
        state.order.clear();
        state.journal.clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.delta_images.store(0, Ordering::Relaxed);
        self.poison_recoveries.store(0, Ordering::Relaxed);
    }
}

static GLOBAL: OnceLock<SnapshotCache> = OnceLock::new();

/// The process-wide cache the campaign engines share: unbounded, no
/// delta chaining (flattened images restore fastest).
pub fn global() -> &'static SnapshotCache {
    GLOBAL.get_or_init(SnapshotCache::default)
}

/// [`SnapshotCache::warm_image_for`] on the [`global`] cache.
pub fn warm_image_for(platform: &TestPlatform) -> Arc<DeviceImage> {
    global().warm_image_for(platform)
}

/// [`SnapshotCache::stats`] of the [`global`] cache.
pub fn stats() -> SnapshotCacheStats {
    global().stats()
}

/// [`SnapshotCache::reset`] on the [`global`] cache.
pub fn reset() {
    global().reset()
}

/// [`SnapshotCache::scope`] on the [`global`] cache — the per-job
/// attribution handle for daemon-hosted campaigns.
pub fn scope() -> StatsScope<'static> {
    global().scope()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::TrialConfig;

    fn warm_platform(warmup: usize) -> TestPlatform {
        let mut c = TrialConfig::paper_default();
        c.ssd.geometry = pfault_flash::FlashGeometry::new(1 << 14, 256);
        c.ssd.ftl = pfault_ftl::FtlConfig::for_geometry(c.ssd.geometry);
        c.workload = pfault_workload::WorkloadSpec::builder()
            .wss_bytes(4 * pfault_sim::storage::GIB)
            .build();
        TestPlatform::new(c.with_warmup_requests(warmup))
    }

    #[test]
    fn same_config_shares_one_image() {
        let platform = warm_platform(16);
        let a = warm_image_for(&platform);
        let b = warm_image_for(&platform);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit the cache");
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn different_configs_get_different_images() {
        let a = warm_image_for(&warm_platform(16));
        let b = warm_image_for(&warm_platform(17));
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(a.config_digest(), b.config_digest());
    }

    #[test]
    fn cached_image_matches_a_fresh_capture() {
        let platform = warm_platform(18);
        let cached = warm_image_for(&platform);
        assert_eq!(cached.fingerprint(), platform.warm_image().fingerprint());
    }

    #[test]
    fn capacity_bound_evicts_oldest_first() {
        let cache = SnapshotCache::builder().capacity(2).build();
        let old = warm_platform(11);
        let mid = warm_platform(12);
        let new = warm_platform(13);
        let _ = cache.warm_image_for(&old);
        let _ = cache.warm_image_for(&mid);
        let _ = cache.warm_image_for(&new); // evicts `old`
        let before = cache.stats();
        assert_eq!(before.entries, 2);
        assert_eq!(before.evictions, 1);
        let _ = cache.warm_image_for(&mid); // still cached
        let _ = cache.warm_image_for(&old); // re-warms
        let after = cache.stats();
        assert_eq!(after.hits, before.hits + 1);
        assert_eq!(after.misses, before.misses + 1);
    }

    #[test]
    fn delta_chaining_stores_derived_images_as_deltas() {
        use pfault_ssd::device::HostCommand;
        use pfault_sim::{Lba, SectorCount, SimDuration};

        let cache = SnapshotCache::builder().delta_chaining(true).build();
        let platform = warm_platform(20);
        let base = cache.warm_image_for(&platform);

        // A "later sweep point": more work on a clone of the base.
        let derived = cache.image_for(base.config_digest() ^ 1, || {
            let mut ssd = base.clone_cow();
            for i in 0..4 {
                ssd.submit(HostCommand::write(
                    500 + i,
                    0,
                    Lba::new(4096 + i * 8),
                    SectorCount::new(8),
                    0x5EED + i,
                ));
                ssd.advance_to(ssd.now() + SimDuration::from_millis(2));
                ssd.drain_completions();
            }
            ssd.quiesce();
            let digest = ssd.state_digest();
            let image = ssd.capture(base.config_digest() ^ 1);
            assert_eq!(image.fingerprint(), digest);
            image
        });
        assert!(
            derived.shares_base_with(&base),
            "a derived image must be chained onto the base arena"
        );
        assert!(derived.overlay_blocks() > 0);
        assert_eq!(cache.stats().delta_images, 1);

        // An unrelated config cannot chain and stays flattened.
        let other = cache.warm_image_for(&warm_platform(21));
        assert_eq!(other.overlay_blocks(), 0);
        assert_eq!(cache.stats().delta_images, 1);
    }

    #[test]
    fn poisoned_lock_recovers_and_later_campaigns_complete() {
        use crate::campaign::{Campaign, CampaignConfig};

        // An active cache with a live entry…
        let platform = warm_platform(21);
        let first = warm_image_for(&platform);

        // …poisoned by a panic while the lock is held — what a trial
        // dying mid-capture under the campaign's catch_unwind does.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = global().state.lock().unwrap_or_else(|e| e.into_inner());
            panic!("trial died while capturing a warm image");
        }));

        // Every lock site must recover instead of propagating: lookups
        // still serve the intact entry, stats still read, and the
        // recovery is counted.
        let again = warm_image_for(&platform);
        assert!(
            Arc::ptr_eq(&first, &again),
            "poison recovery must keep serving the cached image"
        );
        assert!(
            stats().poison_recoveries >= 1,
            "recoveries must be counted: {:?}",
            stats()
        );

        // And an image-cached campaign run after the poisoning — the
        // "rest of the campaign" from the cache's point of view — still
        // completes with every trial accounted for.
        let mut config = CampaignConfig::paper_default();
        config.trial.ssd.geometry = pfault_flash::FlashGeometry::new(1 << 14, 256);
        config.trial.ssd.ftl = pfault_ftl::FtlConfig::for_geometry(config.trial.ssd.geometry);
        config.trial.workload = pfault_workload::WorkloadSpec::builder()
            .wss_bytes(4 * pfault_sim::storage::GIB)
            .build();
        config.trial = config.trial.with_warmup_requests(8);
        config.trials = 3;
        config.requests_per_trial = 20;
        let report = Campaign::new(config, 31).run();
        assert_eq!(report.faults, 3);
        assert_eq!(
            report.failures.total_failed(),
            0,
            "campaign after a poisoned cache must still complete: {:?}",
            report.failures
        );
    }

    #[test]
    fn scoped_stats_attribute_only_their_own_lookups() {
        let cache = SnapshotCache::default();
        // "Job A" warms two configurations.
        let _ = cache.warm_image_for(&warm_platform(31));
        let _ = cache.warm_image_for(&warm_platform(32));
        assert_eq!(cache.stats().misses, 2, "job A cost two warm-ups");

        // "Job B" opens a scope: its view starts at zero even though
        // the cache already has history.
        let scope = cache.scope();
        assert_eq!(scope.delta().hits, 0);
        assert_eq!(scope.delta().misses, 0);
        let _ = cache.warm_image_for(&warm_platform(31)); // hit (A's entry)
        let _ = cache.warm_image_for(&warm_platform(33)); // miss (new)
        let d = scope.delta();
        assert_eq!(d.hits, 1, "job B saw exactly one hit: {d:?}");
        assert_eq!(d.misses, 1, "job B saw exactly one miss: {d:?}");
        // The cumulative counters kept their drift.
        assert_eq!(cache.stats().misses, 3);
        assert_eq!(scope.baseline().misses, 2);
    }

    #[test]
    fn scoped_rounds_do_not_recount_rewarmed_configs_as_misses() {
        // Regression: a planner-driven multi-round job re-looks-up its
        // warm image every round. If capacity pressure evicted it
        // between rounds, the re-warm is a *global* miss — but within
        // the job's scope it is a repeat of a digest the job already
        // paid for, and must be attributed as a hit.
        let cache = SnapshotCache::builder().capacity(1).build();
        let round_cfg = warm_platform(41);
        let rival_cfg = warm_platform(42);

        let scope = cache.scope();
        let _ = cache.warm_image_for(&round_cfg); // round 1: fresh miss
        let _ = cache.warm_image_for(&rival_cfg); // rival job evicts it
        let _ = cache.warm_image_for(&round_cfg); // round 2: re-warm
        let _ = cache.warm_image_for(&round_cfg); // round 3: true hit

        let d = scope.delta();
        assert_eq!(
            d.misses, 2,
            "one fresh miss per distinct config, not per round: {d:?}"
        );
        assert_eq!(
            d.hits, 2,
            "the round-2 re-warm counts as a hit in the scope: {d:?}"
        );
        // The cumulative counters still tell the global truth.
        let s = cache.stats();
        assert_eq!(s.misses, 3, "globally the re-warm was a real miss");
        assert_eq!(s.hits, 1);
        assert_eq!(s.evictions, 2);
        drop(scope);

        // With every scope closed the journal is discarded.
        assert!(cache.lock().journal.is_empty());
    }

    #[test]
    fn scope_survives_a_concurrent_reset() {
        let cache = SnapshotCache::default();
        let _ = cache.warm_image_for(&warm_platform(34));
        let scope = cache.scope();
        cache.reset();
        // Counters went backwards; the delta saturates at zero instead
        // of wrapping to u64::MAX.
        let d = scope.delta();
        assert_eq!(d.hits, 0);
        assert_eq!(d.misses, 0);
    }

    #[test]
    fn hit_rate_is_a_fraction() {
        let platform = warm_platform(19);
        let _ = warm_image_for(&platform);
        let _ = warm_image_for(&platform);
        let s = stats();
        assert!(s.hits >= 1, "second lookup counted as a hit: {s:?}");
        assert!(s.entries >= 1);
        assert!((0.0..=1.0).contains(&s.hit_rate()));
    }
}
