//! Process-wide memoized warm snapshots.
//!
//! Every trial under one `(TrialConfig, vendor)` pair shares the same
//! configuration-derived warm-up, so its [`pfault_ssd::SsdSnapshot`] is a
//! pure function of [`crate::platform::TestPlatform::config_digest`].
//! This cache runs the warm-up once per digest and hands every
//! subsequent caller — including workers on other threads, and later
//! campaigns in the same process — a shared `Arc` of the snapshot.
//!
//! Restoring never mutates the snapshot, so shared access is safe; the
//! cache itself is a mutex around a digest-keyed map. Capture happens
//! *while holding the lock* on purpose: concurrent workers asking for
//! the same configuration then wait for the one warm-up instead of each
//! replaying it.
//!
//! Because capture runs under the lock, a panicking trial (the campaign
//! engine runs each trial under `catch_unwind`) can poison the mutex.
//! Cache contents stay valid across such a panic — entries are only
//! ever inserted whole — so every lock site *recovers* from poisoning
//! instead of propagating it; [`SnapshotCacheStats::poison_recoveries`]
//! counts how often that happened.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use serde::{Deserialize, Serialize};

use pfault_ssd::SsdSnapshot;

use crate::platform::TestPlatform;

static CACHE: OnceLock<Mutex<HashMap<u64, Arc<SsdSnapshot>>>> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static POISON_RECOVERIES: AtomicU64 = AtomicU64::new(0);

/// Hit/miss counters for the process-wide snapshot cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to run the warm-up.
    pub misses: u64,
    /// Distinct configurations currently cached.
    pub entries: u64,
    /// Times a lock acquisition found the mutex poisoned by a panicked
    /// trial and recovered it.
    pub poison_recoveries: u64,
}

impl SnapshotCacheStats {
    /// Hits over total lookups (0.0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

fn cache() -> &'static Mutex<HashMap<u64, Arc<SsdSnapshot>>> {
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Locks the cache, recovering from a mutex poisoned by a panicked
/// trial: snapshots are inserted whole under the lock, so the map is
/// structurally sound even when the panic interrupted a warm-up — at
/// worst the interrupted digest is simply absent and will re-warm.
fn lock_cache() -> MutexGuard<'static, HashMap<u64, Arc<SsdSnapshot>>> {
    cache().lock().unwrap_or_else(|poisoned| {
        POISON_RECOVERIES.fetch_add(1, Ordering::Relaxed);
        poisoned.into_inner()
    })
}

/// The warm snapshot for this platform's configuration, running the
/// warm-up on first request and memoizing it for every later caller.
/// Callers gate on `warmup_requests > 0` themselves — a zero-warm-up
/// snapshot is legal but pointless (it is just a cold device).
pub fn warm_snapshot_for(platform: &TestPlatform) -> Arc<SsdSnapshot> {
    let digest = platform.config_digest();
    let mut map = lock_cache();
    if let Some(snapshot) = map.get(&digest) {
        HITS.fetch_add(1, Ordering::Relaxed);
        return Arc::clone(snapshot);
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    let snapshot = Arc::new(platform.warm_snapshot());
    map.insert(digest, Arc::clone(&snapshot));
    snapshot
}

/// Current cache counters. Counters are process-global and monotonic
/// (except across [`reset`]), so benchmarks measure deltas.
pub fn stats() -> SnapshotCacheStats {
    let entries = lock_cache().len() as u64;
    SnapshotCacheStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        entries,
        poison_recoveries: POISON_RECOVERIES.load(Ordering::Relaxed),
    }
}

/// Drops every cached snapshot and zeroes the counters (benchmark
/// harnesses use this to isolate phases).
pub fn reset() {
    let mut map = lock_cache();
    map.clear();
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
    POISON_RECOVERIES.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::TrialConfig;

    fn warm_platform(warmup: usize) -> TestPlatform {
        let mut c = TrialConfig::paper_default();
        c.ssd.geometry = pfault_flash::FlashGeometry::new(1 << 14, 256);
        c.ssd.ftl = pfault_ftl::FtlConfig::for_geometry(c.ssd.geometry);
        c.workload = pfault_workload::WorkloadSpec::builder()
            .wss_bytes(4 * pfault_sim::storage::GIB)
            .build();
        TestPlatform::new(c.with_warmup_requests(warmup))
    }

    #[test]
    fn same_config_shares_one_snapshot() {
        let platform = warm_platform(16);
        let a = warm_snapshot_for(&platform);
        let b = warm_snapshot_for(&platform);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit the cache");
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn different_configs_get_different_snapshots() {
        let a = warm_snapshot_for(&warm_platform(16));
        let b = warm_snapshot_for(&warm_platform(17));
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(a.config_digest(), b.config_digest());
    }

    #[test]
    fn cached_snapshot_matches_a_fresh_capture() {
        let platform = warm_platform(18);
        let cached = warm_snapshot_for(&platform);
        assert_eq!(cached.fingerprint(), platform.warm_snapshot().fingerprint());
    }

    #[test]
    fn poisoned_lock_recovers_and_later_campaigns_complete() {
        use crate::campaign::{Campaign, CampaignConfig};

        // An active cache with a live entry…
        let platform = warm_platform(21);
        let first = warm_snapshot_for(&platform);

        // …poisoned by a panic while the lock is held — what a trial
        // dying mid-capture under the campaign's catch_unwind does.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = cache().lock().unwrap_or_else(|e| e.into_inner());
            panic!("trial died while capturing a warm snapshot");
        }));

        // Every lock site must recover instead of propagating: lookups
        // still serve the intact entry, stats still read, and the
        // recovery is counted.
        let again = warm_snapshot_for(&platform);
        assert!(
            Arc::ptr_eq(&first, &again),
            "poison recovery must keep serving the cached snapshot"
        );
        assert!(
            stats().poison_recoveries >= 1,
            "recoveries must be counted: {:?}",
            stats()
        );

        // And a snapshot-cached campaign run after the poisoning — the
        // "rest of the campaign" from the cache's point of view — still
        // completes with every trial accounted for.
        let mut config = CampaignConfig::paper_default();
        config.trial.ssd.geometry = pfault_flash::FlashGeometry::new(1 << 14, 256);
        config.trial.ssd.ftl = pfault_ftl::FtlConfig::for_geometry(config.trial.ssd.geometry);
        config.trial.workload = pfault_workload::WorkloadSpec::builder()
            .wss_bytes(4 * pfault_sim::storage::GIB)
            .build();
        config.trial = config.trial.with_warmup_requests(8);
        config.trials = 3;
        config.requests_per_trial = 20;
        let report = Campaign::new(config, 31).run();
        assert_eq!(report.faults, 3);
        assert_eq!(
            report.failures.total_failed(),
            0,
            "campaign after a poisoned cache must still complete: {:?}",
            report.failures
        );
    }

    #[test]
    fn hit_rate_is_a_fraction() {
        let platform = warm_platform(19);
        let _ = warm_snapshot_for(&platform);
        let _ = warm_snapshot_for(&platform);
        let s = stats();
        assert!(s.hits >= 1, "second lookup counted as a hit: {s:?}");
        assert!(s.entries >= 1);
        assert!((0.0..=1.0).contains(&s.hit_rate()));
    }
}
