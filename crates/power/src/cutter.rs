//! High-speed transistor cutter — the prior-work baseline.
//!
//! Zheng et al. \[12\] and Tseng et al. \[18\] cut SSD power with power
//! transistors, dropping the rail in microseconds. The paper argues this is
//! unrealistic: real outages go through the PSU discharge ramp, giving the
//! firmware a brownout window. This module models the transistor rig so the
//! ablation benches can contrast the two injectors.

use pfault_sim::{SimDuration, SimTime};

use crate::volts::Millivolts;

/// A transistor-based power cutter with a microsecond-order fall time.
///
/// # Example
///
/// ```
/// use pfault_power::cutter::TransistorCutter;
/// use pfault_power::Millivolts;
/// use pfault_sim::{SimDuration, SimTime};
///
/// let mut cutter = TransistorCutter::new();
/// cutter.cut(SimTime::from_millis(1));
/// // 100 µs later the rail is already dead.
/// let v = cutter.rail_voltage(SimTime::from_millis(1) + SimDuration::from_micros(100));
/// assert_eq!(v, Millivolts::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransistorCutter {
    fall_time: SimDuration,
    cut_at: Option<SimTime>,
}

impl TransistorCutter {
    /// A cutter with the ~50 µs fall time reported for the prior rigs.
    pub fn new() -> Self {
        TransistorCutter {
            fall_time: SimDuration::from_micros(50),
            cut_at: None,
        }
    }

    /// A cutter with an explicit fall time.
    pub fn with_fall_time(fall_time: SimDuration) -> Self {
        TransistorCutter {
            fall_time,
            cut_at: None,
        }
    }

    /// Rail fall time.
    pub fn fall_time(&self) -> SimDuration {
        self.fall_time
    }

    /// Cuts power at `now`.
    pub fn cut(&mut self, now: SimTime) {
        if self.cut_at.is_none() {
            self.cut_at = Some(now);
        }
    }

    /// Restores power.
    pub fn restore(&mut self) {
        self.cut_at = None;
    }

    /// Whether the rail is currently cut.
    pub fn is_cut(&self) -> bool {
        self.cut_at.is_some()
    }

    /// Rail voltage at `now`: linear ramp from 5 V to 0 over the fall
    /// time.
    pub fn rail_voltage(&self, now: SimTime) -> Millivolts {
        let Some(t0) = self.cut_at else {
            return Millivolts::new(5000);
        };
        let elapsed = now.saturating_since(t0);
        if elapsed >= self.fall_time {
            return Millivolts::ZERO;
        }
        let frac = elapsed.as_micros() as f64 / self.fall_time.as_micros() as f64;
        Millivolts::new((5000.0 * (1.0 - frac)).round() as u32)
    }

    /// Duration from cut to `threshold` (linear ramp inversion).
    pub fn time_to_voltage(&self, threshold: Millivolts) -> SimDuration {
        if threshold >= Millivolts::new(5000) {
            return SimDuration::ZERO;
        }
        let frac = 1.0 - f64::from(threshold.get()) / 5000.0;
        SimDuration::from_micros((self.fall_time.as_micros() as f64 * frac).round() as u64)
    }
}

impl Default for TransistorCutter {
    fn default() -> Self {
        TransistorCutter::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fall_is_microseconds_not_milliseconds() {
        let mut c = TransistorCutter::new();
        c.cut(SimTime::ZERO);
        assert_eq!(c.rail_voltage(SimTime::from_micros(50)), Millivolts::ZERO);
    }

    #[test]
    fn ramp_is_linear() {
        let mut c = TransistorCutter::with_fall_time(SimDuration::from_micros(100));
        c.cut(SimTime::ZERO);
        assert_eq!(
            c.rail_voltage(SimTime::from_micros(50)),
            Millivolts::new(2500)
        );
    }

    #[test]
    fn threshold_times_are_tiny_compared_to_psu() {
        let c = TransistorCutter::new();
        let host = c.time_to_voltage(Millivolts::new(4500));
        let core = c.time_to_voltage(Millivolts::new(2500));
        assert!(host.as_micros() <= 10);
        assert!(core.as_micros() <= 30);
        // The whole brownout window is tens of µs — no time for firmware.
        assert!((core - host).as_micros() < 50);
    }

    #[test]
    fn restore_brings_rail_back() {
        let mut c = TransistorCutter::new();
        c.cut(SimTime::ZERO);
        assert!(c.is_cut());
        c.restore();
        assert!(!c.is_cut());
        assert_eq!(c.rail_voltage(SimTime::from_secs(1)), Millivolts::new(5000));
    }
}
