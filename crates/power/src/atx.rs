//! ATX supply with `PS_ON` control semantics.
//!
//! The paper switches the SSD's supply through pin 16 of the ATX connector
//! (`PS_ON`, active low): driving it high (+5 V) commands the supply off
//! (§III-A2). [`AtxSupply`] tracks the pin state over simulated time and
//! exposes the resulting rail voltage via the discharge model.

use pfault_sim::{SimDuration, SimTime};

use crate::psu::PsuModel;
use crate::volts::Millivolts;

/// Logic level on the `PS_ON` pin. Active low: [`PsOn::Low`] keeps the
/// supply running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PsOn {
    /// Pin pulled low: supply on (normal operation).
    Low,
    /// Pin driven high (+5 V): supply commanded off.
    High,
}

/// An ATX supply: a discharge model plus `PS_ON` state.
///
/// # Example
///
/// ```
/// use pfault_power::atx::{AtxSupply, PsOn};
/// use pfault_power::Millivolts;
/// use pfault_sim::{SimDuration, SimTime};
///
/// let mut psu = AtxSupply::loaded();
/// let t0 = SimTime::from_millis(100);
/// assert_eq!(psu.rail_voltage(t0), Millivolts::new(5000));
/// psu.set_ps_on(PsOn::High, t0); // command off
/// let later = t0 + SimDuration::from_millis(40);
/// assert!(psu.rail_voltage(later) <= Millivolts::new(4500));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AtxSupply {
    model: PsuModel,
    /// Instant the supply was commanded off, if it is off.
    cut_at: Option<SimTime>,
}

impl AtxSupply {
    /// A supply driving one SSD (Fig 4b calibration).
    pub fn loaded() -> Self {
        AtxSupply {
            model: PsuModel::atx_loaded(),
            cut_at: None,
        }
    }

    /// An unloaded supply (Fig 4a calibration).
    pub fn unloaded() -> Self {
        AtxSupply {
            model: PsuModel::atx_unloaded(),
            cut_at: None,
        }
    }

    /// A supply with a custom discharge model.
    pub fn with_model(model: PsuModel) -> Self {
        AtxSupply {
            model,
            cut_at: None,
        }
    }

    /// The underlying discharge model.
    pub fn model(&self) -> PsuModel {
        self.model
    }

    /// Applies a `PS_ON` level at `now`.
    ///
    /// Driving high starts the discharge; driving low restores the rail
    /// instantly (the paper power-cycles between injections).
    pub fn set_ps_on(&mut self, level: PsOn, now: SimTime) {
        match level {
            PsOn::High => {
                if self.cut_at.is_none() {
                    self.cut_at = Some(now);
                }
            }
            PsOn::Low => {
                self.cut_at = None;
            }
        }
    }

    /// Whether the supply is currently commanded off.
    pub fn is_cut(&self) -> bool {
        self.cut_at.is_some()
    }

    /// The instant the supply was commanded off, if any.
    pub fn cut_at(&self) -> Option<SimTime> {
        self.cut_at
    }

    /// Rail voltage at `now`.
    pub fn rail_voltage(&self, now: SimTime) -> Millivolts {
        match self.cut_at {
            None => self.model.nominal(),
            Some(t0) => self.model.voltage_after(now.saturating_since(t0)),
        }
    }

    /// Instant at which the rail crosses `threshold`, given the current
    /// cut state. `None` while the supply is on.
    pub fn crossing_time(&self, threshold: Millivolts) -> Option<SimTime> {
        self.cut_at
            .map(|t0| t0 + self.model.time_to_voltage(threshold))
    }

    /// Convenience: duration from cut to `threshold`.
    pub fn time_to_voltage(&self, threshold: Millivolts) -> SimDuration {
        self.model.time_to_voltage(threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::psu::HOST_LOSS_MV;

    #[test]
    fn supply_on_holds_nominal() {
        let psu = AtxSupply::loaded();
        assert!(!psu.is_cut());
        assert_eq!(
            psu.rail_voltage(SimTime::from_secs(100)),
            Millivolts::new(5000)
        );
        assert_eq!(psu.crossing_time(HOST_LOSS_MV), None);
    }

    #[test]
    fn cut_starts_discharge_from_cut_instant() {
        let mut psu = AtxSupply::loaded();
        let t0 = SimTime::from_millis(500);
        psu.set_ps_on(PsOn::High, t0);
        assert!(psu.is_cut());
        assert_eq!(psu.cut_at(), Some(t0));
        // Before the cut instant the saturating elapsed is zero → nominal.
        assert_eq!(
            psu.rail_voltage(SimTime::from_millis(400)),
            Millivolts::new(5000)
        );
        let cross = psu.crossing_time(HOST_LOSS_MV).unwrap();
        assert!(cross > t0);
        assert!(psu.rail_voltage(cross) <= HOST_LOSS_MV);
    }

    #[test]
    fn repeated_high_does_not_restart_discharge() {
        let mut psu = AtxSupply::loaded();
        let t0 = SimTime::from_millis(100);
        psu.set_ps_on(PsOn::High, t0);
        psu.set_ps_on(PsOn::High, SimTime::from_millis(200));
        assert_eq!(psu.cut_at(), Some(t0));
    }

    #[test]
    fn low_restores_power() {
        let mut psu = AtxSupply::loaded();
        psu.set_ps_on(PsOn::High, SimTime::from_millis(100));
        psu.set_ps_on(PsOn::Low, SimTime::from_secs(2));
        assert!(!psu.is_cut());
        assert_eq!(
            psu.rail_voltage(SimTime::from_secs(3)),
            Millivolts::new(5000)
        );
    }
}
