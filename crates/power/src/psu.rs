//! ATX PSU capacitor discharge model (paper Fig 4).
//!
//! After the supply is commanded off, the 5 V rail decays exponentially
//! through the load: `V(t) = 5 V · exp(−t/τ)`. The time constants are
//! calibrated against the paper's oscilloscope traces:
//!
//! * **loaded** (one SSD attached, Fig 4b): 4.5 V at ≈40 ms and
//!   effectively zero (< 0.5 V) at ≈900 ms → τ ≈ 380 ms;
//! * **unloaded** (Fig 4a): fully discharged within ≈1400 ms → τ ≈ 608 ms.
//!
//! The model is analytic, so threshold-crossing instants are computed in
//! closed form rather than by stepping — the event-driven platform
//! schedules directly on them.

use serde::{Deserialize, Serialize};

use pfault_sim::SimDuration;

use crate::volts::Millivolts;

/// Voltage below which the paper treats the rail as "purely discharged".
pub const DISCHARGED_MV: Millivolts = Millivolts::new(500);

/// Voltage at which the host loses the SATA link to the SSD (§III-A2:
/// "the SSD becomes unavailable … when the voltage drops to 4.5 V").
pub const HOST_LOSS_MV: Millivolts = Millivolts::new(4500);

/// Voltage at which the controller's brownout detector fires and holds the
/// chip in reset: an operation in flight when the rail crosses this level
/// is interrupted. SATA power is specified at 5 V ± 5 %; consumer
/// controllers reset about a millisecond after the rail leaves the band,
/// so firmware without power-loss protection gets almost no grace beyond
/// the host-link loss.
pub const FLASH_UNRELIABLE_MV: Millivolts = Millivolts::new(4490);

/// Voltage below which the SSD controller and flash core stop operating.
/// Between [`HOST_LOSS_MV`] and this, the firmware races the discharge.
pub const CORE_DEATH_MV: Millivolts = Millivolts::new(2500);

/// Exponential-discharge PSU model.
///
/// # Example
///
/// ```
/// use pfault_power::psu::PsuModel;
/// use pfault_power::Millivolts;
/// use pfault_sim::SimDuration;
///
/// let psu = PsuModel::atx_loaded();
/// // Fig 4b: the rail crosses 4.5 V about 40 ms after the cut…
/// let t = psu.time_to_voltage(Millivolts::new(4500));
/// assert!((35.0..45.0).contains(&t.as_millis_f64()));
/// // …and is effectively discharged around 900 ms.
/// let d = psu.discharge_duration();
/// assert!((850.0..950.0).contains(&d.as_millis_f64()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PsuModel {
    nominal: Millivolts,
    /// Discharge time constant τ, in microseconds.
    tau_us: f64,
}

impl PsuModel {
    /// The paper's ATX supply driving one SSD (Fig 4b).
    pub fn atx_loaded() -> Self {
        // τ chosen so V crosses 4.5 V at 40 ms: τ = 40 ms / ln(5/4.5).
        PsuModel {
            nominal: Millivolts::new(5000),
            tau_us: 40_000.0 / (5.0f64 / 4.5).ln(),
        }
    }

    /// The paper's ATX supply with no load (Fig 4a): full discharge takes
    /// ≈1400 ms.
    pub fn atx_unloaded() -> Self {
        // τ = 1400 ms / ln(5 V / 0.5 V).
        PsuModel {
            nominal: Millivolts::new(5000),
            tau_us: 1_400_000.0 / 10.0f64.ln(),
        }
    }

    /// A custom model from nominal voltage and time constant.
    ///
    /// # Panics
    ///
    /// Panics if `tau` is zero.
    pub fn with_tau(nominal: Millivolts, tau: SimDuration) -> Self {
        assert!(!tau.is_zero(), "time constant must be positive");
        PsuModel {
            nominal,
            tau_us: tau.as_micros() as f64,
        }
    }

    /// Nominal rail voltage.
    pub fn nominal(&self) -> Millivolts {
        self.nominal
    }

    /// The discharge time constant τ.
    pub fn tau(&self) -> SimDuration {
        SimDuration::from_micros(self.tau_us.round() as u64)
    }

    /// Rail voltage `elapsed` after the cut.
    pub fn voltage_after(&self, elapsed: SimDuration) -> Millivolts {
        let v = f64::from(self.nominal.get()) * (-(elapsed.as_micros() as f64) / self.tau_us).exp();
        Millivolts::new(v.round() as u32)
    }

    /// Time after the cut at which the rail falls to `threshold`.
    /// Returns [`SimDuration::ZERO`] if the threshold is at or above
    /// nominal.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero (an exponential never reaches it).
    pub fn time_to_voltage(&self, threshold: Millivolts) -> SimDuration {
        assert!(threshold.get() > 0, "exponential decay never reaches 0mV");
        if threshold >= self.nominal {
            return SimDuration::ZERO;
        }
        let ratio = f64::from(self.nominal.get()) / f64::from(threshold.get());
        SimDuration::from_micros((self.tau_us * ratio.ln()).round() as u64)
    }

    /// Time to the "purely discharged" level ([`DISCHARGED_MV`]).
    pub fn discharge_duration(&self) -> SimDuration {
        self.time_to_voltage(DISCHARGED_MV)
    }

    /// Samples the discharge curve every `step` until discharged — the
    /// series plotted in Fig 4.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero.
    pub fn discharge_trace(&self, step: SimDuration) -> Vec<(SimDuration, Millivolts)> {
        assert!(!step.is_zero(), "trace step must be positive");
        let end = self.discharge_duration();
        let mut out = Vec::new();
        let mut t = SimDuration::ZERO;
        loop {
            out.push((t, self.voltage_after(t)));
            if t >= end {
                break;
            }
            t += step;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loaded_curve_matches_fig4b() {
        let psu = PsuModel::atx_loaded();
        assert_eq!(psu.voltage_after(SimDuration::ZERO), Millivolts::new(5000));
        let at_host_loss = psu.time_to_voltage(HOST_LOSS_MV);
        assert!(
            (38.0..42.0).contains(&at_host_loss.as_millis_f64()),
            "host loss at {at_host_loss}"
        );
        let discharged = psu.discharge_duration();
        assert!(
            (850.0..950.0).contains(&discharged.as_millis_f64()),
            "discharged at {discharged}"
        );
    }

    #[test]
    fn unloaded_curve_matches_fig4a() {
        let psu = PsuModel::atx_unloaded();
        let discharged = psu.discharge_duration();
        assert!(
            (1_380.0..1_420.0).contains(&discharged.as_millis_f64()),
            "discharged at {discharged}"
        );
        // Unloaded discharge is slower than loaded everywhere.
        let loaded = PsuModel::atx_loaded();
        for ms in [10u64, 100, 500] {
            let d = SimDuration::from_millis(ms);
            assert!(psu.voltage_after(d) > loaded.voltage_after(d));
        }
    }

    #[test]
    fn voltage_is_monotone_decreasing() {
        let psu = PsuModel::atx_loaded();
        let mut prev = psu.voltage_after(SimDuration::ZERO);
        for ms in (10..1_000).step_by(10) {
            let v = psu.voltage_after(SimDuration::from_millis(ms));
            assert!(v <= prev);
            prev = v;
        }
    }

    #[test]
    fn crossing_time_inverts_voltage() {
        let psu = PsuModel::atx_loaded();
        for mv in [4500u32, 3000, 2500, 1000] {
            let t = psu.time_to_voltage(Millivolts::new(mv));
            let v = psu.voltage_after(t);
            let err = i64::from(v.get()) - i64::from(mv);
            assert!(err.abs() <= 5, "inversion error {err}mV at {mv}mV");
        }
    }

    #[test]
    fn threshold_above_nominal_is_immediate() {
        let psu = PsuModel::atx_loaded();
        assert_eq!(
            psu.time_to_voltage(Millivolts::new(6000)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn core_outlives_host_link() {
        let psu = PsuModel::atx_loaded();
        let host = psu.time_to_voltage(HOST_LOSS_MV);
        let core = psu.time_to_voltage(CORE_DEATH_MV);
        // The brownout race window is large — hundreds of ms.
        assert!((core - host).as_millis_f64() > 150.0);
    }

    #[test]
    fn trace_covers_full_discharge() {
        let psu = PsuModel::atx_loaded();
        let trace = psu.discharge_trace(SimDuration::from_millis(100));
        assert!(trace.len() >= 9);
        assert_eq!(trace[0].1, Millivolts::new(5000));
        assert!(trace.last().unwrap().1 <= DISCHARGED_MV);
    }

    #[test]
    #[should_panic(expected = "never reaches 0mV")]
    fn zero_threshold_rejected() {
        PsuModel::atx_loaded().time_to_voltage(Millivolts::ZERO);
    }
}
