//! Voltage newtype.

use core::fmt;

use serde::{Deserialize, Serialize};

/// A voltage in millivolts.
///
/// # Example
///
/// ```
/// use pfault_power::Millivolts;
///
/// let v = Millivolts::new(4500);
/// assert_eq!(v.as_volts(), 4.5);
/// assert!(v < Millivolts::new(5000));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Millivolts(u32);

impl Millivolts {
    /// Zero volts.
    pub const ZERO: Millivolts = Millivolts(0);

    /// Creates a voltage from millivolts.
    pub const fn new(mv: u32) -> Self {
        Millivolts(mv)
    }

    /// The raw millivolt count.
    pub const fn get(self) -> u32 {
        self.0
    }

    /// The voltage in volts.
    pub fn as_volts(self) -> f64 {
        f64::from(self.0) / 1000.0
    }
}

impl fmt::Display for Millivolts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}V", self.as_volts())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_and_ordering() {
        assert_eq!(Millivolts::new(5000).as_volts(), 5.0);
        assert!(Millivolts::new(2500) < Millivolts::new(4500));
        assert_eq!(Millivolts::ZERO.get(), 0);
    }

    #[test]
    fn display_in_volts() {
        assert_eq!(Millivolts::new(4500).to_string(), "4.50V");
    }
}
