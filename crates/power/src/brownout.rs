//! Transient voltage sags ("brownouts") — an extension beyond the paper.
//!
//! The paper injects only complete outages (the rail discharges to zero
//! and the drive is power-cycled). Data-centre power incidents also
//! include *sags*: the rail dips for tens of milliseconds and recovers.
//! Whether a sag is harmless, drops the host link, or resets the
//! controller depends on how deep it goes relative to the same thresholds
//! that structure the full-outage timeline ([`crate::psu`]).
//!
//! A [`BrownoutEvent`] is a symmetric V-shaped dip: linear sag from
//! nominal to `floor` over `sag`, then linear recovery over `recovery`.

use serde::{Deserialize, Serialize};

use pfault_sim::{SimDuration, SimTime};

use crate::psu::{CORE_DEATH_MV, FLASH_UNRELIABLE_MV, HOST_LOSS_MV};
use crate::volts::Millivolts;

/// How badly a sag of a given depth hurts an attached SSD.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BrownoutSeverity {
    /// Floor stays above the host-loss threshold: invisible to the stack.
    Harmless,
    /// The SATA link drops (in-flight commands error) but the controller
    /// rides it out: no internal state is lost.
    LinkDrop,
    /// The controller's brownout detector resets the chip: volatile state
    /// is lost exactly as in a full outage, but power returns by itself.
    ControllerReset,
    /// Deep enough to kill the flash core outright (equivalent to a full
    /// outage for any in-flight operation).
    CoreLoss,
}

/// A transient V-shaped voltage sag.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BrownoutEvent {
    /// When the rail starts sagging.
    pub start: SimTime,
    /// Deepest rail voltage reached.
    pub floor: Millivolts,
    /// Time from nominal down to the floor.
    pub sag: SimDuration,
    /// Time from the floor back to nominal.
    pub recovery: SimDuration,
}

impl BrownoutEvent {
    /// A typical shallow sag (4.6 V floor, 20 ms down, 20 ms up).
    pub fn shallow(start: SimTime) -> Self {
        BrownoutEvent {
            start,
            floor: Millivolts::new(4600),
            sag: SimDuration::from_millis(20),
            recovery: SimDuration::from_millis(20),
        }
    }

    /// A deep sag that resets the controller (3.5 V floor).
    pub fn deep(start: SimTime) -> Self {
        BrownoutEvent {
            start,
            floor: Millivolts::new(3500),
            sag: SimDuration::from_millis(30),
            recovery: SimDuration::from_millis(30),
        }
    }

    /// When the rail is back at nominal.
    pub fn end(&self) -> SimTime {
        self.start + self.sag + self.recovery
    }

    /// Severity classification by floor depth.
    pub fn severity(&self) -> BrownoutSeverity {
        if self.floor > HOST_LOSS_MV {
            BrownoutSeverity::Harmless
        } else if self.floor > FLASH_UNRELIABLE_MV {
            BrownoutSeverity::LinkDrop
        } else if self.floor > CORE_DEATH_MV {
            BrownoutSeverity::ControllerReset
        } else {
            BrownoutSeverity::CoreLoss
        }
    }

    /// Rail voltage at `now` (nominal outside the event window).
    pub fn voltage_at(&self, now: SimTime, nominal: Millivolts) -> Millivolts {
        if now <= self.start || now >= self.end() {
            return nominal;
        }
        let bottom_at = self.start + self.sag;
        let span_mv = f64::from(nominal.get()) - f64::from(self.floor.get());
        if now <= bottom_at {
            let frac = now.saturating_since(self.start).as_micros() as f64
                / self.sag.as_micros().max(1) as f64;
            Millivolts::new((f64::from(nominal.get()) - span_mv * frac).round() as u32)
        } else {
            let frac = now.saturating_since(bottom_at).as_micros() as f64
                / self.recovery.as_micros().max(1) as f64;
            Millivolts::new((f64::from(self.floor.get()) + span_mv * frac).round() as u32)
        }
    }

    /// The window during which the rail sits below `threshold`, if the
    /// sag reaches it: `(crossing down, crossing up)`.
    pub fn window_below(
        &self,
        threshold: Millivolts,
        nominal: Millivolts,
    ) -> Option<(SimTime, SimTime)> {
        if self.floor >= threshold {
            return None;
        }
        let span_mv = f64::from(nominal.get()) - f64::from(self.floor.get());
        let frac = (f64::from(nominal.get()) - f64::from(threshold.get())) / span_mv;
        let down = self.start + self.sag.mul_f64(frac);
        let up = self.start + self.sag + self.recovery.mul_f64(1.0 - frac);
        Some((down, up))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_classifies_by_floor() {
        let t = SimTime::ZERO;
        assert_eq!(
            BrownoutEvent::shallow(t).severity(),
            BrownoutSeverity::Harmless
        );
        let mut e = BrownoutEvent::shallow(t);
        e.floor = Millivolts::new(4495);
        assert_eq!(e.severity(), BrownoutSeverity::LinkDrop);
        assert_eq!(
            BrownoutEvent::deep(t).severity(),
            BrownoutSeverity::ControllerReset
        );
        e.floor = Millivolts::new(1000);
        assert_eq!(e.severity(), BrownoutSeverity::CoreLoss);
    }

    #[test]
    fn voltage_traces_a_v_shape() {
        let e = BrownoutEvent::deep(SimTime::from_millis(100));
        let nominal = Millivolts::new(5000);
        assert_eq!(e.voltage_at(SimTime::from_millis(50), nominal), nominal);
        assert_eq!(e.voltage_at(SimTime::from_millis(130), nominal), e.floor);
        let mid_down = e.voltage_at(SimTime::from_millis(115), nominal);
        assert!(mid_down < nominal && mid_down > e.floor);
        let mid_up = e.voltage_at(SimTime::from_millis(145), nominal);
        assert!(mid_up < nominal && mid_up > e.floor);
        assert_eq!(e.voltage_at(e.end(), nominal), nominal);
    }

    #[test]
    fn window_below_brackets_the_floor() {
        let e = BrownoutEvent::deep(SimTime::from_millis(100));
        let nominal = Millivolts::new(5000);
        let (down, up) = e.window_below(HOST_LOSS_MV, nominal).expect("deep sag");
        assert!(down > e.start);
        assert!(up < e.end());
        assert!(down < up);
        // At both crossings the modelled voltage is near the threshold.
        for t in [down, up] {
            let v = e.voltage_at(t, nominal);
            let err = i64::from(v.get()) - i64::from(HOST_LOSS_MV.get());
            assert!(err.abs() <= 20, "crossing error {err} mV");
        }
        // Thresholds the sag does reach…
        assert!(e.window_below(Millivolts::new(4000), nominal).is_some());
        // …and thresholds at or below the floor are never crossed.
        assert!(e.window_below(Millivolts::new(3500), nominal).is_none());
        assert!(e.window_below(Millivolts::new(3000), nominal).is_none());
    }

    #[test]
    fn shallow_sag_never_crosses_host_loss() {
        let e = BrownoutEvent::shallow(SimTime::ZERO);
        assert!(e
            .window_below(HOST_LOSS_MV, Millivolts::new(5000))
            .is_none());
    }
}
