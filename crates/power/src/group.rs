//! Grouped / correlated fault timelines for fleet-scale outages.
//!
//! A rack-level outage is not one fault: every device behind the failed
//! PSU group sees *its own* RC discharge curve. The supplies are
//! nominally identical, but bulk capacitance, load, and the exact
//! instant each rail starts to fall differ by a few milliseconds — so a
//! correlated cut is a burst of per-device [`FaultTimeline`]s whose
//! commanded instants jitter around the rack event, not one shared
//! timeline. [`PsuGroupCut`] models exactly that: one base injector
//! (the discharge physics every supply in the group shares) plus a
//! bounded per-device jitter drawn deterministically from the caller's
//! RNG stream.

use pfault_sim::{DetRng, SimDuration, SimTime};

use crate::injector::{FaultInjector, FaultTimeline};

/// One correlated outage against a PSU group: a shared commanded
/// instant with bounded per-device jitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PsuGroupCut {
    injector: FaultInjector,
    jitter_us: u64,
}

impl PsuGroupCut {
    /// A correlated cut built from the group's shared supply physics and
    /// the maximum per-device jitter (inclusive), in microseconds.
    pub fn new(injector: FaultInjector, jitter_us: u64) -> Self {
        PsuGroupCut {
            injector,
            jitter_us,
        }
    }

    /// The base injector every device in the group shares.
    pub fn injector(&self) -> &FaultInjector {
        &self.injector
    }

    /// Maximum per-device jitter in microseconds.
    pub fn jitter_us(&self) -> u64 {
        self.jitter_us
    }

    /// Per-device timelines for a rack event commanded at `commanded`:
    /// `count` timelines, each offset by an independent uniform draw in
    /// `[0, jitter_us]` from `rng`. The draws come in device-index order,
    /// so the same RNG stream always yields the same burst.
    pub fn timelines(
        &self,
        commanded: SimTime,
        count: usize,
        rng: &mut DetRng,
    ) -> Vec<FaultTimeline> {
        (0..count)
            .map(|_| {
                let jitter = if self.jitter_us == 0 {
                    0
                } else {
                    rng.between(0, self.jitter_us)
                };
                self.injector
                    .timeline(commanded + SimDuration::from_micros(jitter))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_stream_same_burst() {
        let cut = PsuGroupCut::new(FaultInjector::arduino_atx_loaded(), 5_000);
        let mut a = DetRng::new(99).fork("rack");
        let mut b = DetRng::new(99).fork("rack");
        let ta = cut.timelines(SimTime::from_millis(10), 6, &mut a);
        let tb = cut.timelines(SimTime::from_millis(10), 6, &mut b);
        assert_eq!(ta, tb, "same seed must produce the same burst");
    }

    #[test]
    fn jitter_stays_bounded_and_varies() {
        let base = SimTime::from_millis(50);
        let cut = PsuGroupCut::new(FaultInjector::arduino_atx_loaded(), 3_000);
        let mut rng = DetRng::new(7);
        let burst = cut.timelines(base, 16, &mut rng);
        for t in &burst {
            let offset = t.commanded - base;
            assert!(offset.as_micros() <= 3_000, "jitter exceeds bound: {t:?}");
        }
        let distinct: std::collections::HashSet<u64> =
            burst.iter().map(|t| t.commanded.as_micros()).collect();
        assert!(distinct.len() > 1, "per-device jitter must actually vary");
    }

    #[test]
    fn zero_jitter_collapses_to_one_shared_instant() {
        let base = SimTime::from_millis(20);
        let cut = PsuGroupCut::new(FaultInjector::transistor(), 0);
        let mut rng = DetRng::new(1);
        let burst = cut.timelines(base, 4, &mut rng);
        assert!(burst.iter().all(|t| t.commanded == base));
        assert!(burst.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn each_device_keeps_its_own_discharge_curve() {
        let cut = PsuGroupCut::new(FaultInjector::arduino_atx_loaded(), 2_000);
        let mut rng = DetRng::new(3);
        for t in cut.timelines(SimTime::ZERO, 8, &mut rng) {
            assert!(t.host_lost > t.cut);
            assert!(t.core_dead > t.host_lost);
            assert!(t.brownout_window() > SimDuration::ZERO);
        }
    }
}
