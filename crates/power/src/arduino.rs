//! Arduino UNO command path.
//!
//! The paper's software part sends On/Off commands over a serial link to an
//! ATmega328 microcontroller, whose pin 13 drives the ATX `PS_ON` pin
//! (§III-A2). The path contributes a small, deterministic latency: serial
//! transfer of the one-byte command plus the firmware loop reacting to it.
//! The platform accounts for this delay when scheduling fault instants.

use pfault_sim::{SimDuration, SimTime};

use crate::atx::PsOn;

/// Commands the scheduler can send to the board.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowerCommand {
    /// Keep/restore SSD power.
    On,
    /// Cut SSD power.
    Off,
}

/// The Arduino UNO command path model.
///
/// # Example
///
/// ```
/// use pfault_power::arduino::{ArduinoUno, PowerCommand};
/// use pfault_sim::SimTime;
///
/// let mut board = ArduinoUno::new();
/// let sent = SimTime::from_millis(10);
/// let effective = board.send(PowerCommand::Off, sent);
/// assert!(effective > sent); // serial + firmware latency
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArduinoUno {
    serial_latency: SimDuration,
    loop_latency: SimDuration,
    pin13_high: bool,
}

impl ArduinoUno {
    /// Creates a board with typical latencies: 115200-baud serial
    /// (~100 µs/byte) and a ~1 ms firmware loop.
    pub fn new() -> Self {
        ArduinoUno {
            serial_latency: SimDuration::from_micros(100),
            loop_latency: SimDuration::from_millis(1),
            pin13_high: false,
        }
    }

    /// Creates a board with explicit latencies.
    pub fn with_latencies(serial: SimDuration, firmware_loop: SimDuration) -> Self {
        ArduinoUno {
            serial_latency: serial,
            loop_latency: firmware_loop,
            pin13_high: false,
        }
    }

    /// Total command latency (serial + firmware loop).
    pub fn command_latency(&self) -> SimDuration {
        self.serial_latency + self.loop_latency
    }

    /// Sends a command at `sent`; returns the instant pin 13 actually
    /// switches and updates the pin state.
    pub fn send(&mut self, command: PowerCommand, sent: SimTime) -> SimTime {
        self.pin13_high = matches!(command, PowerCommand::Off);
        sent + self.command_latency()
    }

    /// Current pin 13 level as a `PS_ON` logic level: pin 13 high drives
    /// ATX pin 16 high, which (active low) cuts the supply.
    pub fn ps_on_level(&self) -> PsOn {
        if self.pin13_high {
            PsOn::High
        } else {
            PsOn::Low
        }
    }
}

impl Default for ArduinoUno {
    fn default() -> Self {
        ArduinoUno::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_command_raises_pin_after_latency() {
        let mut board = ArduinoUno::new();
        assert_eq!(board.ps_on_level(), PsOn::Low);
        let sent = SimTime::from_millis(5);
        let effective = board.send(PowerCommand::Off, sent);
        assert_eq!(effective - sent, board.command_latency());
        assert_eq!(board.ps_on_level(), PsOn::High);
    }

    #[test]
    fn on_command_lowers_pin() {
        let mut board = ArduinoUno::new();
        board.send(PowerCommand::Off, SimTime::ZERO);
        board.send(PowerCommand::On, SimTime::from_millis(1));
        assert_eq!(board.ps_on_level(), PsOn::Low);
    }

    #[test]
    fn custom_latencies_are_respected() {
        let mut board = ArduinoUno::with_latencies(
            SimDuration::from_micros(200),
            SimDuration::from_micros(800),
        );
        let effective = board.send(PowerCommand::Off, SimTime::ZERO);
        assert_eq!(effective, SimTime::from_micros(1_000));
    }
}
