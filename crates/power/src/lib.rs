//! Power subsystem models.
//!
//! The paper's central methodological claim is that a realistic power fault
//! is not an instantaneous cut: when a PSU loses AC input (or its ATX
//! `PS_ON` pin is deasserted), its bulk capacitors discharge through the
//! load over hundreds of milliseconds (Fig 4). The SSD disappears from the
//! host early in that ramp (≈4.5 V, ≈40 ms) but its controller and flash
//! core keep running further down the curve — a *brownout race* in which
//! the firmware can still flush caches and commit mapping state.
//!
//! This crate provides:
//!
//! * [`psu`] — the calibrated ATX discharge model ([`psu::PsuModel`]),
//!   reproducing Fig 4a (unloaded, ≈1400 ms) and Fig 4b (one SSD load:
//!   4.5 V at ≈40 ms, ≈0 V at ≈900 ms);
//! * [`atx`] — the ATX supply with its `PS_ON` (pin 16, active-low)
//!   control semantics;
//! * [`arduino`] — the Arduino UNO command path the paper uses to switch
//!   pin 16 from software (§III-A2);
//! * [`cutter`] — the high-speed transistor cutter of the prior studies
//!   \[12, 18\], which drops the rail in microseconds (the ablation
//!   baseline);
//! * [`injector`] — [`injector::FaultInjector`], which composes a control
//!   path and a supply into the fault timeline the platform schedules
//!   around.
//!
//! # Example
//!
//! ```
//! use pfault_power::injector::FaultInjector;
//! use pfault_sim::SimTime;
//!
//! let injector = FaultInjector::arduino_atx_loaded();
//! let timeline = injector.timeline(SimTime::ZERO);
//! // The host sees the SSD vanish tens of milliseconds after the command…
//! assert!(timeline.host_lost > timeline.commanded);
//! // …and the flash core keeps power for a while longer.
//! assert!(timeline.core_dead > timeline.host_lost);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arduino;
pub mod atx;
pub mod brownout;
pub mod cutter;
pub mod group;
pub mod injector;
pub mod psu;
pub mod volts;

pub use brownout::{BrownoutEvent, BrownoutSeverity};
pub use group::PsuGroupCut;
pub use injector::{FaultInjector, FaultTimeline};
pub use psu::PsuModel;
pub use volts::Millivolts;
