//! The fault injector: control path + supply → fault timeline.
//!
//! [`FaultInjector`] composes a command path (Arduino serial latency or
//! none) with a supply model (ATX discharge or transistor cutter) and
//! computes, for a fault commanded at time *t*, the [`FaultTimeline`] the
//! platform schedules around: when the host loses the device, when the
//! controller's brownout race ends, and when the rail is fully discharged.

use serde::{Deserialize, Serialize};

use pfault_sim::{SimDuration, SimTime};

use crate::arduino::ArduinoUno;
use crate::cutter::TransistorCutter;
use crate::psu::{PsuModel, CORE_DEATH_MV, DISCHARGED_MV, FLASH_UNRELIABLE_MV, HOST_LOSS_MV};
use crate::volts::Millivolts;

/// Which physical rig injects the fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum InjectorKind {
    /// The paper's rig: Arduino → ATX `PS_ON` → capacitor discharge.
    ArduinoAtx {
        /// Discharge time constant of the PSU, in microseconds.
        tau_us: u64,
    },
    /// The prior-work rig \[12, 18\]: high-speed transistor, µs-order fall.
    TransistorCutter {
        /// Rail fall time in microseconds.
        fall_us: u64,
    },
}

/// Instants derived from one fault injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultTimeline {
    /// When the software issued the Off command.
    pub commanded: SimTime,
    /// When the rail actually began to fall (after command-path latency).
    pub cut: SimTime,
    /// When the host lost the SATA link (rail at 4.5 V).
    pub host_lost: SimTime,
    /// When NAND operations stop being reliable (rail at 4.0 V): in-flight
    /// programs/erases are interrupted here, and firmware without
    /// power-loss protection gets no further work done.
    pub flash_unreliable: SimTime,
    /// When the controller/flash core died (rail at 2.5 V): end of the
    /// brownout race.
    pub core_dead: SimTime,
    /// When the rail is fully discharged (< 0.5 V).
    pub discharged: SimTime,
}

impl FaultTimeline {
    /// Length of the brownout race window (host loss → core death).
    ///
    /// # Boundary semantics (half-open windows)
    ///
    /// Every threshold instant classifies operations consistently as
    /// half-open windows closed on the *left*: an operation whose
    /// completion time is `<= host_lost` completes and is acknowledged to
    /// the host; one completing exactly at `flash_unreliable` finishes on
    /// the array (the device processes events with `end <= t` before the
    /// rail state changes at `t`); only operations strictly in flight
    /// *after* a threshold are affected by it. Equivalently, the brownout
    /// race occupies `(host_lost, flash_unreliable]` for firmware work and
    /// the interval is empty for a transistor-cut timeline where all
    /// thresholds coincide. The sweeper relies on this: a fault placed at
    /// a recorded span's `end` observes the operation *completed*, one
    /// placed anywhere earlier in the span observes it *interrupted*.
    pub fn brownout_window(&self) -> SimDuration {
        self.core_dead - self.host_lost
    }

    /// A degenerate timeline whose every threshold is `t`: the rail
    /// vanishes instantaneously (an idealised transistor cutter with zero
    /// fall time). The host link, NAND reliability, and the core all die
    /// at the same instant, so there is no brownout race and no oblivious
    /// firmware window — the device state at the cut is exactly the state
    /// recovery sees. This is the injection primitive the fault-space
    /// sweeper uses to place a cut *inside* a recorded site span.
    pub fn at_instant(t: SimTime) -> FaultTimeline {
        FaultTimeline {
            commanded: t,
            cut: t,
            host_lost: t,
            flash_unreliable: t,
            core_dead: t,
            discharged: t,
        }
    }

    /// The probe-bus event describing this timeline: the four absolute
    /// thresholds the device stack reacts to, in simulated microseconds.
    pub fn probe_event(&self) -> pfault_obs::ProbeEvent {
        pfault_obs::ProbeEvent::PowerCut {
            commanded_us: self.commanded.as_micros(),
            host_lost_us: self.host_lost.as_micros(),
            flash_unreliable_us: self.flash_unreliable.as_micros(),
            core_dead_us: self.core_dead.as_micros(),
        }
    }
}

/// A configured fault-injection rig.
///
/// See the crate-level docs for an example.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultInjector {
    kind: InjectorKind,
    command_latency: SimDuration,
}

impl FaultInjector {
    /// The paper's rig with a loaded ATX supply (Fig 4b) and Arduino
    /// command latency.
    pub fn arduino_atx_loaded() -> Self {
        let arduino = ArduinoUno::new();
        let psu = PsuModel::atx_loaded();
        FaultInjector {
            kind: InjectorKind::ArduinoAtx {
                tau_us: psu.tau().as_micros(),
            },
            command_latency: arduino.command_latency(),
        }
    }

    /// The prior-work transistor rig (no Arduino in the loop; the FPGA
    /// switches in nanoseconds, modelled as zero command latency).
    pub fn transistor() -> Self {
        FaultInjector {
            kind: InjectorKind::TransistorCutter {
                fall_us: TransistorCutter::new().fall_time().as_micros(),
            },
            command_latency: SimDuration::ZERO,
        }
    }

    /// A rig from explicit parts.
    pub fn with_parts(kind: InjectorKind, command_latency: SimDuration) -> Self {
        FaultInjector {
            kind,
            command_latency,
        }
    }

    /// The rig kind.
    pub fn kind(&self) -> InjectorKind {
        self.kind
    }

    fn time_to(&self, threshold: Millivolts) -> SimDuration {
        match self.kind {
            InjectorKind::ArduinoAtx { tau_us } => {
                PsuModel::with_tau(Millivolts::new(5000), SimDuration::from_micros(tau_us))
                    .time_to_voltage(threshold)
            }
            InjectorKind::TransistorCutter { fall_us } => {
                TransistorCutter::with_fall_time(SimDuration::from_micros(fall_us))
                    .time_to_voltage(threshold)
            }
        }
    }

    /// Computes the timeline of a fault commanded at `commanded`.
    pub fn timeline(&self, commanded: SimTime) -> FaultTimeline {
        let cut = commanded + self.command_latency;
        FaultTimeline {
            commanded,
            cut,
            host_lost: cut + self.time_to(HOST_LOSS_MV),
            flash_unreliable: cut + self.time_to(FLASH_UNRELIABLE_MV),
            core_dead: cut + self.time_to(CORE_DEATH_MV),
            discharged: cut + self.time_to(DISCHARGED_MV),
        }
    }

    /// Rail voltage `elapsed` after the actual cut.
    pub fn voltage_after_cut(&self, elapsed: SimDuration) -> Millivolts {
        match self.kind {
            InjectorKind::ArduinoAtx { tau_us } => {
                PsuModel::with_tau(Millivolts::new(5000), SimDuration::from_micros(tau_us))
                    .voltage_after(elapsed)
            }
            InjectorKind::TransistorCutter { fall_us } => {
                let mut c = TransistorCutter::with_fall_time(SimDuration::from_micros(fall_us));
                c.cut(SimTime::ZERO);
                c.rail_voltage(SimTime::ZERO + elapsed)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atx_timeline_matches_paper_numbers() {
        let inj = FaultInjector::arduino_atx_loaded();
        let t = inj.timeline(SimTime::ZERO);
        let host_ms = (t.host_lost - t.cut).as_millis_f64();
        let discharged_ms = (t.discharged - t.cut).as_millis_f64();
        assert!((35.0..45.0).contains(&host_ms), "host loss at {host_ms}ms");
        assert!(
            (850.0..950.0).contains(&discharged_ms),
            "discharge at {discharged_ms}ms"
        );
        assert!(t.brownout_window().as_millis_f64() > 150.0);
    }

    #[test]
    fn transistor_timeline_has_no_brownout_window() {
        let inj = FaultInjector::transistor();
        let t = inj.timeline(SimTime::ZERO);
        assert_eq!(t.commanded, t.cut); // no command-path latency
        assert!(t.brownout_window().as_micros() < 100);
        assert!(t.discharged.as_micros() < 1_000);
    }

    #[test]
    fn command_latency_delays_cut() {
        let inj = FaultInjector::arduino_atx_loaded();
        let t = inj.timeline(SimTime::from_millis(10));
        assert!(t.cut > t.commanded);
        let latency = t.cut - t.commanded;
        assert!((1.0..2.0).contains(&latency.as_millis_f64()));
    }

    #[test]
    fn ordering_invariant_holds_for_both_rigs() {
        for inj in [
            FaultInjector::arduino_atx_loaded(),
            FaultInjector::transistor(),
        ] {
            let t = inj.timeline(SimTime::from_secs(1));
            assert!(t.commanded <= t.cut);
            assert!(t.cut <= t.host_lost);
            assert!(t.host_lost <= t.flash_unreliable);
            assert!(t.flash_unreliable <= t.core_dead);
            assert!(t.core_dead <= t.discharged);
        }
    }

    #[test]
    fn instant_timeline_collapses_every_threshold() {
        let t = SimTime::from_millis(17);
        let tl = FaultTimeline::at_instant(t);
        assert_eq!(tl.commanded, t);
        assert_eq!(tl.cut, t);
        assert_eq!(tl.host_lost, t);
        assert_eq!(tl.flash_unreliable, t);
        assert_eq!(tl.core_dead, t);
        assert_eq!(tl.discharged, t);
        assert_eq!(tl.brownout_window(), SimDuration::ZERO);
    }

    #[test]
    fn voltage_after_cut_differs_between_rigs() {
        let atx = FaultInjector::arduino_atx_loaded();
        let cutter = FaultInjector::transistor();
        let at_10ms = SimDuration::from_millis(10);
        assert!(atx.voltage_after_cut(at_10ms) > Millivolts::new(4000));
        assert_eq!(cutter.voltage_after_cut(at_10ms), Millivolts::ZERO);
    }
}
