//! Property tests for the fleet layer: MDS reconstruction, the stripe
//! oracle's FWA detection, and report determinism.

use proptest::prelude::*;

use pfault_fleet::{FleetConfig, FleetSim, RsCode};

/// A fleet small enough that one trial runs in milliseconds.
fn prop_config() -> FleetConfig {
    let mut c = FleetConfig::small();
    c.stripes = 10;
    c.outages = 2;
    c.overwrites_per_outage = 6;
    c
}

proptest! {
    // ---------------- Reed-Solomon: the MDS property ----------------

    /// Any m-chunk subset of the m+k encoded chunks reconstructs the
    /// original data byte-identically — for random data, random chunk
    /// geometry, and every possible subset shape reachable by the mask.
    #[test]
    fn any_m_of_n_chunks_reconstruct(
        m in 1usize..5,
        k in 1usize..4,
        len in 1usize..40,
        mask_seed: u64,
        data in proptest::collection::vec(any::<u8>(), 1..200),
    ) {
        let code = RsCode::new(m, k);
        let chunks: Vec<Vec<u8>> = (0..m)
            .map(|c| (0..len).map(|j| {
                let i = (c * len + j) % data.len();
                data[i]
            }).collect())
            .collect();
        let parity = code.encode(&chunks);
        let all: Vec<&[u8]> = chunks.iter().chain(parity.iter())
            .map(Vec::as_slice).collect();

        // Pick a pseudo-random m-subset of the m+k chunk indices.
        let n = m + k;
        let mut order: Vec<usize> = (0..n).collect();
        let mut state = mask_seed | 1;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        let picked: Vec<(usize, &[u8])> =
            order[..m].iter().map(|&c| (c, all[c])).collect();

        let decoded = code.reconstruct(&picked).expect("m chunks suffice");
        prop_assert_eq!(&decoded, &chunks);
    }

    // ---------------- Stripe oracle: FWA detection ----------------

    /// Stale (FWA) chunks and stripe losses appear *only* when there is
    /// an ACKed-but-unflushed overwrite for the outage to revert: with
    /// no overwrite exposure, every stripe survives every correlated
    /// cut via mechanistic per-device recovery.
    #[test]
    fn no_overwrite_exposure_no_fwa_no_loss(seed: u64) {
        let mut cfg = prop_config();
        cfg.overwrites_per_outage = 0;
        cfg.mount_failure_rate = 0.0;
        let r = FleetSim::run(&cfg, seed);
        prop_assert_eq!(r.tally.chunks_stale, 0);
        prop_assert_eq!(r.tally.stripes_ever_lost, 0);
    }

    /// The oracle never declares a stripe both readable and lost, and a
    /// loss always has more than k unrecoverable chunks attributed to a
    /// concrete device-level cause (FWA-stale, torn, unreadable, or
    /// missing) — stale chunks are detected, never silently decoded as
    /// current data.
    #[test]
    fn losses_are_attributed_beyond_parity(seed: u64) {
        let cfg = prop_config();
        let r = FleetSim::run(&cfg, seed);
        let t = &r.tally;
        prop_assert_eq!(
            t.readable_observations + t.stripe_loss_events,
            t.stripe_observations
        );
        let attributed = t.loss_chunks_stale
            + t.loss_chunks_garbled
            + t.loss_chunks_unreadable
            + t.loss_chunks_missing;
        let k = cfg.parity_chunks as u64;
        prop_assert!(
            attributed >= t.stripe_loss_events * (k + 1),
            "each loss needs > k non-current chunks: {} events, {} attributed",
            t.stripe_loss_events,
            attributed
        );
    }

    // ---------------- Determinism ----------------

    /// Same config + same seed → byte-identical tallies and probe
    /// streams, for arbitrary seeds (the engine-independence guarantee
    /// rests on this).
    #[test]
    fn same_seed_reruns_are_byte_identical(seed: u64) {
        let cfg = prop_config();
        let a = FleetSim::run(&cfg, seed);
        let b = FleetSim::run(&cfg, seed);
        prop_assert_eq!(a.tally, b.tally);
        prop_assert_eq!(a.probes.len(), b.probes.len());
        for (x, y) in a.probes.iter().zip(b.probes.iter()) {
            prop_assert_eq!(x.event.kind(), y.event.kind());
            prop_assert_eq!(x.time_us, y.time_us);
        }
    }
}
