//! Fleet-scale correlated-outage simulation.
//!
//! The paper ("Investigating power outage effects on reliability of
//! solid-state drives", DATE 2018) characterises what one power cut does
//! to one SSD: false write ACKs, torn journals, unserialisable writes,
//! bricked mounts. This crate asks the operator's follow-up question:
//! *what do those per-device pathologies do to a fleet that erasure-codes
//! its data across many such devices and shares power domains between
//! them?*
//!
//! It layers, bottom-up:
//!
//! * [`gf256`] — GF(2⁸) arithmetic (tables built from the polynomial);
//! * [`rs`] — a systematic Vandermonde Reed-Solomon code: any m of the
//!   m+k chunks reconstruct a stripe byte-identically;
//! * [`placement`] — declustered stripe placement: each stripe lands on
//!   a pseudo-random device subset, a pure function of `(seed, stripe)`;
//! * [`sim`] — the fleet simulator proper: real [`pfault_ssd::Ssd`]
//!   devices, PSU-group-correlated power cuts with per-device RC
//!   discharge timelines, the platform recovery loop per victim, a
//!   generation-witness stripe oracle that distinguishes FWA-stale
//!   chunks from torn and missing ones, and a bandwidth-budgeted
//!   rebuild engine that a second outage can interrupt.
//!
//! The crate is deliberately dependency-light (sim/flash/ftl/ssd/power/
//! obs only): the campaign and experiment plumbing in `pfault-platform`
//! builds *on top of* this crate, not the other way around.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gf256;
pub mod placement;
pub mod rs;
pub mod sim;

pub use placement::Placement;
pub use rs::{RsCode, RsError};
pub use sim::{ChunkState, FleetConfig, FleetSim, FleetTally, FleetTrialResult};
