//! Declustered stripe placement.
//!
//! Classic RAID concentrates each stripe on one fixed device group, so
//! a rebuild hammers exactly width−1 survivors. Declustered placement
//! instead spreads stripes over *pseudo-random* device subsets: every
//! device co-stores stripes with every other device, so a failed
//! device's rebuild reads fan out across the whole fleet — and a
//! correlated PSU-group cut intersects *some* chunks of *many* stripes
//! rather than all chunks of a few.
//!
//! The subset for stripe *s* is the first `width` elements of a
//! Fisher-Yates shuffle of the device list, driven by a [`DetRng`]
//! forked per stripe — a pure function of `(seed, s)`, so placement is
//! byte-identical across runs and engines.

use pfault_sim::DetRng;

/// Deterministic declustered placement of `width`-chunk stripes over
/// `devices` devices.
#[derive(Debug, Clone)]
pub struct Placement {
    devices: usize,
    width: usize,
    rng: DetRng,
}

impl Placement {
    /// Builds a placement map.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= width <= devices`.
    pub fn new(devices: usize, width: usize, seed: u64) -> Self {
        assert!(width >= 1, "stripes need at least one chunk");
        assert!(
            width <= devices,
            "stripe width {width} exceeds fleet size {devices}"
        );
        Placement {
            devices,
            width,
            rng: DetRng::new(seed).fork("placement"),
        }
    }

    /// Fleet size.
    pub fn devices(&self) -> usize {
        self.devices
    }

    /// Chunks per stripe.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The devices holding stripe `stripe`, in chunk order (chunk `c`
    /// of the stripe lives on `stripe_devices(stripe)[c]`). Devices are
    /// distinct; the mapping is a pure function of the placement seed
    /// and the stripe id.
    pub fn stripe_devices(&self, stripe: u64) -> Vec<usize> {
        let mut rng = self.rng.fork_index(stripe);
        let mut ids: Vec<usize> = (0..self.devices).collect();
        // Partial Fisher-Yates: only the prefix we keep needs shuffling.
        for i in 0..self.width {
            let j = i + rng.below((self.devices - i) as u64) as usize;
            ids.swap(i, j);
        }
        ids.truncate(self.width);
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_land_on_distinct_devices() {
        let p = Placement::new(8, 5, 11);
        for s in 0..200 {
            let devs = p.stripe_devices(s);
            assert_eq!(devs.len(), 5);
            let mut sorted = devs.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 5, "stripe {s} reuses a device: {devs:?}");
            assert!(devs.iter().all(|&d| d < 8));
        }
    }

    #[test]
    fn placement_is_a_pure_function_of_seed_and_stripe() {
        let a = Placement::new(10, 4, 77);
        let b = Placement::new(10, 4, 77);
        let c = Placement::new(10, 4, 78);
        let same = (0..64).all(|s| a.stripe_devices(s) == b.stripe_devices(s));
        assert!(same, "same seed must place identically");
        let differs = (0..64).any(|s| a.stripe_devices(s) != c.stripe_devices(s));
        assert!(differs, "different seeds must place differently");
    }

    #[test]
    fn load_is_roughly_balanced() {
        let p = Placement::new(8, 4, 3);
        let stripes = 2_000u64;
        let mut per_device = [0u64; 8];
        for s in 0..stripes {
            for d in p.stripe_devices(s) {
                per_device[d] += 1;
            }
        }
        let expected = stripes * 4 / 8;
        for (d, &n) in per_device.iter().enumerate() {
            let low = expected * 8 / 10;
            let high = expected * 12 / 10;
            assert!(
                (low..=high).contains(&n),
                "device {d} holds {n} chunks, expected ≈{expected}"
            );
        }
    }

    #[test]
    fn placement_is_declustered_not_grouped() {
        // Every device must co-store stripes with every other device:
        // a grouped (classic-RAID) layout would partition the fleet.
        let p = Placement::new(9, 3, 5);
        let mut pairs = std::collections::HashSet::new();
        for s in 0..500 {
            let devs = p.stripe_devices(s);
            for i in 0..devs.len() {
                for j in (i + 1)..devs.len() {
                    let (a, b) = (devs[i].min(devs[j]), devs[i].max(devs[j]));
                    pairs.insert((a, b));
                }
            }
        }
        assert_eq!(pairs.len(), 9 * 8 / 2, "all device pairs must co-occur");
    }
}
