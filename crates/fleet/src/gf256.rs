//! GF(2⁸) arithmetic over the AES polynomial x⁸+x⁴+x³+x+1 (0x11B).
//!
//! The Reed-Solomon codec in [`crate::rs`] needs a field where addition
//! is XOR and every nonzero element has an inverse. Log/antilog tables
//! over the generator 3 make multiply/divide two lookups; the tables are
//! built at first use from the polynomial, so there is no 768-entry
//! constant to audit by eye.

/// Log/antilog tables for GF(2⁸).
struct Tables {
    /// `exp[i]` = generator³ⁱ… i.e. 3^i; doubled to 512 entries so
    /// `exp[log a + log b]` needs no modular reduction.
    exp: [u8; 512],
    /// `log[a]` for a ≠ 0.
    log: [u16; 256],
}

fn tables() -> &'static Tables {
    use std::sync::OnceLock;
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = [0u8; 512];
        let mut log = [0u16; 256];
        let mut x: u16 = 1;
        for (i, e) in exp.iter_mut().enumerate().take(255) {
            *e = x as u8;
            log[x as usize] = i as u16;
            // Multiply by the generator 3 = x + 1: shift + conditional
            // reduction by 0x11B.
            x = (x << 1) ^ x;
            if x & 0x100 != 0 {
                x ^= 0x11B;
            }
        }
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Tables { exp, log }
    })
}

/// Field addition (= subtraction): XOR.
pub fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Field multiplication.
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let t = tables();
    t.exp[t.log[a as usize] as usize + t.log[b as usize] as usize]
}

/// Multiplicative inverse.
///
/// # Panics
///
/// Panics on 0, which has no inverse.
pub fn inv(a: u8) -> u8 {
    assert!(a != 0, "0 has no inverse in GF(256)");
    let t = tables();
    t.exp[255 - t.log[a as usize] as usize]
}

/// Field division `a / b`.
///
/// # Panics
///
/// Panics when `b` is 0.
pub fn div(a: u8, b: u8) -> u8 {
    mul(a, inv(b))
}

/// `base` raised to `power` (power taken mod 255, the group order).
pub fn pow(base: u8, power: u64) -> u8 {
    if base == 0 {
        return if power == 0 { 1 } else { 0 };
    }
    let t = tables();
    let l = u64::from(t.log[base as usize]);
    t.exp[((l * (power % 255)) % 255) as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_is_commutative_with_identity() {
        for a in 0..=255u8 {
            assert_eq!(mul(a, 1), a);
            assert_eq!(mul(1, a), a);
            assert_eq!(mul(a, 0), 0);
            for b in [2u8, 3, 29, 128, 255] {
                assert_eq!(mul(a, b), mul(b, a));
            }
        }
    }

    #[test]
    fn every_nonzero_element_inverts() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1, "a = {a}");
            assert_eq!(div(a, a), 1);
        }
    }

    #[test]
    fn mul_distributes_over_add() {
        for a in [1u8, 7, 90, 200] {
            for b in [3u8, 50, 130] {
                for c in [9u8, 77, 255] {
                    assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
                }
            }
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        for base in [2u8, 3, 19, 200] {
            let mut acc = 1u8;
            for p in 0..520u64 {
                assert_eq!(pow(base, p), acc, "base {base} power {p}");
                acc = mul(acc, base);
            }
        }
        assert_eq!(pow(0, 0), 1);
        assert_eq!(pow(0, 5), 0);
    }
}
