//! Systematic Reed-Solomon erasure code over GF(2⁸).
//!
//! The encoding matrix is a Vandermonde matrix on distinct nodes,
//! normalised so its top m×m block is the identity (systematic: data
//! chunks are stored verbatim, parity appended). Any m rows of the
//! normalised matrix stay invertible — every m-subset of the m+k chunks
//! reconstructs the stripe exactly, the MDS property the stripe oracle
//! leans on: data is lost *iff* more than k chunks are unrecoverable.

use crate::gf256;

/// Why a reconstruction attempt failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsError {
    /// Fewer than m chunks were supplied.
    NotEnoughChunks {
        /// Chunks supplied.
        have: usize,
        /// Chunks needed (m).
        need: usize,
    },
    /// A chunk index was out of range or supplied twice.
    BadChunkIndex(usize),
    /// Supplied chunks disagree on payload length.
    LengthMismatch,
}

impl std::fmt::Display for RsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RsError::NotEnoughChunks { have, need } => {
                write!(f, "need {need} chunks to reconstruct, have {have}")
            }
            RsError::BadChunkIndex(i) => write!(f, "chunk index {i} invalid or duplicated"),
            RsError::LengthMismatch => write!(f, "chunk payload lengths differ"),
        }
    }
}

impl std::error::Error for RsError {}

/// A systematic m-data + k-parity Reed-Solomon code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RsCode {
    m: usize,
    k: usize,
    /// (m+k)×m encoding matrix; rows 0..m are the identity.
    matrix: Vec<Vec<u8>>,
}

impl RsCode {
    /// Builds the code.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= m`, `1 <= k`, and `m + k <= 255` (the node
    /// count a GF(2⁸) Vandermonde supports).
    pub fn new(m: usize, k: usize) -> Self {
        assert!(m >= 1, "need at least one data chunk");
        assert!(k >= 1, "need at least one parity chunk");
        assert!(m + k <= 255, "GF(256) supports at most 255 chunks");
        // Vandermonde rows on distinct nodes x_i = i (0, 1, 2, …): row i
        // is [1, x_i, x_i², …]. Node 0 contributes [1, 0, 0, …].
        let vander: Vec<Vec<u8>> = (0..m + k)
            .map(|i| (0..m).map(|j| gf256::pow(i as u8, j as u64)).collect())
            .collect();
        // Normalise: A = V · V_top⁻¹, so the top block is the identity.
        let top: Vec<Vec<u8>> = vander[..m].to_vec();
        let top_inv = invert(top).expect("distinct Vandermonde nodes are invertible");
        let matrix = vander
            .iter()
            .map(|row| mat_vec_rows(row, &top_inv))
            .collect();
        RsCode { m, k, matrix }
    }

    /// Data chunks per stripe (m).
    pub fn data_chunks(&self) -> usize {
        self.m
    }

    /// Parity chunks per stripe (k).
    pub fn parity_chunks(&self) -> usize {
        self.k
    }

    /// Total chunks per stripe (m + k).
    pub fn total_chunks(&self) -> usize {
        self.m + self.k
    }

    /// Encodes the k parity payloads from the m data payloads.
    ///
    /// # Panics
    ///
    /// Panics unless exactly m equally-long payloads are supplied.
    pub fn encode(&self, data: &[Vec<u8>]) -> Vec<Vec<u8>> {
        assert_eq!(data.len(), self.m, "encode takes exactly m data payloads");
        let len = data[0].len();
        assert!(
            data.iter().all(|d| d.len() == len),
            "data payloads must share one length"
        );
        (self.m..self.m + self.k)
            .map(|row| {
                let coeffs = &self.matrix[row];
                let mut out = vec![0u8; len];
                for (j, chunk) in data.iter().enumerate() {
                    let c = coeffs[j];
                    if c == 0 {
                        continue;
                    }
                    for (o, b) in out.iter_mut().zip(chunk.iter()) {
                        *o = gf256::add(*o, gf256::mul(c, *b));
                    }
                }
                out
            })
            .collect()
    }

    /// Reconstructs all m data payloads from any m available chunks
    /// (data or parity), given as `(chunk index, payload)` pairs.
    /// Extra chunks beyond m are ignored (the first m in supplied order
    /// are used).
    ///
    /// # Errors
    ///
    /// [`RsError`] when fewer than m chunks are supplied, an index is
    /// invalid or duplicated, or payload lengths disagree.
    pub fn reconstruct(&self, available: &[(usize, &[u8])]) -> Result<Vec<Vec<u8>>, RsError> {
        if available.len() < self.m {
            return Err(RsError::NotEnoughChunks {
                have: available.len(),
                need: self.m,
            });
        }
        let used = &available[..self.m];
        let mut seen = vec![false; self.m + self.k];
        for &(i, _) in used {
            if i >= self.m + self.k || seen[i] {
                return Err(RsError::BadChunkIndex(i));
            }
            seen[i] = true;
        }
        let len = used[0].1.len();
        if used.iter().any(|(_, p)| p.len() != len) {
            return Err(RsError::LengthMismatch);
        }
        // Rows of the encoding matrix for the available chunks form an
        // invertible m×m system: data = B⁻¹ · available.
        let b: Vec<Vec<u8>> = used.iter().map(|&(i, _)| self.matrix[i].clone()).collect();
        let b_inv = invert(b).expect("any m rows of a normalised Vandermonde are invertible");
        Ok((0..self.m)
            .map(|d| {
                let mut out = vec![0u8; len];
                for (j, &(_, payload)) in used.iter().enumerate() {
                    let c = b_inv[d][j];
                    if c == 0 {
                        continue;
                    }
                    for (o, b) in out.iter_mut().zip(payload.iter()) {
                        *o = gf256::add(*o, gf256::mul(c, *b));
                    }
                }
                out
            })
            .collect())
    }

    /// The payload of chunk `index` (data chunks verbatim, parity
    /// re-encoded) from the full set of data payloads. Used by the
    /// rebuild engine to regenerate exactly the chunk that was lost.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range index or a malformed data set (see
    /// [`RsCode::encode`]).
    pub fn chunk_payload(&self, index: usize, data: &[Vec<u8>]) -> Vec<u8> {
        assert!(index < self.m + self.k, "chunk index out of range");
        if index < self.m {
            return data[index].clone();
        }
        let parity = self.encode(data);
        parity[index - self.m].clone()
    }
}

/// `row · m⁻¹` helper: multiplies a 1×m row vector by an m×m matrix.
fn mat_vec_rows(row: &[u8], matrix: &[Vec<u8>]) -> Vec<u8> {
    let m = matrix.len();
    (0..m)
        .map(|col| {
            let mut acc = 0u8;
            for (j, &r) in row.iter().enumerate() {
                acc = gf256::add(acc, gf256::mul(r, matrix[j][col]));
            }
            acc
        })
        .collect()
}

/// Gauss-Jordan inversion over GF(2⁸). `None` for a singular matrix.
fn invert(mut a: Vec<Vec<u8>>) -> Option<Vec<Vec<u8>>> {
    let n = a.len();
    let mut inv: Vec<Vec<u8>> = (0..n)
        .map(|i| (0..n).map(|j| u8::from(i == j)).collect())
        .collect();
    for col in 0..n {
        let pivot = (col..n).find(|&r| a[r][col] != 0)?;
        a.swap(col, pivot);
        inv.swap(col, pivot);
        let p = gf256::inv(a[col][col]);
        for j in 0..n {
            a[col][j] = gf256::mul(a[col][j], p);
            inv[col][j] = gf256::mul(inv[col][j], p);
        }
        for r in 0..n {
            if r == col || a[r][col] == 0 {
                continue;
            }
            let f = a[r][col];
            for j in 0..n {
                let ac = gf256::mul(f, a[col][j]);
                let ic = gf256::mul(f, inv[col][j]);
                a[r][j] = gf256::add(a[r][j], ac);
                inv[r][j] = gf256::add(inv[r][j], ic);
            }
        }
    }
    Some(inv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfault_sim::DetRng;

    fn payloads(m: usize, len: usize, seed: u64) -> Vec<Vec<u8>> {
        let mut rng = DetRng::new(seed);
        (0..m)
            .map(|_| (0..len).map(|_| rng.next_u64() as u8).collect())
            .collect()
    }

    /// Every m-subset of chunk indices, by bitmask walk.
    fn m_subsets(total: usize, m: usize) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        for mask in 0u32..(1 << total) {
            if mask.count_ones() as usize != m {
                continue;
            }
            out.push((0..total).filter(|i| mask & (1 << i) != 0).collect());
        }
        out
    }

    #[test]
    fn systematic_top_is_identity() {
        let code = RsCode::new(4, 2);
        for (i, row) in code.matrix[..4].iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                assert_eq!(v, u8::from(i == j), "row {i} col {j}");
            }
        }
    }

    #[test]
    fn every_m_subset_reconstructs_exactly() {
        for (m, k) in [(2, 1), (2, 2), (3, 2), (4, 3)] {
            let code = RsCode::new(m, k);
            let data = payloads(m, 64, 42 + m as u64 * 10 + k as u64);
            let parity = code.encode(&data);
            let all: Vec<Vec<u8>> = data.iter().chain(parity.iter()).cloned().collect();
            for subset in m_subsets(m + k, m) {
                let avail: Vec<(usize, &[u8])> =
                    subset.iter().map(|&i| (i, all[i].as_slice())).collect();
                let rebuilt = code.reconstruct(&avail).expect("m chunks suffice");
                assert_eq!(rebuilt, data, "subset {subset:?} of ({m},{k})");
            }
        }
    }

    #[test]
    fn chunk_payload_regenerates_any_chunk() {
        let code = RsCode::new(3, 2);
        let data = payloads(3, 32, 7);
        let parity = code.encode(&data);
        for i in 0..3 {
            assert_eq!(code.chunk_payload(i, &data), data[i]);
        }
        for (p, chunk) in parity.iter().enumerate() {
            assert_eq!(&code.chunk_payload(3 + p, &data), chunk);
        }
    }

    #[test]
    fn too_few_chunks_is_an_error() {
        let code = RsCode::new(3, 1);
        let data = payloads(3, 8, 1);
        let avail: Vec<(usize, &[u8])> = data[..2]
            .iter()
            .enumerate()
            .map(|(i, p)| (i, p.as_slice()))
            .collect();
        assert_eq!(
            code.reconstruct(&avail),
            Err(RsError::NotEnoughChunks { have: 2, need: 3 })
        );
    }

    #[test]
    fn duplicate_or_bad_index_is_an_error() {
        let code = RsCode::new(2, 1);
        let d = payloads(2, 8, 2);
        let dup: Vec<(usize, &[u8])> = vec![(0, d[0].as_slice()), (0, d[0].as_slice())];
        assert_eq!(code.reconstruct(&dup), Err(RsError::BadChunkIndex(0)));
        let oob: Vec<(usize, &[u8])> = vec![(0, d[0].as_slice()), (9, d[1].as_slice())];
        assert_eq!(code.reconstruct(&oob), Err(RsError::BadChunkIndex(9)));
    }

    #[test]
    fn corrupted_chunk_decodes_to_wrong_data() {
        // RS erasure decoding trusts its inputs: a silently corrupted
        // chunk produces wrong output rather than an error. Detection is
        // the stripe oracle's job (generation witnesses), not the
        // codec's — this test pins that division of labour.
        let code = RsCode::new(2, 1);
        let data = payloads(2, 16, 3);
        let parity = code.encode(&data);
        let mut poisoned = data[0].clone();
        poisoned[0] ^= 0xFF;
        let avail: Vec<(usize, &[u8])> =
            vec![(0, poisoned.as_slice()), (2, parity[0].as_slice())];
        let rebuilt = code.reconstruct(&avail).expect("decode proceeds");
        assert_ne!(rebuilt, data, "corruption must surface as wrong bytes");
    }
}
