//! The fleet simulator: N real [`Ssd`] devices behind an m+k
//! erasure-coded stripe layer, driven through correlated power outages.
//!
//! Every mechanism is mechanistic, not sampled:
//!
//! * Writes go through each device's real cache/FTL pipeline; an outage
//!   cuts power with a per-device RC discharge timeline from
//!   [`pfault_power`], so ACKed-but-unflushed stripe generations revert
//!   on the victims — the paper's false write ACK (FWA), scaled out.
//! * A correlated cut takes down a whole PSU group at (jittered) the
//!   same instant, so no victim gets the few milliseconds of idle time
//!   that would have flushed its cache; independent cuts of the *same
//!   device count* recover and rebuild between victims. The durability
//!   gap between the two is the experiment's headline.
//! * Recovery per device mirrors the platform loop: mount at
//!   `discharged + 1 s`, exponential backoff on failed mounts, terminal
//!   bricks are replaced with a blank device (its chunks become
//!   missing), read-only survivors serve reads but take no writes.
//! * The stripe oracle classifies each chunk after recovery by its
//!   generation witness: `Current`, `Stale` (FWA — checksums pass but
//!   content is a previous ACKed generation), `Garbled` (torn),
//!   `Unreadable`, or `Missing`. A stripe is lost only when fewer than
//!   m chunks are current — i.e. when more than k are unrecoverable
//!   *after* per-device mechanistic recovery.
//! * The rebuild engine spends per-device sector budgets (bandwidth ×
//!   inter-outage gap); when the budget runs dry the rebuild is
//!   interrupted and the remaining stripes carry their exposure into
//!   the next outage — the double-fault-during-rebuild regime.
//!
//! Everything is a pure function of `(FleetConfig, seed)`: tallies are
//! integers, so reports are byte-identical across engines and reruns.

use pfault_obs::{Layer, ProbeEvent, ProbeLog, ProbeRecord};
use pfault_power::{FaultInjector, PsuGroupCut};
use pfault_sim::checksum::mix64;
use pfault_sim::{DetRng, Lba, SectorCount, SimDuration, SimTime};
use pfault_ssd::{
    Completion, CompletionKind, DeviceError, HostCommand, Ssd, SsdConfig, VendorPreset,
    VerifiedContent,
};
use serde::Serialize;
use std::collections::BTreeMap;

use crate::placement::Placement;
use crate::rs::RsCode;

/// Domain-separation salt for fleet payload tags.
const FLEET_SALT: u64 = 0x464C_4545_5400_0001;

/// Fleet topology, outage schedule, and rebuild bandwidth.
#[derive(Debug, Clone, Serialize)]
pub struct FleetConfig {
    /// Devices in the fleet.
    pub devices: usize,
    /// Data chunks per stripe (m).
    pub data_chunks: usize,
    /// Parity chunks per stripe (k); the stripe survives up to k
    /// unrecoverable chunks.
    pub parity_chunks: usize,
    /// Stripes stored by the fleet.
    pub stripes: u64,
    /// Sectors per chunk.
    pub chunk_sectors: u64,
    /// Devices sharing one PSU: the victim count of every outage event.
    pub psu_group: usize,
    /// Per-device jitter on a correlated cut's commanded instant, in
    /// microseconds (PSU rails do not collapse perfectly in phase).
    pub psu_jitter_us: u64,
    /// Outage events in the trial.
    pub outages: u32,
    /// Correlated (one rack-level cut drops a whole PSU group at once)
    /// versus independent (the same victim count, cut one at a time
    /// with full recovery and rebuild between cuts).
    pub correlated: bool,
    /// Fleet-time hours each outage event represents (outage events are
    /// rare; the simulator compresses the idle time between them).
    pub inter_outage_hours: u64,
    /// Rebuild sector budget per device per inter-outage gap — the
    /// bandwidth × time product. Reconstructing one chunk charges every
    /// source device a chunk of read budget and the target a chunk of
    /// write budget; a dry budget interrupts the rebuild.
    pub rebuild_budget_sectors: u64,
    /// Stripes overwritten (ACKed but deliberately not flushed)
    /// immediately before each outage — the FWA exposure window.
    pub overwrites_per_outage: u64,
    /// Vendor preset for every device (geometry is shrunk for fleet
    /// scale).
    pub vendor: VendorPreset,
    /// Probability that a post-outage mount attempt fails.
    pub mount_failure_rate: f64,
    /// Mount attempts before the firmware bricks the device.
    pub mount_retry_limit: u32,
    /// Smoke knob: before the first scan, administratively wipe (TRIM)
    /// this many chunks of stripe 0. The oracle must declare stripe 0
    /// lost iff this exceeds `parity_chunks`.
    pub forced_chunk_wipes: u64,
}

impl FleetConfig {
    /// A small fleet with losses reachable in seconds of wall time.
    pub fn small() -> Self {
        FleetConfig {
            devices: 8,
            data_chunks: 3,
            parity_chunks: 2,
            stripes: 40,
            chunk_sectors: 8,
            psu_group: 4,
            psu_jitter_us: 400,
            outages: 4,
            correlated: true,
            inter_outage_hours: 720,
            rebuild_budget_sectors: 256,
            overwrites_per_outage: 16,
            vendor: VendorPreset::SsdA,
            mount_failure_rate: 0.02,
            mount_retry_limit: 4,
            forced_chunk_wipes: 0,
        }
    }

    /// Chunks per stripe (m + k).
    pub fn width(&self) -> usize {
        self.data_chunks + self.parity_chunks
    }

    /// Panics unless the topology is coherent (width ≤ devices, PSU
    /// groups tile the fleet, stripes fit on a device).
    fn validate(&self) {
        assert!(self.data_chunks >= 1, "stripes need at least one data chunk");
        assert!(
            self.width() <= self.devices,
            "stripe width {} exceeds fleet size {}",
            self.width(),
            self.devices
        );
        assert!(
            self.psu_group >= 1 && self.psu_group <= self.devices,
            "PSU group must be between 1 and the fleet size"
        );
        assert!(
            self.devices.is_multiple_of(self.psu_group),
            "PSU groups of {} must tile the {}-device fleet",
            self.psu_group,
            self.devices
        );
        assert!(self.stripes >= 1 && self.chunk_sectors >= 1);
    }
}

/// Post-recovery classification of one chunk, from its generation
/// witness (the per-sector payload tags the device actually returns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkState {
    /// Every sector carries the current generation: usable as-is.
    Current,
    /// Every sector is intact but carries an *earlier ACKed* generation:
    /// the device reverted an acknowledged write — a false write ACK.
    Stale,
    /// Sectors decode but mix generations or fail their checksum: a torn
    /// write.
    Garbled,
    /// At least one sector no longer decodes (beyond ECC).
    Unreadable,
    /// The mapping is gone (device bricked and replaced, or wiped).
    Missing,
}

impl ChunkState {
    /// Whether the chunk can serve reads/reconstruction as-is.
    pub fn is_current(self) -> bool {
        matches!(self, ChunkState::Current)
    }
}

/// Integer-only counters for one fleet trial. Everything derived
/// (availability, durability, MTTDL) is computed from these at report
/// time, so merged tallies are byte-identical regardless of the engine
/// that produced them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct FleetTally {
    /// Outage events driven.
    pub outage_events: u64,
    /// Outage events that cut a whole PSU group at once.
    pub correlated_events: u64,
    /// Total device cuts (victims × events).
    pub devices_cut: u64,
    /// Fleet-time hours the trial represents.
    pub fleet_hours: u64,
    /// Stripes stored (per trial; merging trials sums them).
    pub stripes_total: u64,
    /// Stripe scans performed (stripes × scan rounds).
    pub stripe_observations: u64,
    /// Scans that found the stripe readable (≥ m current chunks).
    pub readable_observations: u64,
    /// Readable scans that needed RS reconstruction (< width current).
    pub degraded_reads: u64,
    /// Scans that found the stripe unrecoverable (> k chunks down).
    pub stripe_loss_events: u64,
    /// Distinct stripes ever lost.
    pub stripes_ever_lost: u64,
    /// Chunks observed stale (FWA: ACKed generation reverted).
    pub chunks_stale: u64,
    /// Chunks observed garbled/torn.
    pub chunks_garbled: u64,
    /// Chunks observed unreadable (beyond ECC).
    pub chunks_unreadable: u64,
    /// Chunks observed missing (bricked-and-replaced device or wipe).
    pub chunks_missing: u64,
    /// Lost-stripe chunks attributed to FWA staleness.
    pub loss_chunks_stale: u64,
    /// Lost-stripe chunks attributed to torn writes.
    pub loss_chunks_garbled: u64,
    /// Lost-stripe chunks attributed to unreadable media.
    pub loss_chunks_unreadable: u64,
    /// Lost-stripe chunks attributed to bricked/wiped devices.
    pub loss_chunks_missing: u64,
    /// Chunks rewritten by the rebuild engine.
    pub chunks_rebuilt: u64,
    /// Rebuild writes diverted to a spare device (target read-only).
    pub rebuilds_diverted: u64,
    /// Rebuild passes cut short by an exhausted bandwidth budget.
    pub rebuilds_interrupted: u64,
    /// Chunks a dry budget left degraded into the next outage.
    pub rebuild_chunks_deferred: u64,
    /// Devices that bricked terminally and were replaced.
    pub devices_bricked: u64,
    /// Mounts that came back read-only-degraded.
    pub read_only_mounts: u64,
    /// Extra mount attempts spent in recovery backoff.
    pub mount_retries: u64,
    /// Chunks wiped by the forced-loss smoke knob.
    pub forced_wipes: u64,
}

macro_rules! merge_fields {
    ($self:ident, $other:ident: $($f:ident),+ $(,)?) => {
        $( $self.$f += $other.$f; )+
    };
}

impl FleetTally {
    /// Adds another tally into this one (canonical-order reduction).
    pub fn merge(&mut self, other: &FleetTally) {
        merge_fields!(self, other:
            outage_events, correlated_events, devices_cut, fleet_hours,
            stripes_total, stripe_observations, readable_observations,
            degraded_reads, stripe_loss_events, stripes_ever_lost,
            chunks_stale, chunks_garbled, chunks_unreadable, chunks_missing,
            loss_chunks_stale, loss_chunks_garbled, loss_chunks_unreadable,
            loss_chunks_missing, chunks_rebuilt, rebuilds_diverted,
            rebuilds_interrupted, rebuild_chunks_deferred, devices_bricked,
            read_only_mounts, mount_retries, forced_wipes,
        );
    }

    /// Fraction of stripe scans that found the stripe readable.
    pub fn availability(&self) -> f64 {
        if self.stripe_observations == 0 {
            return 1.0;
        }
        self.readable_observations as f64 / self.stripe_observations as f64
    }

    /// Fraction of stripes never lost.
    pub fn durability(&self) -> f64 {
        if self.stripes_total == 0 {
            return 1.0;
        }
        1.0 - self.stripes_ever_lost as f64 / self.stripes_total as f64
    }

    /// Mean fleet-time hours between data-loss events; `None` while no
    /// loss has been observed (MTTDL is unbounded, not zero).
    pub fn mttdl_hours(&self) -> Option<f64> {
        if self.stripe_loss_events == 0 {
            None
        } else {
            Some(self.fleet_hours as f64 / self.stripe_loss_events as f64)
        }
    }
}

/// One trial's result: the integer tally plus the fleet-layer probe
/// records (outages, degraded reads, losses, rebuild interruptions) for
/// obs-pipeline traceability.
#[derive(Debug, Clone)]
pub struct FleetTrialResult {
    /// Integer counters.
    pub tally: FleetTally,
    /// Fleet-layer probe records, in emission order.
    pub probes: Vec<ProbeRecord>,
}

/// Payload tag for generation `gen` of chunk `chunk` of stripe
/// `stripe`. The device derives each sector's content from this tag, so
/// reading the tag back (via the content checksum machinery) witnesses
/// *which ACKed generation* actually survived the outage.
fn write_tag(stripe: u64, chunk: usize, gen: u64) -> u64 {
    mix64(mix64(FLEET_SALT ^ stripe, chunk as u64), gen)
}

/// Canonical payload bytes of a *data* chunk: the little-endian bytes of
/// the per-sector content tags. This is a pure function of the chunk
/// coordinates, which is what lets the oracle verify RS reconstruction
/// byte-for-byte without trusting any device.
fn data_chunk_payload(stripe: u64, chunk: usize, gen: u64, chunk_sectors: u64) -> Vec<u8> {
    let tag = write_tag(stripe, chunk, gen);
    let mut bytes = Vec::with_capacity(chunk_sectors as usize * 8);
    for j in 0..chunk_sectors {
        bytes.extend_from_slice(&mix64(tag, j).to_le_bytes());
    }
    bytes
}

/// Tracks one device slot in the fleet: the live [`Ssd`] plus how many
/// blank replacements this slot has consumed.
struct DeviceSlot {
    ssd: Ssd,
    replacements: u64,
}

impl DeviceSlot {
    fn mounted(&self) -> bool {
        self.ssd.is_operational() || self.ssd.is_read_only()
    }

    fn writable(&self) -> bool {
        self.ssd.is_operational()
    }
}

/// The fleet simulator. Construct with [`FleetSim::run`]; the struct
/// itself is internal driving state.
pub struct FleetSim {
    config: FleetConfig,
    placement: Placement,
    /// `(stripe, chunk) → device` for chunks relocated off a read-only
    /// device by the rebuild engine.
    relocated: BTreeMap<(u64, usize), usize>,
    code: RsCode,
    devices: Vec<DeviceSlot>,
    /// Current ACKed generation per stripe (1-based after population).
    gens: Vec<u64>,
    ever_lost: Vec<bool>,
    injector: FaultInjector,
    rng: DetRng,
    now: SimTime,
    next_request: u64,
    tally: FleetTally,
    log: ProbeLog,
}

/// Per-round scan result for one stripe.
struct StripeScan {
    stripe: u64,
    states: Vec<ChunkState>,
    current: usize,
}

impl FleetSim {
    /// Runs one fleet trial: populate, then `outages` rounds of
    /// (overwrite → cut → recover → scan → rebuild). Pure function of
    /// `(config, seed)`.
    ///
    /// # Panics
    ///
    /// Panics when the config is incoherent (see [`FleetConfig`]) or an
    /// internal invariant breaks (RS reconstruction mismatch).
    pub fn run(config: &FleetConfig, seed: u64) -> FleetTrialResult {
        config.validate();
        let mut sim = FleetSim::new(config.clone(), seed);
        sim.populate();
        for round in 0..config.outages {
            sim.round(round);
        }
        sim.tally.fleet_hours = u64::from(config.outages) * config.inter_outage_hours;
        sim.tally.stripes_total = config.stripes;
        FleetTrialResult {
            tally: sim.tally,
            probes: sim.log.take_records(),
        }
    }

    fn new(config: FleetConfig, seed: u64) -> Self {
        let rng = DetRng::new(mix64(seed, FLEET_SALT));
        let device_cfg = Self::device_config(&config);
        let dev_rng = rng.fork("devices");
        let devices = (0..config.devices)
            .map(|d| DeviceSlot {
                ssd: Ssd::new(device_cfg, dev_rng.fork_index(d as u64)),
                replacements: 0,
            })
            .collect();
        let placement = Placement::new(config.devices, config.width(), mix64(seed, 1));
        let code = RsCode::new(config.data_chunks, config.parity_chunks);
        let gens = vec![0; config.stripes as usize];
        let ever_lost = vec![false; config.stripes as usize];
        FleetSim {
            config,
            placement,
            relocated: BTreeMap::new(),
            code,
            devices,
            gens,
            ever_lost,
            injector: FaultInjector::arduino_atx_loaded(),
            rng,
            now: SimTime::ZERO,
            next_request: 1,
            tally: FleetTally::default(),
            log: ProbeLog::enabled(),
        }
    }

    /// Vendor preset shrunk to fleet scale: a few hundred blocks is
    /// plenty for the stripe working set and keeps N devices cheap.
    fn device_config(config: &FleetConfig) -> SsdConfig {
        let mut cfg = config.vendor.config();
        cfg.geometry = pfault_flash::FlashGeometry::new(512, 64);
        cfg.ftl = pfault_ftl::FtlConfig::for_geometry(cfg.geometry);
        cfg.mount_failure_rate = config.mount_failure_rate;
        cfg.mount_retry_limit = config.mount_retry_limit;
        // A write-back window wide enough that the overwrite → cut gap
        // reliably lands inside it; without this, microsecond-scale
        // clock skew between the overwrite phase and the cut would
        // nondeterministically flush some victims' caches first.
        cfg.cache.flush_delay = SimDuration::from_millis(10);
        cfg
    }

    /// The device holding chunk `c` of stripe `s`, honouring rebuild
    /// relocations.
    fn device_for(&self, stripe: u64, chunk: usize) -> usize {
        if let Some(&d) = self.relocated.get(&(stripe, chunk)) {
            return d;
        }
        self.placement.stripe_devices(stripe)[chunk]
    }

    fn lba_for(&self, stripe: u64) -> Lba {
        Lba::new(stripe * self.config.chunk_sectors)
    }

    /// Brings a mounted device's clock up to the fleet clock (firing its
    /// pending cache-flush events on the way — this is exactly the idle
    /// time that saves *independent* outage victims from FWA).
    fn sync_device(&mut self, d: usize) {
        let slot = &mut self.devices[d];
        if slot.mounted() && slot.ssd.now() < self.now {
            slot.ssd.advance_to(self.now);
        }
    }

    fn bump_fleet_clock(&mut self) {
        for slot in &self.devices {
            if slot.ssd.now() > self.now {
                self.now = slot.ssd.now();
            }
        }
    }

    /// Submits one chunk write and pumps the device until the ACK
    /// arrives. Returns false if the device errored the command instead
    /// (read-only rejection or a mid-write cut).
    fn write_chunk(&mut self, d: usize, stripe: u64, chunk: usize, gen: u64) -> bool {
        self.sync_device(d);
        let req = self.next_request;
        self.next_request += 1;
        let cmd = HostCommand::write(
            req,
            0,
            self.lba_for(stripe),
            SectorCount::new(self.config.chunk_sectors),
            write_tag(stripe, chunk, gen),
        );
        let slot = &mut self.devices[d];
        slot.ssd.submit(cmd);
        let mut acked = false;
        let mut guard = 0u32;
        loop {
            let done = Self::drain_for(&mut slot.ssd, req, &mut acked);
            if done {
                break;
            }
            let step = slot
                .ssd
                .next_event()
                .unwrap_or(slot.ssd.now() + SimDuration::from_micros(100));
            slot.ssd
                .advance_to(step.max(slot.ssd.now() + SimDuration::from_micros(1)));
            guard += 1;
            assert!(guard < 1_000_000, "chunk write failed to complete");
        }
        acked
    }

    /// Drains completions looking for `req`; returns true once seen.
    fn drain_for(ssd: &mut Ssd, req: u64, acked: &mut bool) -> bool {
        let completions: Vec<Completion> = ssd.drain_completions();
        let mut done = false;
        for c in completions {
            if c.request_id == req {
                done = true;
                *acked = matches!(c.kind, CompletionKind::Acked);
            }
        }
        done
    }

    /// Writes every chunk of a stripe at generation `gen`. With
    /// `durable`, each written device is quiesced afterwards (cache
    /// drained, journal committed); without it the ACKed data sits in
    /// cache — the FWA exposure the outage preys on.
    fn write_stripe(&mut self, stripe: u64, gen: u64, durable: bool) {
        for chunk in 0..self.config.width() {
            let d = self.device_for(stripe, chunk);
            if !self.devices[d].writable() {
                continue;
            }
            if self.write_chunk(d, stripe, chunk, gen) && durable {
                self.devices[d].ssd.quiesce();
            }
        }
        self.gens[stripe as usize] = gen;
        self.bump_fleet_clock();
    }

    /// Initial population: every stripe written durably at generation 1.
    fn populate(&mut self) {
        for s in 0..self.config.stripes {
            self.write_stripe(s, 1, true);
        }
        self.bump_fleet_clock();
    }

    /// One outage round: overwrite exposure, cut(s), recovery, scan,
    /// rebuild.
    fn round(&mut self, round: u32) {
        let mut round_rng = self.rng.fork("rounds").fork_index(u64::from(round));
        self.tally.outage_events += 1;

        // FWA exposure: overwrite a random sample of healthy stripes,
        // ACKed but deliberately left unflushed (the host believes the
        // new generation is committed; only each device's cache does).
        let mut victims_of_write: Vec<u64> = Vec::new();
        for _ in 0..self.config.overwrites_per_outage {
            let s = round_rng.below(self.config.stripes);
            if victims_of_write.contains(&s) {
                continue;
            }
            let all_writable = (0..self.config.width())
                .all(|c| self.devices[self.device_for(s, c)].writable());
            if !all_writable {
                continue;
            }
            victims_of_write.push(s);
            let gen = self.gens[s as usize] + 1;
            self.write_stripe(s, gen, false);
        }

        if self.config.correlated {
            self.correlated_cut(&mut round_rng);
            if round == 0 {
                self.forced_wipes();
            }
            let scans = self.scan_round();
            self.rebuild(scans, &mut round_rng);
        } else {
            // Same victim count, one device at a time, with full
            // recovery + rebuild between cuts: the cache idle time
            // between cuts flushes the other victims' dirty data.
            let groups = self.config.devices / self.config.psu_group;
            let group = round_rng.below(groups as u64) as usize * self.config.psu_group;
            for i in 0..self.config.psu_group {
                let d = group + i;
                self.single_cut(d, &mut round_rng);
                if round == 0 && i == 0 {
                    self.forced_wipes();
                }
                let scans = self.scan_round();
                self.rebuild(scans, &mut round_rng);
            }
        }
    }

    /// Cuts a whole PSU group at one jittered instant.
    fn correlated_cut(&mut self, rng: &mut DetRng) {
        self.bump_fleet_clock();
        let groups = self.config.devices / self.config.psu_group;
        let group = rng.below(groups as u64) as usize * self.config.psu_group;
        let victims: Vec<usize> = (group..group + self.config.psu_group)
            .filter(|&d| self.devices[d].mounted())
            .collect();
        if victims.is_empty() {
            return;
        }
        let cut = PsuGroupCut::new(self.injector, self.config.psu_jitter_us);
        let commanded = self.now + SimDuration::from_millis(1);
        let timelines = cut.timelines(commanded, victims.len(), rng);
        self.tally.correlated_events += 1;
        self.tally.devices_cut += victims.len() as u64;
        self.log.emit(
            commanded,
            Layer::Fleet,
            ProbeEvent::FleetOutage {
                devices: victims.len() as u64,
                correlated: 1,
            },
        );
        for (&d, tl) in victims.iter().zip(&timelines) {
            self.sync_device(d);
            self.devices[d].ssd.power_fail(tl);
        }
        for (&d, tl) in victims.iter().zip(&timelines) {
            self.recover_device(d, tl.discharged);
        }
        self.bump_fleet_clock();
    }

    /// Cuts one device and recovers it (the independent-outage
    /// primitive).
    fn single_cut(&mut self, d: usize, _rng: &mut DetRng) {
        self.bump_fleet_clock();
        if !self.devices[d].mounted() {
            return;
        }
        self.sync_device(d);
        let commanded = self.now + SimDuration::from_millis(1);
        let tl = self.injector.timeline(commanded);
        self.tally.devices_cut += 1;
        self.log.emit(
            commanded,
            Layer::Fleet,
            ProbeEvent::FleetOutage {
                devices: 1,
                correlated: 0,
            },
        );
        self.devices[d].ssd.power_fail(&tl);
        self.recover_device(d, tl.discharged);
        self.bump_fleet_clock();
    }

    /// The platform recovery loop, per device: mount one second after
    /// full discharge, exponential backoff on failed mounts, terminal
    /// bricks replaced with a blank device.
    fn recover_device(&mut self, d: usize, discharged: SimTime) {
        let mut recovery_time = discharged + SimDuration::from_secs(1);
        let mut backoff = SimDuration::from_secs(1);
        loop {
            match self.devices[d].ssd.power_on_recover(recovery_time) {
                Ok(_) => {
                    if self.devices[d].ssd.is_read_only() {
                        self.tally.read_only_mounts += 1;
                    }
                    return;
                }
                Err(DeviceError::Bricked { .. } | DeviceError::RecoveryFailed { .. }) => {
                    self.replace_device(d, recovery_time);
                    return;
                }
                Err(
                    DeviceError::MountFailed { .. } | DeviceError::RecoveryInterrupted { .. },
                ) => {
                    self.tally.mount_retries += 1;
                    recovery_time = self.devices[d].ssd.now() + backoff;
                    backoff = backoff * 2;
                }
                Err(e @ (DeviceError::NotMounted | DeviceError::ReadOnly)) => {
                    unreachable!("power_on_recover never returns {e}")
                }
            }
        }
    }

    /// Swaps a terminally bricked device for a blank replacement. Every
    /// chunk the slot held is gone until the rebuild engine rewrites it.
    fn replace_device(&mut self, d: usize, at: SimTime) {
        self.tally.devices_bricked += 1;
        let gen = self.devices[d].replacements + 1;
        let cfg = Self::device_config(&self.config);
        let seed_rng = self
            .rng
            .fork("replacements")
            .fork_index(d as u64)
            .fork_index(gen);
        let mut ssd = Ssd::new(cfg, seed_rng);
        ssd.advance_to(at.max(self.now));
        self.devices[d] = DeviceSlot {
            ssd,
            replacements: gen,
        };
    }

    /// Smoke-test knob: TRIM `forced_chunk_wipes` chunks of stripe 0 on
    /// their devices, making them mechanically missing.
    fn forced_wipes(&mut self) {
        for chunk in 0..(self.config.forced_chunk_wipes as usize).min(self.config.width()) {
            let d = self.device_for(0, chunk);
            if !self.devices[d].writable() {
                continue;
            }
            self.sync_device(d);
            let lba = self.lba_for(0);
            let sectors = SectorCount::new(self.config.chunk_sectors);
            self.devices[d].ssd.trim(lba, sectors);
            self.devices[d].ssd.quiesce();
            self.tally.forced_wipes += 1;
        }
        self.bump_fleet_clock();
    }

    /// Classifies one chunk from what its device actually returns.
    fn classify_chunk(&mut self, stripe: u64, chunk: usize) -> ChunkState {
        let d = self.device_for(stripe, chunk);
        if !self.devices[d].mounted() {
            return ChunkState::Missing;
        }
        self.sync_device(d);
        let gen = self.gens[stripe as usize];
        let base = self.lba_for(stripe);
        let mut current = 0u64;
        let mut stale_gen: Option<u64> = None;
        let mut stale = 0u64;
        let mut missing = 0u64;
        for j in 0..self.config.chunk_sectors {
            let lba = Lba::new(base.index() + j);
            match self.devices[d].ssd.verify_read(lba) {
                VerifiedContent::Unwritten => missing += 1,
                VerifiedContent::Unreadable => return ChunkState::Unreadable,
                VerifiedContent::Written(data) => {
                    if !data.is_intact() {
                        return ChunkState::Garbled;
                    }
                    if data.tag == mix64(write_tag(stripe, chunk, gen), j) {
                        current += 1;
                        continue;
                    }
                    // Which earlier ACKed generation is this?
                    let mut matched = None;
                    for g in (1..gen).rev() {
                        if data.tag == mix64(write_tag(stripe, chunk, g), j) {
                            matched = Some(g);
                            break;
                        }
                    }
                    match matched {
                        None => return ChunkState::Garbled,
                        Some(g) => match stale_gen {
                            None => {
                                stale_gen = Some(g);
                                stale += 1;
                            }
                            Some(prev) if prev == g => stale += 1,
                            // Two different old generations in one
                            // chunk: torn across generations.
                            Some(_) => return ChunkState::Garbled,
                        },
                    }
                }
            }
        }
        let n = self.config.chunk_sectors;
        if current == n {
            ChunkState::Current
        } else if missing == n {
            ChunkState::Missing
        } else if stale == n {
            ChunkState::Stale
        } else {
            // A mix of current/stale/missing sectors: a torn chunk.
            ChunkState::Garbled
        }
    }

    /// Scans every stripe, tallies availability and chunk pathology, and
    /// exercises real RS decode on every degraded-but-readable stripe.
    fn scan_round(&mut self) -> Vec<StripeScan> {
        self.bump_fleet_clock();
        let width = self.config.width();
        let m = self.config.data_chunks;
        let mut scans = Vec::with_capacity(self.config.stripes as usize);
        for s in 0..self.config.stripes {
            let states: Vec<ChunkState> =
                (0..width).map(|c| self.classify_chunk(s, c)).collect();
            let current = states.iter().filter(|st| st.is_current()).count();
            self.tally.stripe_observations += 1;
            for st in &states {
                match st {
                    ChunkState::Current => {}
                    ChunkState::Stale => self.tally.chunks_stale += 1,
                    ChunkState::Garbled => self.tally.chunks_garbled += 1,
                    ChunkState::Unreadable => self.tally.chunks_unreadable += 1,
                    ChunkState::Missing => self.tally.chunks_missing += 1,
                }
            }
            if current >= m {
                self.tally.readable_observations += 1;
                if current < width {
                    self.tally.degraded_reads += 1;
                    self.log.emit(
                        self.now,
                        Layer::Fleet,
                        ProbeEvent::FleetDegradedRead {
                            stripe: s,
                            missing: (width - current) as u64,
                        },
                    );
                    self.check_degraded_decode(s, &states);
                }
            } else {
                self.record_loss(s, &states, width - current);
            }
            scans.push(StripeScan {
                stripe: s,
                states,
                current,
            });
        }
        scans
    }

    /// Proves a degraded stripe really is readable: reconstruct the data
    /// payloads from the first m current chunks via the RS codec and
    /// compare byte-for-byte against the canonical generation payloads.
    fn check_degraded_decode(&self, stripe: u64, states: &[ChunkState]) {
        let m = self.config.data_chunks;
        let gen = self.gens[stripe as usize];
        let payloads = self.materialize_payloads(stripe, gen);
        let available: Vec<(usize, &[u8])> = states
            .iter()
            .enumerate()
            .filter(|(_, st)| st.is_current())
            .take(m)
            .map(|(c, _)| (c, payloads[c].as_slice()))
            .collect();
        let decoded = self
            .code
            .reconstruct(&available)
            .expect("≥ m current chunks decode");
        for (c, data) in decoded.iter().enumerate() {
            assert_eq!(
                data, &payloads[c],
                "RS decode of stripe {stripe} chunk {c} diverged"
            );
        }
    }

    /// Canonical payload bytes of every chunk of a stripe at `gen`: data
    /// chunks from the tag function, parity chunks by encoding them.
    fn materialize_payloads(&self, stripe: u64, gen: u64) -> Vec<Vec<u8>> {
        let m = self.config.data_chunks;
        let data: Vec<Vec<u8>> = (0..m)
            .map(|c| data_chunk_payload(stripe, c, gen, self.config.chunk_sectors))
            .collect();
        let parity = self.code.encode(&data);
        data.into_iter().chain(parity).collect()
    }

    /// Books a data-loss event: more than k chunks unrecoverable after
    /// per-device recovery. The stripe is then restored from "external
    /// backup" (rewritten durably at a fresh generation) so the fleet
    /// keeps running with known contents.
    fn record_loss(&mut self, stripe: u64, states: &[ChunkState], unrecoverable: usize) {
        self.tally.stripe_loss_events += 1;
        if !self.ever_lost[stripe as usize] {
            self.ever_lost[stripe as usize] = true;
            self.tally.stripes_ever_lost += 1;
        }
        for st in states {
            match st {
                ChunkState::Current => {}
                ChunkState::Stale => self.tally.loss_chunks_stale += 1,
                ChunkState::Garbled => self.tally.loss_chunks_garbled += 1,
                ChunkState::Unreadable => self.tally.loss_chunks_unreadable += 1,
                ChunkState::Missing => self.tally.loss_chunks_missing += 1,
            }
        }
        self.log.emit(
            self.now,
            Layer::Fleet,
            ProbeEvent::FleetStripeLost {
                stripe,
                unrecoverable: unrecoverable as u64,
            },
        );
        let gen = self.gens[stripe as usize] + 1;
        self.write_stripe(stripe, gen, true);
    }

    /// The rebuild engine: repairs non-current chunks of readable
    /// stripes in stripe order, charging per-device sector budgets.
    /// Sources are the first m current chunks (read budget); the target
    /// takes the write. A read-only target diverts the chunk to a spare
    /// writable device outside the stripe; a dry budget anywhere
    /// interrupts the whole pass, leaving the remainder degraded into
    /// the next outage.
    fn rebuild(&mut self, scans: Vec<StripeScan>, _rng: &mut DetRng) {
        let m = self.config.data_chunks;
        let width = self.config.width();
        let mut read_budget = vec![self.config.rebuild_budget_sectors; self.config.devices];
        let mut write_budget = vec![self.config.rebuild_budget_sectors; self.config.devices];
        let chunk_cost = self.config.chunk_sectors;

        // Chunks needing repair, in canonical (stripe, chunk) order.
        // Lost stripes were already restored from backup in the scan.
        let work: Vec<(u64, usize, Vec<usize>)> = scans
            .iter()
            .filter(|scan| scan.current >= m && scan.current < width)
            .map(|scan| {
                let sources: Vec<usize> = scan
                    .states
                    .iter()
                    .enumerate()
                    .filter(|(_, st)| st.is_current())
                    .take(m)
                    .map(|(c, _)| c)
                    .collect();
                scan.states
                    .iter()
                    .enumerate()
                    .filter(|(_, st)| !st.is_current())
                    .map(|(c, _)| (scan.stripe, c, sources.clone()))
                    .collect::<Vec<_>>()
            })
            .collect::<Vec<_>>()
            .into_iter()
            .flatten()
            .collect();

        for (i, (stripe, chunk, sources)) in work.iter().enumerate() {
            let (stripe, chunk) = (*stripe, *chunk);
            // Pick (or divert) the write target.
            let mut target = self.device_for(stripe, chunk);
            let mut diverted = false;
            if !self.devices[target].writable() {
                let in_stripe: Vec<usize> =
                    (0..width).map(|c| self.device_for(stripe, c)).collect();
                let spare = (0..self.config.devices).find(|d| {
                    self.devices[*d].writable()
                        && !in_stripe.contains(d)
                        && write_budget[*d] >= chunk_cost
                });
                match spare {
                    Some(d) => {
                        target = d;
                        diverted = true;
                    }
                    // No spare: the chunk stays degraded this round.
                    None => continue,
                }
            }
            // Charge bandwidth; a dry budget interrupts the whole pass.
            let source_devs: Vec<usize> =
                sources.iter().map(|&c| self.device_for(stripe, c)).collect();
            let budget_ok = write_budget[target] >= chunk_cost
                && source_devs.iter().all(|&d| read_budget[d] >= chunk_cost);
            if !budget_ok {
                let pending = work.len() - i;
                self.tally.rebuilds_interrupted += 1;
                self.tally.rebuild_chunks_deferred += pending as u64;
                self.log.emit(
                    self.now,
                    Layer::Fleet,
                    ProbeEvent::FleetRebuildInterrupted {
                        pending_stripes: pending as u64,
                    },
                );
                break;
            }
            write_budget[target] -= chunk_cost;
            for &d in &source_devs {
                read_budget[d] -= chunk_cost;
            }
            // Reconstruct through the real codec (read-only devices can
            // serve source reads — only writes are barred) and verify
            // against the canonical payloads before rewriting.
            let gen = self.gens[stripe as usize];
            let payloads = self.materialize_payloads(stripe, gen);
            let available: Vec<(usize, &[u8])> = sources
                .iter()
                .map(|&c| (c, payloads[c].as_slice()))
                .collect();
            let rebuilt = self
                .code
                .chunk_payload(chunk, &self.code.reconstruct(&available).expect("m sources"));
            assert_eq!(
                rebuilt, payloads[chunk],
                "rebuild of stripe {stripe} chunk {chunk} diverged"
            );
            if diverted {
                self.relocated.insert((stripe, chunk), target);
                self.tally.rebuilds_diverted += 1;
            }
            if self.write_chunk(target, stripe, chunk, gen) {
                self.devices[target].ssd.quiesce();
                self.tally.chunks_rebuilt += 1;
            }
        }
        self.bump_fleet_clock();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FleetConfig {
        let mut c = FleetConfig::small();
        c.stripes = 12;
        c.outages = 2;
        c.overwrites_per_outage = 8;
        c
    }

    #[test]
    fn trial_is_a_pure_function_of_config_and_seed() {
        let c = tiny();
        let a = FleetSim::run(&c, 42);
        let b = FleetSim::run(&c, 42);
        assert_eq!(a.tally, b.tally);
        assert_eq!(a.probes.len(), b.probes.len());
        let c2 = FleetSim::run(&c, 43);
        assert!(
            a.tally != c2.tally || a.probes.len() != c2.probes.len(),
            "different seeds should diverge somewhere"
        );
    }

    #[test]
    fn correlated_cuts_strictly_worse_than_independent() {
        let mut cfg = tiny();
        cfg.outages = 3;
        cfg.correlated = true;
        let corr = FleetSim::run(&cfg, 7);
        cfg.correlated = false;
        let indep = FleetSim::run(&cfg, 7);
        assert_eq!(corr.tally.devices_cut, indep.tally.devices_cut);
        assert!(
            corr.tally.stripes_ever_lost > indep.tally.stripes_ever_lost,
            "correlated {} vs independent {} stripes lost",
            corr.tally.stripes_ever_lost,
            indep.tally.stripes_ever_lost
        );
        assert_eq!(
            indep.tally.stripes_ever_lost, 0,
            "independent single-device cuts stay within parity"
        );
    }

    #[test]
    fn forced_wipes_cause_loss_iff_beyond_parity() {
        let mut cfg = tiny();
        cfg.psu_group = 1;
        cfg.correlated = false;
        cfg.outages = 1;
        cfg.overwrites_per_outage = 0;
        cfg.mount_failure_rate = 0.0;

        cfg.forced_chunk_wipes = cfg.parity_chunks as u64;
        let within = FleetSim::run(&cfg, 5);
        assert_eq!(within.tally.stripes_ever_lost, 0, "k wipes must rebuild");
        assert!(within.tally.degraded_reads > 0);
        assert!(within.tally.chunks_rebuilt >= cfg.forced_chunk_wipes);

        cfg.forced_chunk_wipes = cfg.parity_chunks as u64 + 1;
        let beyond = FleetSim::run(&cfg, 5);
        assert_eq!(
            beyond.tally.stripes_ever_lost, 1,
            "k+1 wipes must lose exactly stripe 0"
        );
        assert!(beyond.tally.loss_chunks_missing >= cfg.forced_chunk_wipes);
    }

    #[test]
    fn stale_chunks_are_detected_not_silently_decoded() {
        // A correlated cut right after unflushed overwrites must
        // surface FWA chunks as Stale (counted), never as Current.
        let mut cfg = tiny();
        cfg.outages = 2;
        cfg.correlated = true;
        let r = FleetSim::run(&cfg, 11);
        assert!(
            r.tally.chunks_stale > 0,
            "correlated cuts over unflushed writes must yield stale chunks"
        );
        // Every loss is attributed to a concrete chunk pathology.
        if r.tally.stripe_loss_events > 0 {
            assert!(
                r.tally.loss_chunks_stale
                    + r.tally.loss_chunks_garbled
                    + r.tally.loss_chunks_unreadable
                    + r.tally.loss_chunks_missing
                    > 0
            );
        }
    }

    #[test]
    fn probe_stream_traces_outages_and_losses() {
        let mut cfg = tiny();
        cfg.outages = 3;
        let r = FleetSim::run(&cfg, 9);
        let outages = r
            .probes
            .iter()
            .filter(|p| p.event.kind() == "fleet.outage")
            .count() as u64;
        assert_eq!(outages, 3, "one outage probe per correlated round");
        let losses = r
            .probes
            .iter()
            .filter(|p| p.event.kind() == "fleet.stripe-lost")
            .count() as u64;
        assert_eq!(losses, r.tally.stripe_loss_events);
        let degraded = r
            .probes
            .iter()
            .filter(|p| p.event.kind() == "fleet.degraded-read")
            .count() as u64;
        assert_eq!(degraded, r.tally.degraded_reads);
    }

    #[test]
    fn tally_merge_adds_fieldwise_and_rates_derive() {
        let c = tiny();
        let a = FleetSim::run(&c, 1).tally;
        let b = FleetSim::run(&c, 2).tally;
        let mut m = a;
        m.merge(&b);
        assert_eq!(
            m.stripe_observations,
            a.stripe_observations + b.stripe_observations
        );
        assert_eq!(m.stripes_ever_lost, a.stripes_ever_lost + b.stripes_ever_lost);
        assert!(m.availability() <= 1.0 && m.availability() > 0.0);
        assert!(m.durability() <= 1.0);
        match m.mttdl_hours() {
            Some(h) => assert!(h > 0.0),
            None => assert_eq!(m.stripe_loss_events, 0),
        }
    }
}
