//! Checksums used for data-failure detection.
//!
//! The paper's Analyzer (§III-B) detects data loss by comparing three
//! checksums carried in each data packet's header (Fig 2): the checksum of
//! the request payload, the checksum of the target address *before* issuing
//! the request, and the checksum read back *after* completion. This module
//! provides the two digests the platform uses:
//!
//! * [`crc32`] — CRC-32 (IEEE 802.3 polynomial, reflected), used for page
//!   payloads inside the flash model;
//! * [`fnv64`] — FNV-1a 64-bit, used for cheap tagging of simulated sector
//!   contents at device scale.

/// CRC-32 (IEEE) lookup table, generated at compile time.
const fn make_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = make_crc_table();

/// Computes the CRC-32 (IEEE 802.3) of `data`.
///
/// # Example
///
/// ```
/// // Standard check value for "123456789".
/// assert_eq!(pfault_sim::checksum::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Computes the FNV-1a 64-bit hash of `data`.
///
/// # Example
///
/// ```
/// // FNV-1a of the empty string is the offset basis.
/// assert_eq!(pfault_sim::checksum::fnv64(b""), 0xcbf2_9ce4_8422_2325);
/// ```
pub fn fnv64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Mixes two 64-bit values into one (for combining tags with generation
/// counters into a single content checksum).
pub fn mix64(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.rotate_left(32) ^ 0x9E37_79B9_7F4A_7C15;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc32_detects_single_bit_flip() {
        let mut buf = vec![0xA5u8; 512];
        let base = crc32(&buf);
        buf[100] ^= 0x01;
        assert_ne!(crc32(&buf), base);
    }

    #[test]
    fn fnv64_known_vectors() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn fnv64_differs_on_permutation() {
        assert_ne!(fnv64(b"ab"), fnv64(b"ba"));
    }

    #[test]
    fn mix64_is_input_sensitive() {
        assert_ne!(mix64(1, 2), mix64(2, 1));
        assert_ne!(mix64(0, 0), mix64(0, 1));
        // Deterministic.
        assert_eq!(mix64(99, 7), mix64(99, 7));
    }
}
