//! Deterministic, forkable random number generation.
//!
//! Every experiment in the platform takes a single `u64` seed; all stochastic
//! decisions (request addresses, sizes, fault instants, bit-error draws)
//! derive from it through [`DetRng`], a xoshiro256\*\* generator seeded via
//! SplitMix64. The generator implements [`rand::RngCore`], so the full
//! `rand` API ([`rand::Rng`]) is available on it.
//!
//! [`DetRng::fork`] derives an independent child stream from a label, which
//! lets subsystems (IO generator vs. fault scheduler vs. flash bit errors)
//! consume randomness without perturbing each other — adding a draw in one
//! subsystem does not shift every other subsystem's sequence.

use rand::RngCore;

/// Deterministic xoshiro256\*\* random number generator.
///
/// # Example
///
/// ```
/// use pfault_sim::DetRng;
/// use rand::{Rng, RngCore};
///
/// let mut a = DetRng::new(42);
/// let mut b = DetRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// let x: f64 = a.gen_range(0.0..1.0);
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    state: [u64; 4],
}

/// SplitMix64 step, used for seeding and stream derivation.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator from a `u64` seed.
    ///
    /// Two generators created from the same seed produce identical
    /// sequences on every platform.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { state }
    }

    /// Derives an independent child generator from a textual label.
    ///
    /// Forking does not advance `self`. The child stream depends on both the
    /// parent's current state and the label, so distinct labels yield
    /// unrelated streams.
    ///
    /// # Example
    ///
    /// ```
    /// use pfault_sim::DetRng;
    /// use rand::RngCore;
    ///
    /// let parent = DetRng::new(7);
    /// let mut io = parent.fork("io-generator");
    /// let mut faults = parent.fork("fault-scheduler");
    /// assert_ne!(io.next_u64(), faults.next_u64());
    /// ```
    pub fn fork(&self, label: &str) -> DetRng {
        // FNV-1a over the label mixed with the current state words.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mixed = h
            ^ self.state[0].rotate_left(13)
            ^ self.state[1].rotate_left(29)
            ^ self.state[2].rotate_left(43)
            ^ self.state[3].rotate_left(59);
        DetRng::new(mixed)
    }

    /// Derives an independent child generator from a numeric stream index
    /// (e.g. one per campaign trial).
    pub fn fork_index(&self, index: u64) -> DetRng {
        let mixed = index.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17)
            ^ self.state[0]
            ^ self.state[3].rotate_left(31);
        DetRng::new(mixed)
    }

    /// Advances the xoshiro256\*\* state and returns the next 64-bit value.
    ///
    /// This is an inherent method (shadowing [`RngCore::next_u64`]) so that
    /// downstream crates can draw values without importing `rand`.
    pub fn next_u64(&mut self) -> u64 {
        self.step()
    }

    /// A digest of the generator's current stream position, without
    /// advancing it. Two generators with equal fingerprints produce the
    /// same future sequence — warm-state snapshots include this so that a
    /// restored device resumes the *exact* randomness a replayed-from-cold
    /// device would see.
    pub fn state_fingerprint(&self) -> u64 {
        self.state[0]
            .rotate_left(7)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ self.state[1].rotate_left(21)
            ^ self.state[2].rotate_left(37)
            ^ self.state[3].rotate_left(51)
    }

    fn step(&mut self) -> u64 {
        let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53-bit uniform in [0,1).
        let u = (self.step() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's nearly-divisionless method.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn between(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        if lo == hi {
            return lo;
        }
        lo + self.below(hi - lo + 1)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot pick from an empty slice");
        &items[self.below(items.len() as u64) as usize]
    }
}

impl RngCore for DetRng {
    fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.step()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.step().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = DetRng::new(123);
        let mut b = DetRng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_stable_and_label_sensitive() {
        let parent = DetRng::new(9);
        let mut c1 = parent.fork("alpha");
        let mut c1b = parent.fork("alpha");
        let mut c2 = parent.fork("beta");
        assert_eq!(c1.next_u64(), c1b.next_u64());
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn fork_does_not_advance_parent() {
        let mut a = DetRng::new(5);
        let mut b = DetRng::new(5);
        let _ = a.fork("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fork_index_streams_differ() {
        let parent = DetRng::new(77);
        let mut s0 = parent.fork_index(0);
        let mut s1 = parent.fork_index(1);
        assert_ne!(s0.next_u64(), s1.next_u64());
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(4);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn chance_is_calibrated() {
        let mut r = DetRng::new(11);
        let hits = (0..20_000).filter(|_| r.chance(0.3)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.3).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = DetRng::new(21);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = r.below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn between_inclusive() {
        let mut r = DetRng::new(31);
        for _ in 0..1_000 {
            let v = r.between(10, 12);
            assert!((10..=12).contains(&v));
        }
        assert_eq!(r.between(5, 5), 5);
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_panics() {
        DetRng::new(0).below(0);
    }

    #[test]
    fn unit_f64_in_range_with_sane_mean() {
        let mut r = DetRng::new(41);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.unit_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn pick_selects_all_elements_eventually() {
        let mut r = DetRng::new(51);
        let items = ["a", "b", "c"];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(*r.pick(&items));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn fill_bytes_fills_oddsized_buffers() {
        let mut r = DetRng::new(61);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
