//! Storage-domain base types shared across the platform.
//!
//! The workload generator, block-layer tracer, FTL and device model all
//! speak in terms of 4 KiB logical sectors addressed by [`Lba`]. Keeping
//! these types here (rather than in one of the higher crates) avoids
//! circular dependencies between those crates.

use core::fmt;
use core::ops::{Add, AddAssign};

use serde::{Deserialize, Serialize};

/// Logical sector size, in bytes. The platform issues IO in 4 KiB units —
/// the paper's request sizes (4 KiB – 1 MiB) are multiples of this.
pub const SECTOR_BYTES: u64 = 4096;

/// Bytes per KiB / MiB / GiB, for workload configuration.
pub const KIB: u64 = 1024;
/// Bytes per MiB.
pub const MIB: u64 = 1024 * KIB;
/// Bytes per GiB.
pub const GIB: u64 = 1024 * MIB;

/// A logical block address, in units of 4 KiB sectors.
///
/// # Example
///
/// ```
/// use pfault_sim::{Lba, SectorCount};
///
/// let start = Lba::new(100);
/// let end = start + SectorCount::new(4);
/// assert_eq!(end, Lba::new(104));
/// assert_eq!(start.byte_offset(), 409_600);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Lba(u64);

impl Lba {
    /// Creates an LBA from a sector index.
    pub const fn new(sector: u64) -> Self {
        Lba(sector)
    }

    /// The sector index.
    pub const fn index(self) -> u64 {
        self.0
    }

    /// Byte offset of the start of this sector.
    pub const fn byte_offset(self) -> u64 {
        self.0 * SECTOR_BYTES
    }

    /// The next sector.
    pub const fn next(self) -> Lba {
        Lba(self.0 + 1)
    }

    /// Iterator over `count` consecutive LBAs starting here.
    pub fn span(self, count: SectorCount) -> impl Iterator<Item = Lba> {
        (self.0..self.0 + count.get()).map(Lba)
    }
}

impl Add<SectorCount> for Lba {
    type Output = Lba;
    fn add(self, rhs: SectorCount) -> Lba {
        Lba(self.0 + rhs.get())
    }
}

impl AddAssign<SectorCount> for Lba {
    fn add_assign(&mut self, rhs: SectorCount) {
        self.0 += rhs.get();
    }
}

impl fmt::Display for Lba {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lba:{}", self.0)
    }
}

/// A count of 4 KiB sectors (the length of a request).
///
/// # Example
///
/// ```
/// use pfault_sim::SectorCount;
///
/// let len = SectorCount::from_bytes(1024 * 1024); // 1 MiB request
/// assert_eq!(len.get(), 256);
/// assert_eq!(len.bytes(), 1024 * 1024);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SectorCount(u64);

impl SectorCount {
    /// One sector.
    pub const ONE: SectorCount = SectorCount(1);

    /// Creates a sector count.
    pub const fn new(sectors: u64) -> Self {
        SectorCount(sectors)
    }

    /// Converts a byte length to sectors, rounding up.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn from_bytes(bytes: u64) -> Self {
        assert!(bytes > 0, "request length must be positive");
        SectorCount(bytes.div_ceil(SECTOR_BYTES))
    }

    /// The raw sector count.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Length in bytes.
    pub const fn bytes(self) -> u64 {
        self.0 * SECTOR_BYTES
    }
}

impl Add for SectorCount {
    type Output = SectorCount;
    fn add(self, rhs: SectorCount) -> SectorCount {
        SectorCount(self.0 + rhs.0)
    }
}

impl fmt::Display for SectorCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} sectors", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lba_arithmetic() {
        let l = Lba::new(10);
        assert_eq!(l.next(), Lba::new(11));
        assert_eq!(l + SectorCount::new(5), Lba::new(15));
        assert_eq!(l.byte_offset(), 40_960);
        let mut m = l;
        m += SectorCount::new(2);
        assert_eq!(m, Lba::new(12));
    }

    #[test]
    fn lba_span_iterates_consecutive() {
        let v: Vec<u64> = Lba::new(7)
            .span(SectorCount::new(3))
            .map(Lba::index)
            .collect();
        assert_eq!(v, vec![7, 8, 9]);
    }

    #[test]
    fn sector_count_from_bytes_rounds_up() {
        assert_eq!(SectorCount::from_bytes(1).get(), 1);
        assert_eq!(SectorCount::from_bytes(4096).get(), 1);
        assert_eq!(SectorCount::from_bytes(4097).get(), 2);
        assert_eq!(SectorCount::from_bytes(MIB).get(), 256);
    }

    #[test]
    #[should_panic(expected = "request length must be positive")]
    fn sector_count_rejects_zero() {
        let _ = SectorCount::from_bytes(0);
    }

    #[test]
    fn display_impls() {
        assert_eq!(Lba::new(3).to_string(), "lba:3");
        assert_eq!(SectorCount::new(2).to_string(), "2 sectors");
    }

    #[test]
    fn unit_constants_consistent() {
        assert_eq!(GIB / MIB, 1024);
        assert_eq!(MIB / KIB, 1024);
        assert_eq!(SECTOR_BYTES, 4 * KIB);
    }
}
