//! Online statistics and histograms for experiment reports.
//!
//! Campaign reports need means, extremes, and distributions over thousands
//! of fault injections without retaining every sample. [`OnlineStats`] is a
//! Welford accumulator; [`Histogram`] is a fixed-width bucket histogram with
//! an overflow bucket; [`percentile`] computes exact percentiles from a
//! retained sample vector where that is affordable.

use serde::{Deserialize, Serialize};

/// Welford online mean/variance accumulator.
///
/// # Example
///
/// ```
/// use pfault_sim::stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(v);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = value - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than one sample).
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample standard deviation (0 if fewer than two samples).
    pub fn stddev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).sqrt()
        }
    }

    /// Smallest sample seen, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Largest sample seen, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Merges another accumulator into this one (parallel campaign trials).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean = new_mean;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Fixed-width bucket histogram with an overflow bucket.
///
/// # Example
///
/// ```
/// use pfault_sim::stats::Histogram;
///
/// // 10 buckets of width 100 covering [0, 1000), plus overflow.
/// let mut h = Histogram::new(100.0, 10);
/// h.record(50.0);
/// h.record(950.0);
/// h.record(5000.0); // overflow
/// assert_eq!(h.bucket_count(0), 1);
/// assert_eq!(h.bucket_count(9), 1);
/// assert_eq!(h.overflow(), 1);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    bucket_width: f64,
    buckets: Vec<u64>,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram of `buckets` buckets of `bucket_width` each,
    /// covering `[0, bucket_width * buckets)`.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` is not positive or `buckets` is zero.
    pub fn new(bucket_width: f64, buckets: usize) -> Self {
        assert!(bucket_width > 0.0, "bucket width must be positive");
        assert!(buckets > 0, "must have at least one bucket");
        Histogram {
            bucket_width,
            buckets: vec![0; buckets],
            overflow: 0,
        }
    }

    /// Records a sample; negative values clamp into the first bucket.
    pub fn record(&mut self, value: f64) {
        let idx = (value.max(0.0) / self.bucket_width) as usize;
        if idx < self.buckets.len() {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Count in bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Count of samples beyond the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.overflow
    }

    /// Lower edge of bucket `i`.
    pub fn bucket_lo(&self, i: usize) -> f64 {
        i as f64 * self.bucket_width
    }

    /// Number of (non-overflow) buckets.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// Index of the last bucket with a non-zero count, or `None` if all
    /// in-range buckets are empty. Used by the §IV-A interval experiment to
    /// locate the latest post-ACK delay at which corruption still occurs.
    pub fn last_nonzero_bucket(&self) -> Option<usize> {
        self.buckets.iter().rposition(|&c| c > 0)
    }
}

/// Exact percentile of a sample set, by sorting a copy.
///
/// `p` is in `[0, 100]`. Returns `None` for an empty input. Uses the
/// nearest-rank method.
///
/// # Example
///
/// ```
/// let data = vec![1.0, 2.0, 3.0, 4.0, 5.0];
/// assert_eq!(pfault_sim::stats::percentile(&data, 50.0), Some(3.0));
/// assert_eq!(pfault_sim::stats::percentile(&data, 100.0), Some(5.0));
/// ```
pub fn percentile(samples: &[f64], p: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not be NaN"));
    let p = p.clamp(0.0, 100.0);
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    let idx = rank.max(1) - 1;
    Some(sorted[idx.min(sorted.len() - 1)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.stddev(), 0.0);
    }

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for v in [1.0, 2.0, 3.0] {
            s.push(v);
        }
        assert_eq!(s.count(), 3);
        assert!((s.mean() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(3.0));
        assert!((s.stddev() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_matches_sequential() {
        let mut all = OnlineStats::new();
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for i in 0..100 {
            let v = (i as f64).sin() * 10.0;
            all.push(v);
            if i % 2 == 0 {
                a.push(v);
            } else {
                b.push(v);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.population_variance() - all.population_variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(5.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);

        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(10.0, 5); // [0,50) + overflow
        h.record(0.0);
        h.record(9.999);
        h.record(10.0);
        h.record(49.0);
        h.record(50.0);
        h.record(-3.0); // clamps to first bucket
        assert_eq!(h.bucket_count(0), 3);
        assert_eq!(h.bucket_count(1), 1);
        assert_eq!(h.bucket_count(4), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 6);
        assert_eq!(h.last_nonzero_bucket(), Some(4));
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new(1.0, 3);
        assert!(h.is_empty());
        assert_eq!(h.last_nonzero_bucket(), None);
        assert_eq!(h.bucket_lo(2), 2.0);
        assert_eq!(h.len(), 3);
    }

    #[test]
    #[should_panic(expected = "bucket width must be positive")]
    fn histogram_rejects_bad_width() {
        let _ = Histogram::new(0.0, 3);
    }

    #[test]
    fn percentile_nearest_rank() {
        let d = vec![15.0, 20.0, 35.0, 40.0, 50.0];
        assert_eq!(percentile(&d, 5.0), Some(15.0));
        assert_eq!(percentile(&d, 30.0), Some(20.0));
        assert_eq!(percentile(&d, 40.0), Some(20.0));
        assert_eq!(percentile(&d, 50.0), Some(35.0));
        assert_eq!(percentile(&d, 100.0), Some(50.0));
        assert_eq!(percentile(&[], 50.0), None);
    }
}
